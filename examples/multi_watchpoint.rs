//! Watching many expressions at once: the paper's Fig. 6 scenario on
//! one kernel. Four hardware registers run out immediately; page
//! protection melts down; DISE's serial and Bloom-filter productions
//! keep overhead flat.
//!
//! Run with: `cargo run --release --example multi_watchpoint`

use dise_repro::debug::{run_baseline, BackendKind, DiseStrategy, Session};
use dise_repro::workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = Workload::crafty(200);
    let baseline = run_baseline(w.app(), Default::default())?;
    println!("{} ({}): overhead vs number of watchpoints\n", w.name(), w.function());
    println!(
        "{:>3} {:>12} {:>12} {:>12} {:>12}",
        "n", "hw/VM", "DISE serial", "byte Bloom", "bit Bloom"
    );

    for n in [1usize, 2, 4, 8, 16] {
        let wps = w.sweep_watchpoints(n);
        let mut row = format!("{n:>3} ");
        for backend in [
            BackendKind::hw4(),
            BackendKind::dise_default(),
            BackendKind::Dise(DiseStrategy::bloom(false)),
            BackendKind::Dise(DiseStrategy::bloom(true)),
        ] {
            let r = Session::new(w.app(), wps.clone(), backend)?.run();
            row.push_str(&format!("{:>11.2}x", r.overhead_vs(&baseline)));
        }
        println!("{row}");
    }

    println!(
        "\npast four watchpoints the hardware registers fall back to page \
         protection and overhead explodes; every DISE organisation stays flat."
    );
    Ok(())
}
