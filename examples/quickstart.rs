//! Quickstart: set a DISE watchpoint on a tiny program and observe the
//! paper's central claim — every value change reaches the user with
//! *zero* spurious debugger transitions, at a small constant overhead.
//!
//! Run with: `cargo run --example quickstart`

use dise_repro::asm::{parse_asm, Layout};
use dise_repro::debug::{run_baseline, Application, BackendKind, Session, WatchExpr, Watchpoint};
use dise_repro::isa::Width;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little application: increments `counter` 50 times, with a
    // neighbouring variable written on every iteration too.
    let app = Application::new(
        parse_asm(
            "start:  la r1, counter
                     la r2, scratch
                     lda r3, 50(zero)
             loop:   .stmt
                     stq r3, 0(r2)      # unwatched neighbour
                     ldq r4, 0(r1)
                     addq r4, 1, r4
                     stq r4, 0(r1)      # watched!
                     subq r3, 1, r3
                     bgt r3, loop
                     halt
             .data
             counter: .quad 0
             scratch: .quad 0
            ",
        )?,
        Layout::default(),
    );

    let counter = app.program()?.symbol("counter").expect("symbol exists");
    let wp = Watchpoint::new(WatchExpr::Scalar { addr: counter, width: Width::Q });

    // Undebugged baseline.
    let baseline = run_baseline(&app, Default::default())?;
    println!("baseline: {} cycles, IPC {:.2}", baseline.cycles, baseline.ipc());

    // The same program under a DISE watchpoint.
    let report = Session::new(&app, vec![wp], BackendKind::dise_default())?.run();
    println!(
        "DISE:     {} cycles ({:.2}x), {} user transitions, {} spurious",
        report.run.cycles,
        report.overhead_vs(&baseline),
        report.transitions.user,
        report.transitions.spurious_total(),
    );
    assert_eq!(report.transitions.user, 50);
    assert_eq!(report.transitions.spurious_total(), 0);

    // Contrast: the same watchpoint via page protection. The neighbour
    // shares the page, so every one of its stores is a spurious
    // 100,000-cycle round trip.
    let vm = Session::new(&app, vec![wp], BackendKind::VirtualMemory)?.run();
    println!(
        "VM:       {} cycles ({:.0}x), {} user transitions, {} spurious",
        vm.run.cycles,
        vm.overhead_vs(&baseline),
        vm.transitions.user,
        vm.transitions.spurious_total(),
    );
    assert!(vm.run.cycles > report.run.cycles * 10);
    println!("\nDISE embeds the check in the instruction stream: no context switches.");
    Ok(())
}
