//! An interactive-style debugging scenario on a realistic workload: hunt
//! a corruption bug in the twolf-like placement kernel with a
//! *conditional* watchpoint, comparing what each debugger implementation
//! charges you for the privilege.
//!
//! The scenario mirrors the paper's motivation: you know the cost
//! accumulator goes wrong only when it takes a specific value, so you
//! set `watch cost if cost == K`. Conventional implementations bounce
//! into the debugger on every write to evaluate the predicate; DISE
//! evaluates it inside the application.
//!
//! Run with: `cargo run --release --example debug_session`

use dise_repro::debug::{run_baseline, BackendKind, DebugError, Session};
use dise_repro::workloads::{WatchKind, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = Workload::twolf(250);
    println!(
        "debugging {} ({}), conditional watchpoint on the HOT cost cell\n",
        w.name(),
        w.function()
    );
    let baseline = run_baseline(w.app(), Default::default())?;
    println!(
        "undebugged: {} instructions in {} cycles (IPC {:.2})\n",
        baseline.instructions,
        baseline.cycles,
        baseline.ipc()
    );

    // The predicate never holds — the user is never invoked — so every
    // transition a backend takes is pure, perceptible overhead.
    let wp = w.conditional_watchpoint(WatchKind::Hot);

    println!(
        "{:<22}{:>12}{:>14}{:>10}{:>10}",
        "implementation", "overhead", "transitions", "user", "spurious"
    );
    for (name, kind) in [
        ("single-stepping", BackendKind::SingleStep),
        ("virtual memory", BackendKind::VirtualMemory),
        ("hardware registers", BackendKind::hw4()),
        ("DISE", BackendKind::dise_default()),
    ] {
        match Session::new(w.app(), vec![wp], kind) {
            Ok(session) => {
                let r = session.run();
                println!(
                    "{:<22}{:>11.2}x{:>14}{:>10}{:>10}",
                    name,
                    r.overhead_vs(&baseline),
                    r.transitions.total(),
                    r.transitions.user,
                    r.transitions.spurious_total(),
                );
            }
            Err(DebugError::Unsupported { reason, .. }) => {
                println!("{name:<22}  (no experiment: {reason})");
            }
            Err(e) => return Err(e.into()),
        }
    }

    println!(
        "\nonly DISE evaluates the predicate inside the application: \
         zero transitions, constant small overhead."
    );
    Ok(())
}
