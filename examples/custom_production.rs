//! DISE beyond debugging: write your own production and watch the
//! engine rewrite the instruction stream.
//!
//! This example reproduces the paper's Fig. 1 — a production that adds
//! eight bytes to the address of every load that uses the stack pointer
//! as its base — and then a store-counting profiler production, showing
//! the general-purpose ACF (application customization function) side of
//! DISE that makes it "not debugging-specific".
//!
//! Run with: `cargo run --example custom_production`

use dise_repro::asm::{parse_asm, Layout};
use dise_repro::cpu::{CpuConfig, Executor};
use dise_repro::engine::{Pattern, Production, TDisp, TOperand, TReg, TemplateInst};
use dise_repro::isa::{AluOp, OpClass, Reg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Fig. 1: redirect stack loads by +8 -------------------------
    let prog = parse_asm(
        "start:  lda r1, 100(sp)     # not a load: unaffected
                 stq r1, 0(sp)       # store at sp+0
                 stq r1, 8(sp)       # store at sp+8 (different value below)
                 lda r2, 42(zero)
                 stq r2, 8(sp)
                 ldq r3, 0(sp)       # load sp+0 ... rewritten to sp+8!
                 halt",
    )?
    .assemble(Layout::default())?;

    let mut m = Executor::from_program(&prog, CpuConfig::default());
    // T.OPCLASS==load & T.RS==sp ⇒ addq sp, 8, dr0 ; T.OP T.RD, T.IMM(dr0)
    m.engine_mut().install(Production::new(
        "fig1-redirect",
        Pattern::opclass(OpClass::Load).with_base_reg(Reg::SP),
        vec![
            TemplateInst::Alu {
                op: AluOp::Add,
                rd: TReg::Lit(Reg::dise(0)),
                ra: TReg::Rs1,
                rb: TOperand::Imm(8),
            },
            TemplateInst::TriggerOpWith { base: TReg::Lit(Reg::dise(0)), disp: TDisp::Imm },
        ],
    ))?;

    while !m.is_halted() {
        m.step();
    }
    println!("ldq r3, 0(sp) under the Fig. 1 production loaded: {}", m.reg(Reg::gpr(3)));
    assert_eq!(m.reg(Reg::gpr(3)), 42, "the load was redirected to sp+8");

    // ---- A store-counting profiler ----------------------------------
    let prog = parse_asm(
        "start:  lda r1, 10(zero)
                 la r2, buf
         loop:   stq r1, 0(r2)
                 subq r1, 1, r1
                 bgt r1, loop
                 halt
         .data
         buf: .quad 0",
    )?
    .assemble(Layout::default())?;

    let mut m = Executor::from_program(&prog, CpuConfig::default());
    // Count every store in DISE register dr1 — invisible to the
    // application, no registers scavenged, no code rewritten.
    m.engine_mut().install(Production::new(
        "store-profiler",
        Pattern::opclass(OpClass::Store),
        vec![
            TemplateInst::Trigger,
            TemplateInst::Alu {
                op: AluOp::Add,
                rd: TReg::Lit(Reg::dise(1)),
                ra: TReg::Lit(Reg::dise(1)),
                rb: TOperand::Imm(1),
            },
        ],
    ))?;

    while !m.is_halted() {
        m.step();
    }
    println!("profiler counted {} stores (expected 10)", m.reg(Reg::dise(1)));
    assert_eq!(m.reg(Reg::dise(1)), 10);

    let (triggers, emitted) = m.engine().stats();
    println!("engine: {triggers} triggers, {emitted} replacement instructions emitted");
    Ok(())
}
