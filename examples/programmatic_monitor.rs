//! iWatcher-style programmatic monitoring (§6): the *application* (or a
//! test harness) registers a buffer and a callback living in its own
//! text segment; DISE calls the callback on every store into the buffer
//! — no debugger process, no OS, no hardware tables.
//!
//! The callback here implements a tiny canary checker: it verifies that
//! a guard word next to the buffer still holds its magic value and
//! records the first corruption.
//!
//! Run with: `cargo run --example programmatic_monitor`

use dise_repro::asm::{parse_asm, Layout};
use dise_repro::debug::{Application, Monitor, MonitoredRegion};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = Application::new(
        parse_asm(
            "start:  la r1, buf
                     lda r2, 9(zero)        # 9 writes: the last one overflows!
             loop:   lda r3, 9(zero)
                     subq r3, r2, r3        # index 0,1,2,...
                     s8addq r3, r1, r4
                     stq r2, 0(r4)          # buf[i] = ...
                     subq r2, 1, r2
                     bgt r2, loop
                     halt

             # Registered callback: check the canary after each write.
             check_canary:
                     stq r5, -8(sp)
                     stq r6, -16(sp)
                     la r5, canary
                     ldq r6, 0(r5)
                     lda r5, 193(zero)      # expected magic
                     cmpeq r5, r6, r6
                     bne r6, ok
                     la r5, corrupted
                     ldq r6, 0(r5)
                     bne r6, ok             # record only the first time
                     d_mfr r6, dr1          # faulting store address
                     stq r6, 0(r5)
             ok:
                     ldq r6, -16(sp)
                     ldq r5, -8(sp)
                     d_ret
             .data
             buf:       .space 64           # 8 quads
             canary:    .quad 193
             corrupted: .quad 0",
        )?,
        Layout::default(),
    );
    let prog = app.program()?;
    let buf = prog.symbol("buf").unwrap();

    // Monitor a window that includes the canary: writes past the buffer
    // end land on it.
    let region =
        MonitoredRegion { base: buf, len: 64 + 8, callback: prog.symbol("check_canary").unwrap() };
    let mut mon = Monitor::new(&app, &[region], Default::default())?;
    let stats = mon.run();

    let corrupted = mon.executor().mem().read_u(prog.symbol("corrupted").unwrap(), 8);
    let canary = mon.executor().mem().read_u(prog.symbol("canary").unwrap(), 8);
    println!("canary value after run: {canary} (magic was 193)");
    if corrupted != 0 {
        println!(
            "callback caught the overflow: store at {corrupted:#x} \
             (buffer ends at {:#x})",
            buf + 64
        );
    }
    println!(
        "{} instructions, {} cycles, {} debugger stalls (always zero: \
         everything ran in-application)",
        stats.instructions, stats.cycles, stats.debugger_stalls
    );
    assert_eq!(corrupted, buf + 64, "the canary write is the 9th store");
    assert_eq!(canary, 1, "the overflow wrote the loop counter");
    Ok(())
}
