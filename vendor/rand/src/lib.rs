//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! The container this workspace builds in has no access to crates.io, so
//! the few pieces of `rand` the workloads use are reimplemented here:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`],
//! [`Rng::gen_range`] and [`Rng::gen`]. The generator is SplitMix64 —
//! deterministic, seedable, and statistically plenty for generating
//! benchmark input data. It is **not** cryptographically secure and does
//! not match upstream `StdRng`'s output stream.

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] accepts (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe core of a generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
        impl Standard for $t {
            fn from_rng(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // 53 uniform mantissa bits → uniform f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// A uniform value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_for_same_seed() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn gen_range_respects_bounds() {
            let mut r = StdRng::seed_from_u64(7);
            for _ in 0..1000 {
                let v = r.gen_range(3..17u8);
                assert!((3..17).contains(&v));
                let s = r.gen_range(-50..50i32);
                assert!((-50..50).contains(&s));
            }
        }

        #[test]
        fn gen_bool_extremes() {
            let mut r = StdRng::seed_from_u64(7);
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
