//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this crate reimplements
//! the slice of proptest's API that this workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, ranges, tuples, [`strategy::Just`],
//!   [`prop_oneof!`] unions and [`collection::vec`];
//! * [`arbitrary::any`] for primitive types and tuples of them;
//! * the [`proptest!`] macro (supporting `#![proptest_config(..)]`,
//!   `pat in strategy` and `name: Type` parameters) and the
//!   [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`] macros.
//!
//! Inputs are generated from a deterministic SplitMix64 stream (override
//! the seed with `PROPTEST_SEED`), each case is checked, and the first
//! failure panics with the case number and seed. **No shrinking** is
//! performed — failures report the generated inputs via `Debug` instead.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value`. Object-safe: every provided
    /// generic method is `Self: Sized`, so `Box<dyn Strategy<Value = V>>`
    /// works (that is what [`BoxedStrategy`] wraps).
    pub trait Strategy {
        type Value;

        /// Produce one value from the random stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `f` (retrying; panics if the
        /// predicate rejects 1000 draws in a row).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(std::rc::Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({}) rejected 1000 consecutive draws", self.whence);
        }
    }

    /// Uniform choice between boxed arms; built by [`crate::prop_oneof!`].
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (start as i128 + v) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / a);
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            u128::arbitrary(rng) as i128
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($($t:ident),+) => {
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($t::arbitrary(rng),)+)
                }
            }
        };
    }

    impl_arbitrary_tuple!(A);
    impl_arbitrary_tuple!(A, B);
    impl_arbitrary_tuple!(A, B, C);
    impl_arbitrary_tuple!(A, B, C, D);
    impl_arbitrary_tuple!(A, B, C, D, E);
    impl_arbitrary_tuple!(A, B, C, D, E, F);

    /// Strategy producing arbitrary values of `T`; see [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: vectors of `element` with a length
    /// in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    /// Deterministic SplitMix64 stream feeding every strategy.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Seed from `PROPTEST_SEED` if set, else a fixed default.
        pub fn from_env(test_name: &str) -> TestRng {
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x_C0FF_EE00_D15E_2005);
            // Mix the test name in so distinct tests see distinct streams.
            let mut h = base;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
            }
            TestRng::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Runner configuration (subset of proptest's).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A property-check failure raised by the `prop_assert*` macros.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> TestCaseError {
            TestCaseError { message }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Everything the tests normally import, plus `prop` as an alias for the
/// crate root so `prop::collection::vec(..)` resolves.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "assertion failed: `{:?}` != `{:?}`", left, right);
    }};
}

/// The property-test entry point. Supports an optional leading
/// `#![proptest_config(expr)]`, any number of test functions, and both
/// parameter forms: `pattern in strategy` and `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_env(stringify!($name));
            for case in 0..config.cases {
                $crate::__proptest_case! {
                    rng = rng; case = case; body = $body; binds = []; $($params)*
                }
            }
        }
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
}

/// Munches one parameter at a time, normalising `name: Type` to
/// `name in any::<Type>()`, then emits the per-case runner.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // Done: run one case.
    (rng = $rng:ident; case = $case:ident; body = $body:block;
     binds = [$(($pat:pat, $strat:expr))*];
    ) => {{
        let mut __inputs: Vec<String> = Vec::new();
        $(
            let __value = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
            __inputs.push(format!("  {} = {:?}", stringify!($pat), &__value));
            let $pat = __value;
        )*
        let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
            (|| { $body ::core::result::Result::Ok(()) })();
        if let ::core::result::Result::Err(e) = outcome {
            panic!(
                "proptest case {} failed: {}\ninputs:\n{}\n(set PROPTEST_SEED to vary inputs)",
                $case,
                e,
                __inputs.join("\n")
            );
        }
    }};
    // `pattern in strategy` (last parameter, optional trailing comma).
    (rng = $rng:ident; case = $case:ident; body = $body:block;
     binds = [$($done:tt)*];
     $pat:pat in $strat:expr $(,)?
    ) => {
        $crate::__proptest_case! {
            rng = $rng; case = $case; body = $body;
            binds = [$($done)* ($pat, $strat)];
        }
    };
    // `pattern in strategy`, more parameters follow.
    (rng = $rng:ident; case = $case:ident; body = $body:block;
     binds = [$($done:tt)*];
     $pat:pat in $strat:expr, $($rest:tt)+
    ) => {
        $crate::__proptest_case! {
            rng = $rng; case = $case; body = $body;
            binds = [$($done)* ($pat, $strat)];
            $($rest)+
        }
    };
    // `name: Type` (last parameter, optional trailing comma).
    (rng = $rng:ident; case = $case:ident; body = $body:block;
     binds = [$($done:tt)*];
     $name:ident: $ty:ty $(,)?
    ) => {
        $crate::__proptest_case! {
            rng = $rng; case = $case; body = $body;
            binds = [$($done)* ($name, $crate::arbitrary::any::<$ty>())];
        }
    };
    // `name: Type`, more parameters follow.
    (rng = $rng:ident; case = $case:ident; body = $body:block;
     binds = [$($done:tt)*];
     $name:ident: $ty:ty, $($rest:tt)+
    ) => {
        $crate::__proptest_case! {
            rng = $rng; case = $case; body = $body;
            binds = [$($done)* ($name, $crate::arbitrary::any::<$ty>())];
            $($rest)+
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Width {
        B,
        Q,
    }

    fn any_width() -> impl Strategy<Value = Width> {
        prop_oneof![Just(Width::B), Just(Width::Q)]
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u8..20, y in -5i32..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        /// Mixed `in` and `:` parameter forms, tuples, maps, vec.
        #[test]
        fn mixed_forms(
            (w, n) in (any_width(), 1u64..4),
            raw: u8,
            items in prop::collection::vec(any::<(u8, u8)>(), 1..10),
        ) {
            prop_assert!(matches!(w, Width::B | Width::Q));
            prop_assert!((1..4).contains(&n));
            let _ = raw;
            prop_assert!(!items.is_empty() && items.len() < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn config_applies(v in prop::collection::vec(0u64..100, 1..5)) {
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0);
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::test_runner::TestRng::from_seed(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn prop_map_applies() {
        let s = (0u8..10).prop_map(|v| v as u64 * 2);
        let mut rng = crate::test_runner::TestRng::from_seed(2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn filter_retries() {
        let s = (0u8..10).prop_filter("even", |v| v % 2 == 0);
        let mut rng = crate::test_runner::TestRng::from_seed(3);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) % 2 == 0);
        }
    }
}
