//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this crate reimplements
//! the slice of proptest's API that this workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, ranges, tuples, [`strategy::Just`],
//!   [`prop_oneof!`] unions and [`collection::vec`];
//! * [`arbitrary::any`] for primitive types and tuples of them;
//! * the [`proptest!`] macro (supporting `#![proptest_config(..)]`,
//!   `pat in strategy` and `name: Type` parameters) and the
//!   [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`] macros.
//!
//! Inputs are generated from a deterministic SplitMix64 stream (override
//! the seed with `PROPTEST_SEED`), each case is checked, and the first
//! failure panics with the case number and seed.
//!
//! **Shrinking:** on failure, the runner repeatedly asks the strategy
//! for smaller candidate inputs ([`strategy::Strategy::shrink`]) and
//! greedily re-runs the body, keeping any candidate that still fails,
//! until no candidate fails or a step budget runs out; the panic then
//! reports the minimised inputs. Integer ranges shrink toward their
//! lower bound, `any::<int>()` toward zero, vectors by dropping
//! elements and shrinking survivors, and tuples component-wise.
//! `prop_map` values shrink by shrinking the *underlying input* and
//! re-mapping (the strategy remembers which input produced which
//! output), and `prop_oneof!` values shrink within the arm that
//! generated them — so mapped/union values minimise instead of
//! reporting whatever the stream generated first.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value`. Object-safe: every provided
    /// generic method is `Self: Sized`, so `Box<dyn Strategy<Value = V>>`
    /// works (that is what [`BoxedStrategy`] wraps).
    pub trait Strategy {
        type Value;

        /// Produce one value from the random stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Propose strictly smaller candidates derived from a failing
        /// `value`, most aggressive first. The runner re-checks each
        /// candidate and greedily descends into any that still fails.
        /// The default — for strategies with nothing smaller to offer,
        /// like [`Just`] — proposes nothing, which disables shrinking
        /// but never misreports.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// Transform generated values. Mapped values shrink by
        /// shrinking the underlying input strategy and re-mapping: the
        /// returned [`Map`] remembers which input produced which output
        /// (from `generate` and from its own shrink proposals), so a
        /// failing output can be traced back to its input, the input
        /// shrunk, and the candidates mapped forward again. This is why
        /// [`Map`]'s values must be `Clone + PartialEq`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F, U>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f, seen: std::cell::RefCell::new(Vec::new()) }
        }

        /// Keep only values satisfying `f` (retrying; panics if the
        /// predicate rejects 1000 draws in a row).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(std::rc::Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
        fn shrink(&self, value: &V) -> Vec<V> {
            self.0.shrink(value)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S: Strategy, F, U> {
        inner: S,
        f: F,
        /// Input → output pairs this strategy has produced, from
        /// `generate` and from shrink proposals, so `shrink` can
        /// recover the input behind a failing output and shrink *it*.
        seen: std::cell::RefCell<Vec<(S::Value, U)>>,
    }

    impl<S: Strategy, F, U> Map<S, F, U> {
        fn remember(&self, input: S::Value, output: U) {
            let mut seen = self.seen.borrow_mut();
            // The cache only needs to survive one greedy descent
            // (≤ MAX_STEPS proposals); keep it bounded regardless.
            if seen.len() >= 4096 {
                seen.drain(..2048);
            }
            seen.push((input, output));
        }
    }

    impl<S: Strategy + Clone, F: Clone, U> Clone for Map<S, F, U> {
        fn clone(&self) -> Self {
            // The pair cache is per-instance shrink state, not part of
            // the strategy's identity: clones start empty.
            Map {
                inner: self.inner.clone(),
                f: self.f.clone(),
                seen: std::cell::RefCell::new(Vec::new()),
            }
        }
    }

    impl<S, U, F> Strategy for Map<S, F, U>
    where
        S: Strategy,
        S::Value: Clone,
        U: Clone + PartialEq,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            let input = self.inner.generate(rng);
            let out = (self.f)(input.clone());
            self.remember(input, out.clone());
            out
        }
        /// Shrink the *input* that produced `value` and re-map: every
        /// candidate output is genuinely producible by this strategy
        /// (it is the image of a shrunk input). Candidates mapping back
        /// to `value` itself are dropped — they would stall the greedy
        /// descent without progress. An output this instance never
        /// produced (possible only when callers shrink values across
        /// strategy instances) proposes nothing rather than guessing.
        fn shrink(&self, value: &U) -> Vec<U> {
            let input = {
                let seen = self.seen.borrow();
                seen.iter().rev().find(|(_, o)| o == value).map(|(i, _)| i.clone())
            };
            let Some(input) = input else { return Vec::new() };
            let mut out: Vec<U> = Vec::new();
            for cand in self.inner.shrink(&input) {
                let mapped = (self.f)(cand.clone());
                if mapped != *value && !out.contains(&mapped) {
                    self.remember(cand, mapped.clone());
                    out.push(mapped);
                }
            }
            out
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({}) rejected 1000 consecutive draws", self.whence);
        }
        fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
            // Shrunk candidates must still satisfy the predicate, or the
            // minimised input would lie outside the strategy.
            let mut out = self.inner.shrink(value);
            out.retain(|v| (self.f)(v));
            out
        }
    }

    /// Uniform choice between boxed arms; built by [`crate::prop_oneof!`].
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
        /// (arm index, value) pairs this union has produced, so shrink
        /// candidates come from the arm that generated the value —
        /// never from a sibling arm whose value space the failing value
        /// may not even inhabit.
        seen: std::cell::RefCell<Vec<(usize, V)>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms, seen: std::cell::RefCell::new(Vec::new()) }
        }
    }

    impl<V: Clone + PartialEq> Union<V> {
        fn remember(&self, arm: usize, value: V) {
            let mut seen = self.seen.borrow_mut();
            if seen.len() >= 4096 {
                seen.drain(..2048);
            }
            seen.push((arm, value));
        }
    }

    impl<V: Clone + PartialEq> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            let v = self.arms[i].generate(rng);
            self.remember(i, v.clone());
            v
        }
        /// Delegate to the arm that produced `value` (values from
        /// other instances propose nothing). The arm's own candidates
        /// — e.g. a `prop_map` arm shrinking its input — stay within
        /// that arm's value space, so every proposal remains producible
        /// by this union.
        fn shrink(&self, value: &V) -> Vec<V> {
            let arm = {
                let seen = self.seen.borrow();
                seen.iter().rev().find(|(_, v)| v == value).map(|(i, _)| *i)
            };
            let Some(arm) = arm else { return Vec::new() };
            let mut out: Vec<V> = Vec::new();
            for cand in self.arms[arm].shrink(value) {
                if cand != *value && !out.contains(&cand) {
                    self.remember(arm, cand.clone());
                    out.push(cand);
                }
            }
            out
        }
    }

    /// Shrink candidates for an integer toward `lo`: the bound itself
    /// (most aggressive), then a halving ladder approaching `v` from
    /// below (`v - gap/2`, `v - gap/4`, …, `v - 1`). The greedy runner
    /// takes the first candidate that still fails, so the failing
    /// region's boundary is found by binary search, not a linear walk.
    pub(crate) fn int_candidates(lo: i128, v: i128) -> Vec<i128> {
        if v <= lo {
            return Vec::new();
        }
        let mut out = vec![lo];
        let mut delta = (v - lo) / 2;
        while delta > 0 {
            out.push(v - delta);
            delta /= 2;
        }
        out.dedup();
        out
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + v) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_candidates(self.start as i128, *value as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (start as i128 + v) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_candidates(*self.start() as i128, *value as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($s:ident, $idx:tt)),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+)
            where
                $($s::Value: Clone),+
            {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
                /// Component-wise: each candidate shrinks exactly one
                /// component and clones the rest.
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        };
    }

    impl_tuple_strategy!((A, 0));
    impl_tuple_strategy!((A, 0), (B, 1));
    impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
    impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
    impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
    impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));

    /// Greedy shrink descent, used by the [`crate::proptest!`] runner:
    /// starting from a failing `value`, repeatedly take the first
    /// shrink candidate that still fails `check` (`Some(message)` =
    /// failure) until none fails or the step budget is exhausted.
    /// Returns the minimised value, its failure message, and the number
    /// of candidates tried.
    pub fn shrink_failure<S, F>(
        strategy: &S,
        mut value: S::Value,
        mut message: String,
        check: F,
    ) -> (S::Value, String, u32)
    where
        S: Strategy,
        F: Fn(&S::Value) -> Option<String>,
    {
        const MAX_STEPS: u32 = 500;
        let mut steps = 0;
        'descend: loop {
            for cand in strategy.shrink(&value) {
                if steps >= MAX_STEPS {
                    break 'descend;
                }
                steps += 1;
                if let Some(m) = check(&cand) {
                    value = cand;
                    message = m;
                    continue 'descend;
                }
            }
            break;
        }
        (value, message, steps)
    }

    /// Best-effort text of a caught panic payload (the runner treats
    /// body panics like `prop_assert!` failures so they shrink too).
    pub fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else {
            "test body panicked".to_string()
        }
    }

    thread_local! {
        /// True while *this thread's* shrink descent is re-running
        /// failing bodies: the process-wide hook below stays silent for
        /// it, without touching other test threads.
        static SUPPRESS_PANIC_OUTPUT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    }

    /// Chain a quiet-aware hook in front of whatever hook is current —
    /// once per process, so concurrent failing proptests cannot race a
    /// per-failure take/restore pair (which could leave a silent hook
    /// installed forever).
    fn install_quiet_capable_hook() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if !SUPPRESS_PANIC_OUTPUT.with(std::cell::Cell::get) {
                    prev(info);
                }
            }));
        });
    }

    /// Clears the suppression flag even if the descent itself panics.
    struct QuietGuard;
    impl Drop for QuietGuard {
        fn drop(&mut self) {
            SUPPRESS_PANIC_OUTPUT.with(|f| f.set(false));
        }
    }

    /// One [`crate::proptest!`] case: generate an input tuple, run the
    /// body, and on failure (a `prop_assert*` `Err` *or* a panic)
    /// shrink greedily before panicking with the minimised input.
    pub fn run_case<S, F>(strategy: &S, rng: &mut TestRng, case: u32, pats: &str, body: F)
    where
        S: Strategy,
        S::Value: Clone + core::fmt::Debug,
        F: Fn(S::Value) -> Result<(), crate::test_runner::TestCaseError>,
    {
        let vals = strategy.generate(rng);
        let check = |v: &S::Value| -> Option<String> {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(v.clone()))) {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(e.message),
                Err(p) => Some(panic_message(p)),
            }
        };
        if let Some(msg) = check(&vals) {
            // The descent re-runs failing bodies up to MAX_STEPS times;
            // stay quiet meanwhile (on this thread only) so hundreds of
            // candidate panics don't bury the minimised report below.
            install_quiet_capable_hook();
            let (vals, msg, steps) = {
                let _quiet = QuietGuard;
                SUPPRESS_PANIC_OUTPUT.with(|f| f.set(true));
                shrink_failure(strategy, vals, msg, check)
            };
            panic!(
                "proptest case {case} failed: {msg}\nminimal failing input ({steps} shrink \
                 steps):\n  {pats} = {vals:?}\n(set PROPTEST_SEED to vary inputs)"
            );
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;

        /// Shrink candidates for a failing value (toward the type's
        /// natural zero); default: none.
        fn shrink(_value: &Self) -> Vec<Self> {
            Vec::new()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
                fn shrink(value: &$t) -> Vec<$t> {
                    let v = *value as i128;
                    let toward_zero = if v >= 0 {
                        crate::strategy::int_candidates(0, v)
                    } else {
                        crate::strategy::int_candidates(0, -v).into_iter().map(|c| -c).collect()
                    };
                    toward_zero.into_iter().map(|c| c as $t).collect()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
        fn shrink(value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            u128::arbitrary(rng) as i128
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($($t:ident),+) => {
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($t::arbitrary(rng),)+)
                }
            }
        };
    }

    impl_arbitrary_tuple!(A);
    impl_arbitrary_tuple!(A, B);
    impl_arbitrary_tuple!(A, B, C);
    impl_arbitrary_tuple!(A, B, C, D);
    impl_arbitrary_tuple!(A, B, C, D, E);
    impl_arbitrary_tuple!(A, B, C, D, E, F);

    /// Strategy producing arbitrary values of `T`; see [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            T::shrink(value)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
        /// Shorter first (drop the back half, then single elements, never
        /// below the minimum length), then element-wise shrinks.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min = self.len.start;
            let mut out = Vec::new();
            if value.len() / 2 >= min && value.len() / 2 < value.len() {
                out.push(value[..value.len() / 2].to_vec());
            }
            if value.len() > min {
                for i in 0..value.len() {
                    let mut next = value.clone();
                    next.remove(i);
                    out.push(next);
                }
            }
            for (i, v) in value.iter().enumerate() {
                for cand in self.element.shrink(v) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }

    /// `proptest::collection::vec`: vectors of `element` with a length
    /// in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    /// Deterministic SplitMix64 stream feeding every strategy.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Seed from `PROPTEST_SEED` if set, else a fixed default.
        pub fn from_env(test_name: &str) -> TestRng {
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x_C0FF_EE00_D15E_2005);
            // Mix the test name in so distinct tests see distinct streams.
            let mut h = base;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
            }
            TestRng::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Runner configuration (subset of proptest's).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A property-check failure raised by the `prop_assert*` macros.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> TestCaseError {
            TestCaseError { message }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Everything the tests normally import, plus `prop` as an alias for the
/// crate root so `prop::collection::vec(..)` resolves.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "assertion failed: `{:?}` != `{:?}`", left, right);
    }};
}

/// The property-test entry point. Supports an optional leading
/// `#![proptest_config(expr)]`, any number of test functions, and both
/// parameter forms: `pattern in strategy` and `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_env(stringify!($name));
            for case in 0..config.cases {
                $crate::__proptest_case! {
                    rng = rng; case = case; body = $body; binds = []; $($params)*
                }
            }
        }
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
}

/// Munches one parameter at a time, normalising `name: Type` to
/// `name in any::<Type>()`, then emits the per-case runner.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // Done: run one case, shrinking greedily on failure.
    (rng = $rng:ident; case = $case:ident; body = $body:block;
     binds = [$(($pat:pat, $strat:expr))*];
    ) => {
        $crate::strategy::run_case(
            &($($strat,)*),
            &mut $rng,
            $case,
            stringify!(($($pat),*)),
            |($($pat,)*)| {
                $body
                ::core::result::Result::Ok(())
            },
        )
    };
    // `pattern in strategy` (last parameter, optional trailing comma).
    (rng = $rng:ident; case = $case:ident; body = $body:block;
     binds = [$($done:tt)*];
     $pat:pat in $strat:expr $(,)?
    ) => {
        $crate::__proptest_case! {
            rng = $rng; case = $case; body = $body;
            binds = [$($done)* ($pat, $strat)];
        }
    };
    // `pattern in strategy`, more parameters follow.
    (rng = $rng:ident; case = $case:ident; body = $body:block;
     binds = [$($done:tt)*];
     $pat:pat in $strat:expr, $($rest:tt)+
    ) => {
        $crate::__proptest_case! {
            rng = $rng; case = $case; body = $body;
            binds = [$($done)* ($pat, $strat)];
            $($rest)+
        }
    };
    // `name: Type` (last parameter, optional trailing comma).
    (rng = $rng:ident; case = $case:ident; body = $body:block;
     binds = [$($done:tt)*];
     $name:ident: $ty:ty $(,)?
    ) => {
        $crate::__proptest_case! {
            rng = $rng; case = $case; body = $body;
            binds = [$($done)* ($name, $crate::arbitrary::any::<$ty>())];
        }
    };
    // `name: Type`, more parameters follow.
    (rng = $rng:ident; case = $case:ident; body = $body:block;
     binds = [$($done:tt)*];
     $name:ident: $ty:ty, $($rest:tt)+
    ) => {
        $crate::__proptest_case! {
            rng = $rng; case = $case; body = $body;
            binds = [$($done)* ($name, $crate::arbitrary::any::<$ty>())];
            $($rest)+
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Width {
        B,
        Q,
    }

    fn any_width() -> impl Strategy<Value = Width> {
        prop_oneof![Just(Width::B), Just(Width::Q)]
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u8..20, y in -5i32..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        /// Mixed `in` and `:` parameter forms, tuples, maps, vec.
        #[test]
        fn mixed_forms(
            (w, n) in (any_width(), 1u64..4),
            raw: u8,
            items in prop::collection::vec(any::<(u8, u8)>(), 1..10),
        ) {
            prop_assert!(matches!(w, Width::B | Width::Q));
            prop_assert!((1..4).contains(&n));
            let _ = raw;
            prop_assert!(!items.is_empty() && items.len() < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn config_applies(v in prop::collection::vec(0u64..100, 1..5)) {
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0);
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::test_runner::TestRng::from_seed(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn prop_map_applies() {
        let s = (0u8..10).prop_map(|v| v as u64 * 2);
        let mut rng = crate::test_runner::TestRng::from_seed(2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn filter_retries() {
        let s = (0u8..10).prop_filter("even", |v| v % 2 == 0);
        let mut rng = crate::test_runner::TestRng::from_seed(3);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) % 2 == 0);
        }
    }

    /// Drive the shrink descent directly: a failure predicate of
    /// `x >= k` over an integer range must minimise to exactly `k`
    /// (binary-search convergence, well under the step budget).
    #[test]
    fn shrink_minimises_integer_ranges() {
        let s = 0u64..100_000;
        for threshold in [1u64, 57, 4_096, 99_999] {
            let check = |v: &u64| if *v >= threshold { Some(format!("{v} too big")) } else { None };
            let (min, msg, steps) =
                crate::strategy::shrink_failure(&s, 99_999, check(&99_999).unwrap(), check);
            assert_eq!(min, threshold, "minimal counterexample");
            assert!(msg.contains(&threshold.to_string()));
            assert!(steps < 200, "binary descent, not a linear walk: {steps} steps");
        }
    }

    #[test]
    fn shrink_respects_range_lower_bound() {
        let s = 10u8..20;
        // Everything fails: the minimum must still be in-range.
        let (min, _, _) =
            crate::strategy::shrink_failure(&s, 19, "fail".into(), |_| Some("fail".into()));
        assert_eq!(min, 10);
        assert!(s.shrink(&10).is_empty(), "the lower bound has nowhere to go");
    }

    #[test]
    fn shrink_minimises_vectors_to_shortest_failing() {
        let s = prop::collection::vec(0u64..100, 1..30);
        // Fails iff the vector has >= 4 elements; elements shrink to 0.
        let check = |v: &Vec<u64>| if v.len() >= 4 { Some("long".into()) } else { None };
        let start: Vec<u64> = (1..=20).collect();
        let (min, _, _) = crate::strategy::shrink_failure(&s, start, "long".into(), check);
        assert_eq!(min, vec![0, 0, 0, 0], "shortest failing length, zeroed elements");
    }

    #[test]
    fn vec_shrink_never_goes_below_min_length() {
        let s = prop::collection::vec(0u64..100, 3..10);
        for cand in s.shrink(&vec![7, 8, 9]) {
            assert!(cand.len() >= 3, "candidate {cand:?} under the minimum length");
        }
    }

    #[test]
    fn tuple_shrink_changes_one_component_at_a_time() {
        let s = (0u8..50, 0u8..50);
        let v = (10u8, 20u8);
        let cands = s.shrink(&v);
        assert!(!cands.is_empty());
        for (a, b) in cands {
            assert!(
                (a, b) != v && (a == v.0 || b == v.1),
                "({a}, {b}) changed both components at once"
            );
        }
    }

    #[test]
    fn filter_shrink_keeps_the_predicate() {
        let s = (0u8..100).prop_filter("even", |v| v % 2 == 0);
        for cand in s.shrink(&88) {
            assert!(cand % 2 == 0, "shrunk {cand} escaped the filter");
        }
    }

    #[test]
    fn any_int_shrinks_toward_zero_from_both_signs() {
        for v in [100i32, -100] {
            let cands = crate::arbitrary::Arbitrary::shrink(&v);
            assert!(cands.contains(&0));
            assert!(cands.iter().all(|c| c.abs() < v.abs()));
        }
        assert!(crate::arbitrary::Arbitrary::shrink(&0i32).is_empty());
    }

    /// `prop_map` values shrink by shrinking the underlying input and
    /// re-mapping: a failure predicate over the *mapped* value must
    /// minimise to the image of the minimal failing input.
    #[test]
    fn prop_map_shrinks_via_the_underlying_input() {
        let s = (0u64..100_000).prop_map(|v| v * 2 + 1);
        let mut rng = crate::test_runner::TestRng::from_seed(7);
        // Fails when the mapped value crosses 2*57+1: minimal failing
        // input 57, minimal failing output 115.
        let check = |v: &u64| if *v >= 115 { Some(format!("{v} too big")) } else { None };
        let start = loop {
            let v = s.generate(&mut rng);
            if check(&v).is_some() {
                break v;
            }
        };
        let (min, _, steps) = crate::strategy::shrink_failure(&s, start, "big".into(), check);
        assert_eq!(min, 115, "minimal mapped counterexample");
        assert!(steps < 200, "binary descent through the map: {steps} steps");
    }

    #[test]
    fn prop_map_candidates_are_images_of_shrunk_inputs() {
        let s = (10u8..50).prop_map(|v| u64::from(v) * 3);
        let mut rng = crate::test_runner::TestRng::from_seed(8);
        let v = s.generate(&mut rng);
        let cands = s.shrink(&v);
        assert!(!cands.is_empty(), "mapped values must shrink now");
        for c in cands {
            assert!(c % 3 == 0 && (30..150).contains(&c), "candidate {c} not in the map's image");
            assert!(c < v, "candidate {c} did not shrink below {v}");
        }
    }

    /// A value the strategy never produced proposes nothing — the
    /// shrinker must stay silent rather than misattribute an input.
    #[test]
    fn prop_map_does_not_shrink_foreign_values() {
        let s = (0u8..10).prop_map(|v| u64::from(v) * 2);
        assert!(s.shrink(&12345).is_empty());
    }

    /// `prop_oneof!` over mapped arms shrinks within the generating
    /// arm: an even value (arm 0) never proposes odd candidates (arm 1)
    /// and vice versa.
    #[test]
    fn union_shrinks_within_the_generating_arm() {
        let s = prop_oneof![
            (0u64..1000).prop_map(|v| v * 2),     // evens
            (0u64..1000).prop_map(|v| v * 2 + 1), // odds
        ];
        let mut rng = crate::test_runner::TestRng::from_seed(9);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            for c in s.shrink(&v) {
                assert_eq!(c % 2, v % 2, "candidate {c} escaped the arm that produced {v}");
                assert!(c < v);
            }
        }
    }

    /// Vectors of mapped elements shrink element-wise through the map.
    #[test]
    fn vec_of_mapped_elements_shrinks_elements() {
        let s = prop::collection::vec((1u8..100).prop_map(|v| u64::from(v) * 10), 2..6);
        // Fails while any element exceeds 300: minimal failing state is
        // the shortest vector with one element at exactly 310... but
        // element shrinks bottom out at 10, so assert the descent lands
        // on the minimal *failing* shape instead of the raw start.
        let check = |v: &Vec<u64>| {
            if v.iter().any(|&x| x >= 310) {
                Some("big element".into())
            } else {
                None
            }
        };
        let mut rng = crate::test_runner::TestRng::from_seed(10);
        let start = loop {
            let v = s.generate(&mut rng);
            if check(&v).is_some() {
                break v;
            }
        };
        let (min, _, _) = crate::strategy::shrink_failure(&s, start, "big".into(), check);
        assert_eq!(min.len(), 2, "length shrinks to the minimum");
        assert_eq!(min.iter().filter(|&&x| x >= 310).count(), 1, "one offender survives");
        assert!(min.contains(&310), "the offender minimised through the map: {min:?}");
        assert!(min.iter().all(|&x| x == 310 || x == 10), "bystanders minimised too: {min:?}");
    }

    /// End to end through the `proptest!` runner: a property failing on
    /// a mapped value reports the minimised mapping.
    #[test]
    fn failing_mapped_property_reports_shrunk_values() {
        proptest! {
            /// Not a #[test]: invoked below under catch_unwind.
            fn fails_on_big_triples(x in (0u64..100_000).prop_map(|v| v * 3)) {
                prop_assert!(x < 300, "x = {} crossed the line", x);
            }
        }
        let err = std::panic::catch_unwind(fails_on_big_triples).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("(x) = (300,)"), "panic must carry the minimal mapped input:\n{msg}");
    }

    /// End to end: a failing property's panic reports the *minimised*
    /// input, not whatever the stream happened to generate first.
    #[test]
    fn failing_property_reports_shrunk_inputs() {
        proptest! {
            /// Not a #[test]: invoked below under catch_unwind.
            fn fails_at_57_and_up(x in 0u64..100_000) {
                prop_assert!(x < 57, "x = {} crossed the line", x);
            }
        }
        let err = std::panic::catch_unwind(fails_at_57_and_up).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("(x) = (57,)"), "panic must carry the minimal input:\n{msg}");
        assert!(msg.contains("shrink steps"), "{msg}");
    }

    /// Body panics (not just prop_assert failures) also shrink.
    #[test]
    fn panicking_bodies_shrink_too() {
        proptest! {
            fn panics_when_long(v in prop::collection::vec(any::<u8>(), 1..50)) {
                assert!(v.len() < 3, "too long");
            }
        }
        let err = std::panic::catch_unwind(panics_when_long).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("[0, 0, 0]"), "minimal vector is three zeros:\n{msg}");
    }
}
