//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this crate provides
//! the subset of criterion's API the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`Throughput`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`] — backed
//! by a simple wall-clock sampler: per benchmark it runs a short warm-up,
//! then `sample_size` timed samples, and prints the median time per
//! iteration (plus throughput when configured). No statistics beyond
//! that, no plots, no baseline comparison.

use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for reporting per-iteration throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// The benchmark driver handed to each target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark (builder-style).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.to_string(), sample_size, throughput: None }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Report per-iteration throughput alongside time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    sample: Duration,
    iters: u64,
}

impl Bencher {
    /// Time the routine, amortised over enough iterations to make one
    /// sample meaningful. Calibration (doubling the per-sample iteration
    /// count until a sample takes ~1 ms) happens once, on the warm-up
    /// pass; later samples reuse the calibrated count.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let target = Duration::from_millis(1);
        if self.iters == 0 {
            let mut iters: u64 = 1;
            loop {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                let elapsed = start.elapsed();
                if elapsed >= target || iters >= 1 << 24 {
                    self.sample = elapsed;
                    self.iters = iters;
                    return;
                }
                iters *= 2;
            }
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.sample = start.elapsed();
    }
}

fn run_one<F>(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    // The warm-up pass doubles as calibration; samples reuse its
    // iteration count.
    let mut b = Bencher { sample: Duration::ZERO, iters: 0 };
    f(&mut b);
    for _ in 0..sample_size {
        f(&mut b);
        per_iter.push(if b.iters == 0 { 0.0 } else { b.sample.as_secs_f64() / b.iters as f64 });
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let mut line = format!("{name:<40} time: {}", fmt_time(median));
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if median > 0.0 {
            line.push_str(&format!("   thrpt: {:.3e} {unit}/s", count as f64 / median));
        }
    }
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:>10.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:>10.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:>10.2} ms", secs * 1e3)
    } else {
        format!("{:>10.2} s ", secs)
    }
}

/// Define a benchmark group function. Both criterion forms are accepted:
/// `criterion_group!(name, target1, target2)` and the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given groups. Ignores harness CLI arguments
/// (cargo bench passes `--bench`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| black_box(2 + 2)));
        c.bench_function("counted", |b| {
            runs += 1;
            b.iter(|| ())
        });
        assert!(runs >= 4, "warm-up + samples, got {runs}");
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(8));
        g.sample_size(2);
        g.bench_function("a", |b| b.iter(|| black_box(1)));
        g.finish();
    }
}
