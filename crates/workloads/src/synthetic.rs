//! Randomized synthetic debugging scenarios — the input space of the
//! cross-backend differential conformance suite
//! (`crates/core/tests/backend_conformance.rs`).
//!
//! A scenario is a counted loop over a block of [`SLOTS`] watchable
//! quadwords, executing a caller-chosen sequence of stores each
//! iteration, plus a watchpoint set over the slots. The store scripts
//! span the full width/alignment space: quad-aligned quads, single
//! bytes, longwords at arbitrary offsets (straddling a quad boundary
//! when the offset exceeds 4), and quads whose base lies *below* a
//! quad boundary and straddles into the quad above. The straddles are
//! the point: a store that starts below a watched quad and reaches
//! into it is caught by byte-accurate backends (page protection,
//! single-step reevaluation) but — by the paper's design — not by
//! DISE's base-address pattern match, which keys on the store's *base*
//! quad only. The conformance oracle models both granularities
//! explicitly and asserts exactly that divergence; see
//! `backend_conformance.rs`.
//!
//! Generation is fully deterministic in the spec, so a shrunk failing
//! spec reproduces its program exactly.

use dise_asm::{parse_asm, Layout};
use dise_debug::{Application, Condition, WatchExpr, Watchpoint};
use dise_isa::Width;
use std::fmt::Write as _;

/// Watchable quadwords in the scenario's data block (one 64-byte,
/// single-page region — page sharing is part of the point: it exercises
/// the virtual-memory backend's spurious address transitions).
pub const SLOTS: u8 = 8;

/// One store in the scenario's loop body.
///
/// The first four arms are quad-wide and quad-aligned; the last three
/// exercise sub-quad widths and quad-boundary straddles. Arbitrary
/// field values are valid: [`StoreOp::normalized`] folds them into
/// range exactly as generation does, so shrunk proptest specs always
/// reproduce.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreOp {
    /// `slots[slot] = iteration counter` — changes every iteration.
    Counter {
        /// Target slot index.
        slot: u8,
    },
    /// `slots[slot] = k` — a silent store once the slot holds `k`.
    Constant {
        /// Target slot index.
        slot: u8,
        /// The constant stored.
        k: u8,
    },
    /// `slots[slot] = 0` — silent until another store disturbs the
    /// slot (slots start zeroed).
    Zero {
        /// Target slot index.
        slot: u8,
    },
    /// `scratch[slot] = iteration counter` — the scratch block lives on
    /// a *different page* than the slots, and no watchpoint ever covers
    /// it: these stores are true negatives that every backend
    /// (including the virtual-memory page filter) must stay silent on.
    Scratch {
        /// Target scratch-block slot index.
        slot: u8,
    },
    /// `stb`: one byte `k` at `slots + 8*slot + off`. A byte store
    /// never crosses a quad boundary, so its base quad *is* its only
    /// quad — every backend granularity agrees on which slot it hits.
    Byte {
        /// Base slot index (taken modulo [`SLOTS`]).
        slot: u8,
        /// Byte offset within the slot (taken modulo 8).
        off: u8,
        /// The byte stored.
        k: u8,
    },
    /// `stl`: the low longword of the iteration counter at
    /// `slots + 8*slot + off`. Offsets 5..=7 straddle into `slot + 1`;
    /// the slot index is capped at `SLOTS - 2` so the straddle never
    /// leaves the slot block.
    Long {
        /// Base slot index (taken modulo `SLOTS - 1`).
        slot: u8,
        /// Byte offset within the slot (taken modulo 8).
        off: u8,
    },
    /// `stq`: the iteration counter at `slots + 8*slot - back` — a
    /// quad store whose **base** sits `back` bytes below `slot`'s quad
    /// boundary, straddling *into* slot `slot` from the quad below.
    /// This is the shape DISE's base-address match misses by design:
    /// the base quad is `slot - 1`, yet bytes of `slot` change.
    StraddleBelow {
        /// Slot whose quad boundary the store straddles into
        /// (normalised to `1..SLOTS`, so the base never precedes the
        /// slot block).
        slot: u8,
        /// Bytes of the store lying below the boundary (normalised to
        /// `1..=7`).
        back: u8,
    },
}

impl StoreOp {
    /// Fold arbitrary field values into the ranges generation uses, so
    /// one normalisation rule serves the generator, the conformance
    /// oracle, and shrunk proptest specs alike.
    pub fn normalized(self) -> StoreOp {
        match self {
            StoreOp::Counter { slot } => StoreOp::Counter { slot: slot % SLOTS },
            StoreOp::Constant { slot, k } => StoreOp::Constant { slot: slot % SLOTS, k },
            StoreOp::Zero { slot } => StoreOp::Zero { slot: slot % SLOTS },
            StoreOp::Scratch { slot } => StoreOp::Scratch { slot: slot % SLOTS },
            StoreOp::Byte { slot, off, k } => StoreOp::Byte { slot: slot % SLOTS, off: off % 8, k },
            StoreOp::Long { slot, off } => StoreOp::Long { slot: slot % (SLOTS - 1), off: off % 8 },
            // Idempotent fold into 1..=SLOTS-1 / 1..=7: in-range values
            // map to themselves, so pinned specs mean what they say.
            StoreOp::StraddleBelow { slot, back } => StoreOp::StraddleBelow {
                slot: slot.wrapping_sub(1) % (SLOTS - 1) + 1,
                back: back.wrapping_sub(1) % 7 + 1,
            },
        }
    }

    /// The (normalised) store's byte offset within its data block —
    /// `slots` for every arm except [`StoreOp::Scratch`] — and its
    /// width in bytes.
    pub fn footprint(&self) -> (u64, u64) {
        match self.normalized() {
            StoreOp::Counter { slot }
            | StoreOp::Constant { slot, .. }
            | StoreOp::Zero { slot }
            | StoreOp::Scratch { slot } => (8 * u64::from(slot), 8),
            StoreOp::Byte { slot, off, .. } => (8 * u64::from(slot) + u64::from(off), 1),
            StoreOp::Long { slot, off } => (8 * u64::from(slot) + u64::from(off), 4),
            StoreOp::StraddleBelow { slot, back } => (8 * u64::from(slot) - u64::from(back), 8),
        }
    }

    /// The slot this store's **base address** falls in (in its own
    /// block) — for [`StoreOp::StraddleBelow`] that is the quad *below*
    /// the watched boundary, which is exactly what base-address
    /// matching keys on.
    pub fn slot(&self) -> u8 {
        (self.footprint().0 / 8) as u8
    }
}

/// One watchpoint over the scenario's slots.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WatchSpec {
    /// `watch slots[slot]` (quad scalar).
    Scalar {
        /// Watched slot.
        slot: u8,
    },
    /// `watch slots[slot] if slots[slot] == k`.
    Conditional {
        /// Watched slot.
        slot: u8,
        /// Predicate constant.
        k: u8,
    },
    /// `watch` the byte range `[slots + 8*first, slots + 8*first + len)`
    /// — quad-aligned base, arbitrary length (a non-multiple-of-8 `len`
    /// leaves unwatched tail bytes in the final quad, exercising the
    /// backends' boundary handling).
    Range {
        /// First slot of the range.
        first: u8,
        /// Length in bytes (clamped to the slot block).
        len: u8,
    },
    /// `watch *p` where the pointer cell `p` holds `&slots[slot]`.
    /// Statically unaddressable: virtual memory and hardware registers
    /// must decline it.
    Indirect {
        /// Slot the pointer targets.
        slot: u8,
    },
}

/// Build a scenario: the application (a counted loop of `iters`
/// iterations running `ops` in order, one statement marker per
/// iteration) and the watchpoints resolved against its assembled image.
///
/// Slot indices are taken modulo [`SLOTS`] and range lengths are
/// clamped to the block, so arbitrary (e.g. shrunk) specs are always
/// valid.
///
/// # Panics
///
/// As [`scenario_sets`], of which this is the single-set special case.
pub fn scenario(iters: u8, ops: &[StoreOp], specs: &[WatchSpec]) -> (Application, Vec<Watchpoint>) {
    let (app, mut sets) = scenario_sets(iters, ops, &[specs.to_vec()]);
    (app, sets.pop().expect("one set in, one set out"))
}

/// Build one scenario application serving **multiple watchpoint sets**
/// — the input shape of per-workload observer batching, where every
/// member of a `dise_debug::ObserverBatch` carries its own set over the
/// same unmodified application. Each set is resolved independently
/// against the one assembled image; set `i` of the result is exactly
/// what `scenario(iters, ops, &sets[i])` would produce (the application
/// is identical because watchpoints never influence generation beyond
/// the shared pointer cell).
///
/// Slot indices are taken modulo [`SLOTS`] and range lengths are
/// clamped to the block, so arbitrary (e.g. shrunk) specs are always
/// valid.
///
/// # Panics
///
/// Panics when the sets disagree on the indirect target (the scenario
/// image carries a single pointer cell, so every
/// [`WatchSpec::Indirect`] across all sets must name the same slot —
/// and DISE's serial matcher likewise supports one indirect watchpoint
/// per set, which must come first), or if the generated program fails
/// to assemble (a bug in this generator, not in the spec).
pub fn scenario_sets(
    iters: u8,
    ops: &[StoreOp],
    sets: &[Vec<WatchSpec>],
) -> (Application, Vec<Vec<Watchpoint>>) {
    let indirect_slots: Vec<u8> = sets
        .iter()
        .flatten()
        .filter_map(|s| match s {
            WatchSpec::Indirect { slot } => Some(slot % SLOTS),
            _ => None,
        })
        .collect();
    assert!(
        indirect_slots.windows(2).all(|w| w[0] == w[1]),
        "a scenario has one pointer cell: every indirect watchpoint must target the same slot"
    );
    for set in sets {
        assert!(
            set.iter().filter(|s| matches!(s, WatchSpec::Indirect { .. })).count() <= 1,
            "at most one indirect watchpoint per set (DISE's serial matcher owns one `dar`)"
        );
    }
    // The pointer cell for an indirect watchpoint needs the watched
    // slot's absolute address in its initialiser: generate once with a
    // placeholder, read the symbol, and regenerate. Assembly is
    // deterministic, so the second image's layout equals the first's.
    let probe = Application::new(parse_asm(&source(iters, ops, 0)).expect("parses"), layout());
    let slots = probe.program().expect("assembles").symbol("slots").expect("slots exists");
    let indirect_target = indirect_slots.first().map(|slot| slots + 8 * u64::from(*slot));
    let app = Application::new(
        parse_asm(&source(iters, ops, indirect_target.unwrap_or(0))).expect("parses"),
        layout(),
    );
    let prog = app.program().expect("assembles");
    assert_eq!(prog.symbol("slots"), Some(slots), "two-pass layout must agree");

    let ptr = prog.symbol("ptr").expect("ptr exists");
    let resolved = sets
        .iter()
        .map(|set| {
            set.iter()
                .map(|spec| match *spec {
                    WatchSpec::Scalar { slot } => Watchpoint::new(WatchExpr::Scalar {
                        addr: slots + 8 * u64::from(slot % SLOTS),
                        width: Width::Q,
                    }),
                    WatchSpec::Conditional { slot, k } => Watchpoint::conditional(
                        WatchExpr::Scalar {
                            addr: slots + 8 * u64::from(slot % SLOTS),
                            width: Width::Q,
                        },
                        Condition::equals(u64::from(k)),
                    ),
                    WatchSpec::Range { first, len } => {
                        let first = u64::from(first % SLOTS);
                        let max_len = 8 * (u64::from(SLOTS) - first);
                        let len = u64::from(len).clamp(1, max_len);
                        Watchpoint::new(WatchExpr::Range { base: slots + 8 * first, len })
                    }
                    WatchSpec::Indirect { .. } => {
                        Watchpoint::new(WatchExpr::Indirect { ptr, width: Width::Q })
                    }
                })
                .collect()
        })
        .collect();
    (app, resolved)
}

fn layout() -> Layout {
    Layout::default()
}

fn source(iters: u8, ops: &[StoreOp], indirect_target: u64) -> String {
    let iters = iters.max(1);
    let mut src = String::new();
    let _ = writeln!(src, "start:  la r20, slots");
    let _ = writeln!(src, "        la r21, scratch");
    let _ = writeln!(src, "        lda r9, {iters}(zero)");
    let _ = writeln!(src, "loop:   .stmt");
    for op in ops {
        let (disp, _) = op.footprint();
        match op.normalized() {
            StoreOp::Counter { .. } => {
                let _ = writeln!(src, "        stq r9, {disp}(r20)");
            }
            StoreOp::Constant { k, .. } => {
                let _ = writeln!(src, "        lda r1, {k}(zero)");
                let _ = writeln!(src, "        stq r1, {disp}(r20)");
            }
            StoreOp::Zero { .. } => {
                let _ = writeln!(src, "        stq r31, {disp}(r20)");
            }
            StoreOp::Scratch { .. } => {
                let _ = writeln!(src, "        stq r9, {disp}(r21)");
            }
            StoreOp::Byte { k, .. } => {
                let _ = writeln!(src, "        lda r1, {k}(zero)");
                let _ = writeln!(src, "        stb r1, {disp}(r20)");
            }
            StoreOp::Long { .. } => {
                let _ = writeln!(src, "        stl r9, {disp}(r20)");
            }
            StoreOp::StraddleBelow { .. } => {
                let _ = writeln!(src, "        stq r9, {disp}(r20)");
            }
        }
    }
    let _ = writeln!(src, "        subq r9, 1, r9");
    let _ = writeln!(src, "        bgt r9, loop");
    let _ = writeln!(src, "        halt");
    let _ = writeln!(src, ".data");
    let _ = writeln!(src, "slots:  .space {}", 8 * u64::from(SLOTS));
    let _ = writeln!(src, "ptr:    .quad {indirect_target:#x}");
    // Pad the scratch block onto its own page: its stores must never
    // look watched, not even through page-granularity protection.
    let _ = writeln!(src, "        .space 4096");
    let _ = writeln!(src, "scratch: .space {}", 8 * u64::from(SLOTS));
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_cpu::{CpuConfig, Executor};

    #[test]
    fn scratch_block_sits_on_its_own_page() {
        let (app, _) =
            scenario(2, &[StoreOp::Scratch { slot: 0 }], &[WatchSpec::Scalar { slot: 0 }]);
        let prog = app.program().unwrap();
        let slots = prog.symbol("slots").unwrap();
        let scratch = prog.symbol("scratch").unwrap();
        assert_ne!(slots / 4096, scratch / 4096, "scratch shares no page with the slots");
    }

    #[test]
    fn scenarios_assemble_run_and_halt() {
        let ops = [
            StoreOp::Counter { slot: 0 },
            StoreOp::Constant { slot: 3, k: 7 },
            StoreOp::Zero { slot: 5 },
            StoreOp::Counter { slot: 9 }, // wraps to slot 1
        ];
        let specs = [WatchSpec::Scalar { slot: 0 }, WatchSpec::Range { first: 6, len: 13 }];
        let (app, wps) = scenario(5, &ops, &specs);
        assert_eq!(wps.len(), 2);
        let prog = app.program().unwrap();
        let mut exec = Executor::from_program(&prog, CpuConfig::default());
        let mut n = 0;
        while !exec.is_halted() {
            exec.step();
            n += 1;
            assert!(n < 10_000, "scenario must halt");
        }
        let slots = prog.symbol("slots").unwrap();
        // Final values: counter slots hold the last counter value (1),
        // the constant slot holds 7, the zero slot 0.
        assert_eq!(exec.mem().read_u(slots, 8), 1);
        assert_eq!(exec.mem().read_u(slots + 24, 8), 7);
        assert_eq!(exec.mem().read_u(slots + 40, 8), 0);
        assert_eq!(exec.mem().read_u(slots + 8, 8), 1, "slot index wraps modulo SLOTS");
    }

    #[test]
    fn sub_quad_and_straddling_stores_hit_their_exact_bytes() {
        let ops = [
            StoreOp::Byte { slot: 2, off: 3, k: 0xAB },
            StoreOp::Long { slot: 1, off: 6 },
            StoreOp::StraddleBelow { slot: 4, back: 3 },
        ];
        let (app, _) = scenario(3, &ops, &[WatchSpec::Scalar { slot: 0 }]);
        let prog = app.program().unwrap();
        let mut exec = Executor::from_program(&prog, CpuConfig::default());
        let mut n = 0;
        while !exec.is_halted() {
            exec.step();
            n += 1;
            assert!(n < 10_000, "scenario must halt");
        }
        let slots = prog.symbol("slots").unwrap();
        // The loop counts down; the final iteration stores counter 1.
        assert_eq!(exec.mem().read_u(slots + 19, 1), 0xAB, "byte at slots[2]+3");
        assert_eq!(exec.mem().read_u(slots + 14, 4), 1, "longword straddling slots[1]/slots[2]");
        assert_eq!(exec.mem().read_u(slots + 29, 8), 1, "quad straddling into slots[4] from below");
        // Neighbouring bytes stay untouched.
        assert_eq!(exec.mem().read_u(slots + 18, 1), 0);
        assert_eq!(exec.mem().read_u(slots + 20, 1), 0);
    }

    #[test]
    fn normalised_footprints_stay_inside_the_slot_block() {
        for a in 0..=255u8 {
            for b in (0..=255u8).step_by(7) {
                for op in [
                    StoreOp::Byte { slot: a, off: b, k: 9 },
                    StoreOp::Long { slot: a, off: b },
                    StoreOp::StraddleBelow { slot: a, back: b },
                ] {
                    let (off, width) = op.footprint();
                    assert!(off + width <= 8 * u64::from(SLOTS), "{op:?} stays inside the block");
                    match op.normalized() {
                        StoreOp::Byte { .. } => {
                            assert_eq!(off / 8, (off + width - 1) / 8, "bytes never straddle")
                        }
                        StoreOp::StraddleBelow { slot, .. } => {
                            assert_eq!((off + width - 1) / 8, u64::from(slot), "reaches its slot");
                            assert_eq!(op.slot(), slot - 1, "base quad is the slot below");
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    fn indirect_pointer_targets_its_slot() {
        let (app, wps) =
            scenario(3, &[StoreOp::Counter { slot: 2 }], &[WatchSpec::Indirect { slot: 2 }]);
        let prog = app.program().unwrap();
        let mut mem = dise_mem::Memory::new();
        prog.load(&mut mem);
        let slots = prog.symbol("slots").unwrap();
        let ptr = prog.symbol("ptr").unwrap();
        assert_eq!(mem.read_u(ptr, 8), slots + 16, "ptr holds &slots[2]");
        assert!(matches!(wps[0].expr, WatchExpr::Indirect { .. }));
    }

    #[test]
    fn range_lengths_clamp_to_the_block() {
        let (_, wps) =
            scenario(2, &[StoreOp::Zero { slot: 0 }], &[WatchSpec::Range { first: 7, len: 200 }]);
        let WatchExpr::Range { len, .. } = wps[0].expr else { panic!("range") };
        assert_eq!(len, 8, "one slot left at the end of the block");
    }

    #[test]
    fn scenario_sets_resolve_each_set_against_one_image() {
        let ops = [StoreOp::Counter { slot: 0 }, StoreOp::Counter { slot: 2 }];
        let sets = vec![
            vec![WatchSpec::Scalar { slot: 0 }],
            vec![WatchSpec::Indirect { slot: 2 }, WatchSpec::Scalar { slot: 1 }],
            vec![WatchSpec::Range { first: 2, len: 10 }],
        ];
        let (app, resolved) = scenario_sets(4, &ops, &sets);
        assert_eq!(resolved.len(), 3);
        // Each set resolves exactly as its single-set form would, and
        // the set carrying the indirect reproduces the application too
        // (sets without it would initialise the unused pointer cell to
        // zero on their own — the only way sets influence generation).
        for (set, wps) in sets.iter().zip(&resolved) {
            let (lone_app, lone_wps) = scenario(4, &ops, set);
            assert_eq!(&lone_wps, wps);
            if set.iter().any(|s| matches!(s, WatchSpec::Indirect { .. })) {
                assert_eq!(lone_app, app, "the indirect set pins the pointer cell");
            }
        }
        // The shared pointer cell targets the (single) indirect slot.
        let prog = app.program().unwrap();
        let mut mem = dise_mem::Memory::new();
        prog.load(&mut mem);
        let slots = prog.symbol("slots").unwrap();
        assert_eq!(mem.read_u(prog.symbol("ptr").unwrap(), 8), slots + 16);
    }

    #[test]
    #[should_panic(expected = "same slot")]
    fn scenario_sets_reject_conflicting_indirect_targets() {
        let sets =
            vec![vec![WatchSpec::Indirect { slot: 1 }], vec![WatchSpec::Indirect { slot: 2 }]];
        let _ = scenario_sets(2, &[StoreOp::Zero { slot: 0 }], &sets);
    }

    #[test]
    fn generation_is_deterministic() {
        let ops = [StoreOp::Constant { slot: 1, k: 42 }];
        let specs = [WatchSpec::Conditional { slot: 1, k: 42 }];
        let (a, w) = scenario(4, &ops, &specs);
        let (b, w2) = scenario(4, &ops, &specs);
        assert_eq!(a, b);
        assert_eq!(w, w2);
    }
}
