//! The six benchmark kernels.
//!
//! Each kernel is a complete program in the DISE ISA that mimics the
//! algorithmic character of the paper's chosen SPEC2000 function and
//! declares the standard watch symbols:
//!
//! * `hot`, `warm1`, `warm2`, `cold` — scalar quads with decreasing
//!   write frequency (Table 2);
//! * `ind_p` — a pointer cell containing `&hot` (the INDIRECT
//!   watchpoint aliases HOT's storage, exactly as in the paper);
//! * `range_arr` — a small array (the RANGE watchpoint);
//! * `extras` — sixteen additional scalars for the Fig. 6
//!   number-of-watchpoints sweep, deliberately sharing pages with busy
//!   data so page-protection fallback hurts.
//!
//! Register conventions: kernels use `r1`–`r22` and never touch `r25`,
//! `r27`, `r28` (reserved for the binary-rewriting backend's register
//! scavenging) nor `sp` (no watched data on the stack, which also makes
//! the stack-store pattern specialization sound).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dise_asm::parse_asm;

use crate::Workload;

/// Deterministic seed for the generated input data.
const SEED: u64 = 0x5EED_D15E;

/// Shared watch-symbol footer. `cold_isolated` puts COLD on its own
/// page (bzip2's COLD shows near-zero virtual-memory overhead in the
/// paper); otherwise COLD shares a page with frequently written data.
fn watch_footer(range_quads: usize, cold_isolated: bool) -> String {
    let mut s = String::new();
    s.push_str("hot:    .quad 0\n");
    s.push_str("warm1:  .quad 0\n");
    s.push_str("warm2:  .quad 0\n");
    s.push_str("range_arr:\n");
    for _ in 0..range_quads {
        s.push_str("        .quad 0\n");
    }
    s.push_str("extras:\n");
    for _ in 0..16 {
        s.push_str("        .quad 0\n");
    }
    if cold_isolated {
        // Only COLD (and the never-written pointer cell) on this page:
        // bzip2's COLD shows near-zero virtual-memory overhead.
        s.push_str(".align 4096\n");
    }
    s.push_str("cold:   .quad 0\n");
    s.push_str("ind_p:  .addr hot\n");
    s
}

impl Workload {
    /// `bzip2` / `generateMTFValues`: a move-to-front transform over a
    /// skewed byte stream. Dense byte stores from table shifting; HOT is
    /// a run-length counter written per symbol with a *changing* value
    /// (bzip2 is the paper's one benchmark whose HOT stores are mostly
    /// non-silent).
    pub fn bzip2(iters: u32) -> Workload {
        let mut rng = StdRng::seed_from_u64(SEED);
        // Skewed alphabet-32 input: mostly small symbols, so MTF shifts
        // stay short and store density lands near Table 1's 19.8%.
        let input: Vec<u8> = (0..256)
            .map(|_| if rng.gen_bool(0.7) { rng.gen_range(0..4u8) } else { rng.gen_range(0..32u8) })
            .collect();
        let src = format!(
            "start:
                la r1, input
                la r2, mtf
                la r3, hot
                la r4, warm1
                la r5, range_arr
                la r15, warm2
                la r6, n_iters
                ldq r16, 0(r6)
                lda r7, 31(zero)
            initm:
                addq r2, r7, r8
                stb r7, 0(r8)
                subq r7, 1, r7
                bge r7, initm
            outer:
                .stmt
                and r16, 255, r6
                addq r1, r6, r8
                ldb r9, 0(r8)
            find:   lda r10, 0(zero)
            findl:
                addq r2, r10, r11
                ldb r12, 0(r11)
                cmpeq r12, r9, r13
                bne r13, shift
                addq r10, 1, r10
                br findl
            shift:
                ble r10, place
                .stmt
                addq r2, r10, r11
                ldb r13, -1(r11)
                stb r13, 0(r11)
                subq r10, 1, r10
                br shift
            place:
                stb r9, 0(r2)
                .stmt
                ldq r13, 0(r3)
                addq r13, 1, r13
                stq r13, 0(r3)          # HOT: run counter, never silent
                and r13, 63, r17
                bne r17, next
                ldq r18, 0(r4)
                addq r18, 1, r18
                stq r18, 0(r4)          # WARM1: run flush
                and r9, 7, r17
                s8addq r17, r5, r17
                ldq r18, 0(r17)
                addq r18, 1, r18
                stq r18, 0(r17)         # RANGE: frequency bucket
                and r13, 255, r17
                bne r17, next
                ldq r18, 0(r15)
                addq r18, 1, r18
                stq r18, 0(r15)         # WARM2: block boundary
            next:
                subq r16, 1, r16
                bgt r16, outer
                halt
            .data
            n_iters: .quad {n}
            ",
            n = iters as u64 * 16,
        );
        let mut asm = parse_asm(&src).expect("bzip2 kernel parses");
        asm.data_label("input").bytes(&input);
        asm.data_label("mtf").space(32);
        // COLD isolated: bzip2's COLD shows near-zero VM overhead.
        for line in watch_footer(8, true).lines() {
            push_data_line(&mut asm, line);
        }
        Workload::from_asm("bzip2", "generateMTFValues", asm, 64)
    }

    /// `crafty` / `InitializeAttackBoards`: bitboard ray masks via
    /// shift/or chains. HOT is the per-direction accumulator — half its
    /// stores rewrite an unchanged value (the paper's ≥50% silent
    /// stores).
    pub fn crafty(iters: u32) -> Workload {
        let src = format!(
            "start:
                la r1, attacks
                la r2, hot
                la r3, warm1
                la r4, warm2
                la r5, cold
                la r6, range_arr
                la r19, extras
                la r7, n_iters
                ldq r16, 0(r7)
                lda r20, 1023(zero)
                la r21, mask14
                ldq r21, 0(r21)
            outer:
                .stmt
                and r16, 63, r8
                lda r9, 0(zero)
                lda r10, 4(zero)
            ray:
                .stmt
                and r8, 31, r11
                lda r12, 1(zero)
                sll r12, r11, r12
                and r10, 1, r13
                mulq r12, r13, r12
                bis r9, r12, r9
                beq r13, skiph
                stq r9, 0(r2)           # HOT: odd directions only, ~50% silent
            skiph:
                s8addq r8, r1, r14
                stq r9, 0(r14)          # attacks[sq]: busy, shares page with cold
                subq r10, 1, r10
                bgt r10, ray
                .stmt
                and r16, 1, r11
                bne r11, skipw1
                ldq r12, 0(r3)
                addq r12, 1, r12
                stq r12, 0(r3)          # WARM1
            skipw1:
                and r16, r20, r11
                bne r11, skipw2
                ldq r12, 0(r4)
                addq r12, 1, r12
                stq r12, 0(r4)          # WARM2
                and r16, r21, r11
                bne r11, skipw2
                ldq r12, 0(r5)
                addq r12, 1, r12
                stq r12, 0(r5)          # COLD
            skipw2:
                and r16, 127, r11
                bne r11, skipx
                and r8, 7, r11
                s8addq r11, r6, r11
                stq r9, 0(r11)          # RANGE
                and r16, 15, r11
                s8addq r11, r19, r11
                stq r9, 0(r11)          # extras[i]: Fig. 6 sweep traffic
            skipx:
                subq r16, 1, r16
                bgt r16, outer
                halt
            .data
            n_iters: .quad {n}
            mask14:  .quad 4095
            attacks: .space 512
            ",
            n = iters as u64 * 12,
        );
        let mut asm = parse_asm(&src).expect("crafty kernel parses");
        for line in watch_footer(8, false).lines() {
            push_data_line(&mut asm, line);
        }
        Workload::from_asm("crafty", "InitializeAttackBoards", asm, 64)
    }

    /// `gcc` / `regclass`: per-instruction register-class cost scans.
    /// The scan over the eight classes is fully unrolled, giving gcc the
    /// large static footprint that makes it instruction-cache-sensitive
    /// (Fig. 5); RANGE (the per-class counter array) is written once per
    /// instruction, by far the paper's hottest RANGE.
    pub fn gcc(iters: u32) -> Workload {
        let mut rng = StdRng::seed_from_u64(SEED ^ 1);
        let ops: Vec<u8> = (0..256).map(|_| rng.gen_range(0..8u8)).collect();
        let table: Vec<u8> = (0..64).map(|_| rng.gen_range(1..200u8)).collect();
        // Unrolled scan: class c cost vs best.
        let mut scan = String::new();
        for c in 0..8 {
            scan.push_str(&format!(
                "    .stmt
                     ldb r15, {c}(r14)
                     cmpult r15, r12, r17
                     beq r17, noupd{c}
                     bis r15, r15, r12
                     lda r13, {c}(zero)
                 noupd{c}:
                     s8addq r31, r3, r17
                     stq r15, {off}(r17)         # costs[{c}]: busy working array
                ",
                off = c * 8,
            ));
        }
        let src = format!(
            "start:
                la r1, ops
                la r2, cost_table
                la r3, costs
                la r4, range_arr
                la r5, hot
                la r6, warm1
                la r7, warm2
                la r8, cold
                la r19, extras
                la r9, n_iters
                ldq r16, 0(r9)
                lda r20, 8191(zero)
                lda r21, 4095(zero)
            outer:
                .stmt
                and r16, 255, r9
                addq r1, r9, r9
                ldb r10, 0(r9)
                lda r12, 255(zero)
                lda r13, 0(zero)
                sll r10, 3, r14
                addq r2, r14, r14
            {scan}
                .stmt
                and r13, 7, r17
                s8addq r17, r4, r17
                ldq r18, 0(r17)
                addq r18, 1, r18
                stq r18, 0(r17)         # RANGE: class_count[best]++
                and r16, 15, r17
                bne r17, skiph
                stq r13, 0(r5)          # HOT: best class, mostly unchanged (silent)
            skiph:
                and r16, 31, r17
                bne r17, skipw1
                ldq r18, 0(r6)
                addq r18, 1, r18
                stq r18, 0(r6)          # WARM1
                and r16, 63, r17
                bne r17, skipw1
                and r16, 255, r17
                s8addq r31, r19, r18
                stq r16, 0(r18)         # extras[0]: sweep traffic
            skipw1:
                and r16, r21, r17
                bne r17, next
                ldq r18, 0(r7)
                addq r18, 1, r18
                stq r18, 0(r7)          # WARM2
                and r16, r20, r17
                bne r17, next
                ldq r18, 0(r8)
                addq r18, 1, r18
                stq r18, 0(r8)          # COLD
            next:
                subq r16, 1, r16
                bgt r16, outer
                halt
            .data
            n_iters: .quad {n}
            ",
            n = iters as u64 * 10,
        );
        let mut asm = parse_asm(&src).expect("gcc kernel parses");
        asm.data_label("ops").bytes(&ops);
        asm.data_label("cost_table").bytes(&table);
        asm.data_label("costs").space(64);
        for line in watch_footer(8, false).lines() {
            push_data_line(&mut asm, line);
        }
        Workload::from_asm("gcc", "regclass", asm, 64)
    }

    /// `mcf` / `write_circs`: a pointer-chasing walk over a 2 MB node
    /// pool in pseudo-random order — dependent loads that miss the L2,
    /// reproducing mcf's memory-bound IPC (0.33 in Table 1). HOT is a
    /// checksum whose XOR update is zero (silent) half the time.
    pub fn mcf(iters: u32) -> Workload {
        const NODES: u64 = 65_536;
        const NODE_BYTES: u64 = 32;
        let nodes_base = dise_asm::Layout::default().data_base + 16; // after n_iters + pad
                                                                     // A full-cycle LCG permutation over node indices: next(i) =
                                                                     // (a*i + c) mod NODES with a ≡ 1 (mod 4), c odd.
        let next_index = |i: u64| (i.wrapping_mul(52_237).wrapping_add(12_345)) % NODES;
        let mut nodes = vec![0u8; (NODES * NODE_BYTES) as usize];
        let mut rng = StdRng::seed_from_u64(SEED ^ 2);
        for i in 0..NODES {
            let off = (i * NODE_BYTES) as usize;
            let next_addr = nodes_base + next_index(i) * NODE_BYTES;
            nodes[off..off + 8].copy_from_slice(&next_addr.to_le_bytes());
            let v: u64 = rng.gen_range(0..1_000_000);
            nodes[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
        }
        let src = format!(
            "start:
                la r1, nodes
                la r2, hot
                la r3, warm1
                la r4, warm2
                la r5, n_iters
                ldq r16, 0(r5)
                bis r1, r1, r9
                lda r20, 4095(zero)
            outer:
                .stmt
                ldq r10, 0(r9)          # next pointer: dependent, cache-hostile
                .stmt
                ldq r11, 8(r9)
                addq r11, 1, r11
                stq r11, 8(r9)          # node field write
                and r16, 3, r12
                bne r12, skiph
                and r11, 1, r12
                mulq r12, r11, r12
                ldq r13, 0(r2)
                xor r13, r12, r13
                stq r13, 0(r2)          # HOT: checksum, silent when xor is 0
            skiph:
                .stmt
                bis r10, r10, r9
                and r16, 63, r12
                bne r12, skipw1
                ldq r13, 0(r3)
                addq r13, 1, r13
                stq r13, 0(r3)          # WARM1
            skipw1:
                and r16, r20, r12
                bne r12, next
                ldq r13, 0(r4)
                addq r13, 1, r13
                stq r13, 0(r4)          # WARM2
            next:
                subq r16, 1, r16
                bgt r16, outer
                halt
            .data
            n_iters: .quad {n}
            pad:     .quad 0
            ",
            n = iters as u64 * 14,
        );
        let mut asm = parse_asm(&src).expect("mcf kernel parses");
        asm.data_label("nodes").bytes(&nodes);
        // COLD and RANGE are never written: Table 2 reports 0 for both.
        for line in watch_footer(8, false).lines() {
            push_data_line(&mut asm, line);
        }
        let w = Workload::from_asm("mcf", "write_circs", asm, 64);
        debug_assert_eq!(
            w.app().program().unwrap().symbol("nodes"),
            Some(nodes_base),
            "node pool base must match the precomputed link addresses"
        );
        w
    }

    /// `twolf` / `uloop`: a cell-swap annealing loop. Swaps become rarer
    /// as the placement converges, so the HOT cost updates are
    /// frequently silent; COLD is written comparatively often for a
    /// "cold" variable, as in Table 2 (80.8 per 100K stores).
    pub fn twolf(iters: u32) -> Workload {
        let mut rng = StdRng::seed_from_u64(SEED ^ 3);
        let mut cells = Vec::new();
        for _ in 0..256 {
            cells.extend_from_slice(&rng.gen_range(0..100_000u64).to_le_bytes());
        }
        let src = format!(
            "start:
                la r1, cells
                la r2, hot
                la r3, warm1
                la r4, warm2
                la r5, cold
                la r6, range_arr
                la r7, n_iters
                ldq r16, 0(r7)
                lda r18, 1234(zero)
                la r21, lcg_a
                ldq r21, 0(r21)
                la r22, lcg_c
                ldq r22, 0(r22)
                la r20, mask16
                ldq r20, 0(r20)
            outer:
                .stmt
                mulq r18, r21, r18
                addq r18, r22, r18
                and r18, r20, r18
                and r18, 255, r9
                srl r18, 8, r10
                and r10, 255, r10
                .stmt
                s8addq r9, r1, r11
                ldq r12, 0(r11)
                s8addq r10, r1, r13
                ldq r14, 0(r13)
                subq r12, r14, r15
                ble r15, noswap
                stq r14, 0(r11)         # swap: cells converge over time
                stq r12, 0(r13)
            noswap:
                .stmt
                cmplt r15, r31, r17
                mulq r15, r17, r17      # clamp: 0 unless this pair swapped
                and r16, 3, r9
                bne r9, skiph
                ldq r12, 0(r2)
                addq r12, r17, r12
                stq r12, 0(r2)          # HOT: cost update, silent when delta<=0
            skiph:
                .stmt
                and r16, 31, r9
                bne r9, skipw1
                ldq r12, 0(r3)
                addq r12, 1, r12
                stq r12, 0(r3)          # WARM1
            skipw1:
                and r16, r20, r9
                bne r9, skipc
                ldq r12, 0(r4)
                addq r12, 1, r12
                stq r12, 0(r4)          # WARM2
            skipc:
                la r9, mask11
                ldq r9, 0(r9)
                and r16, r9, r9
                bne r9, skipr
                ldq r12, 0(r5)
                addq r12, 1, r12
                stq r12, 0(r5)          # COLD: rare but nonzero
            skipr:
                and r16, 15, r9
                bne r9, next
                and r18, 7, r9
                s8addq r9, r6, r9
                stq r15, 0(r9)          # RANGE
            next:
                subq r16, 1, r16
                bgt r16, outer
                halt
            .data
            n_iters: .quad {n}
            mask16:  .quad 65535
            mask11:  .quad 2047
            lcg_a:   .quad 25173
            lcg_c:   .quad 13849
            ",
            n = iters as u64 * 8,
        );
        let mut asm = parse_asm(&src).expect("twolf kernel parses");
        asm.data_label("cells").bytes(&cells);
        for line in watch_footer(8, false).lines() {
            push_data_line(&mut asm, line);
        }
        Workload::from_asm("twolf", "uloop", asm, 64)
    }

    /// `vortex` / `BMT_TraverseSets`: traverse object sets via index
    /// arrays, rewriting status fields. The status rewrites and the HOT
    /// visit stamp are overwhelmingly silent — vortex is the paper's
    /// showcase for silent-store-induced spurious value transitions.
    pub fn vortex(iters: u32) -> Workload {
        let mut rng = StdRng::seed_from_u64(SEED ^ 4);
        const RECORDS: usize = 512;
        let mut records = vec![0u8; RECORDS * 32];
        for r in 0..RECORDS {
            let v: u64 = rng.gen_range(0..256);
            records[r * 32 + 8..r * 32 + 16].copy_from_slice(&v.to_le_bytes());
        }
        let sets: Vec<u8> = (0..512u32)
            .flat_map(|_| (rng.gen_range(0..RECORDS as u32) * 32).to_le_bytes())
            .collect();
        let src = format!(
            "start:
                la r1, records
                la r2, sets
                la r3, hot
                la r4, warm1
                la r5, warm2
                la r6, out
                la r19, extras
                la r7, n_iters
                ldq r16, 0(r7)
                lda r17, 0(zero)
                la r20, mask13
                ldq r20, 0(r20)
            outer:
                .stmt
                and r16, r20, r8
                and r16, 255, r8
                sll r8, 2, r8
                addq r2, r8, r8
                ldl r9, 0(r8)           # member offset
                .stmt
                addq r1, r9, r9
                ldq r10, 8(r9)          # record value
                bis r10, 1, r11
                stq r11, 16(r9)         # status rewrite: silent after first pass
                and r16, 63, r12
                s8addq r31, r6, r13
                stq r10, 0(r13)         # out[0]: busy store on the watch-var page
                .stmt
                addq r17, 1, r17
                and r17, 3, r12
                bne r12, skiph
                srl r17, 3, r12
                stq r12, 0(r3)          # HOT: visit stamp, ~50% silent
            skiph:
                and r16, 255, r12
                bne r12, skipw
                ldq r13, 0(r4)
                addq r13, 1, r13
                stq r13, 0(r4)          # WARM1
                ldq r13, 0(r5)
                addq r13, 1, r13
                stq r13, 0(r5)          # WARM2 (equal frequency, as in Table 2)
                and r16, 15, r13
                s8addq r31, r19, r13
                stq r16, 8(r13)         # extras[1]: sweep traffic
            skipw:
                and r16, r20, r12
                bne r12, next
                la r12, range_arr
                stq r16, 0(r12)         # RANGE: almost never (0.4 per 100K)
            next:
                subq r16, 1, r16
                bgt r16, outer
                halt
            .data
            n_iters: .quad {n}
            mask13:  .quad 8191
            ",
            n = iters as u64 * 14,
        );
        let mut asm = parse_asm(&src).expect("vortex kernel parses");
        asm.data_label("records").bytes(&records);
        asm.data_label("sets").bytes(&sets);
        asm.data_label("out").space(64);
        // COLD for vortex is ~0; it still shares the busy page with
        // `out`, which is what makes the paper's COLD/vortex VM bar tall.
        for line in watch_footer(8, false).lines() {
            push_data_line(&mut asm, line);
        }
        Workload::from_asm("vortex", "BMT_TraverseSets", asm, 64)
    }
}

/// Feed one line of the shared footer through the data-side parser.
fn push_data_line(asm: &mut dise_asm::Asm, line: &str) {
    let line = line.trim();
    if line.is_empty() {
        return;
    }
    // Labels.
    let mut rest = line;
    while let Some(colon) = rest.find(':') {
        let (label, tail) = rest.split_at(colon);
        asm.data_label(label.trim());
        rest = tail[1..].trim();
    }
    if rest.is_empty() {
        return;
    }
    let (dir, arg) = match rest.find(char::is_whitespace) {
        Some(i) => (&rest[..i], rest[i..].trim()),
        None => (rest, ""),
    };
    match dir {
        ".quad" => {
            asm.quad(arg.parse::<u64>().expect("quad literal"));
        }
        ".space" => {
            asm.space(arg.parse::<u64>().expect("space literal"));
        }
        ".align" => {
            asm.align(arg.parse::<u64>().expect("align literal"));
        }
        ".addr" => {
            asm.addr_quad(arg);
        }
        other => panic!("unsupported footer directive {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_cpu::Machine;

    #[test]
    fn bzip2_mtf_is_correct() {
        // After the run, mtf[0] must hold the last symbol processed.
        let w = Workload::bzip2(64);
        let prog = w.app().program().unwrap();
        let mut m = Machine::from_program(&prog);
        m.run();
        let mtf = prog.symbol("mtf").unwrap();
        let input = prog.symbol("input").unwrap();
        // Iterations count down from n to 1; index = n & 255.
        let last_index = 1u64 & 255;
        let last_sym = m.exec.mem().read_u(input + last_index, 1);
        assert_eq!(m.exec.mem().read_u(mtf, 1), last_sym);
        // The MTF table stays a permutation of 0..32.
        let mut seen = [false; 32];
        for j in 0..32 {
            let v = m.exec.mem().read_u(mtf + j, 1) as usize;
            assert!(v < 32 && !seen[v], "duplicate or out-of-range entry");
            seen[v] = true;
        }
    }

    #[test]
    fn mcf_walks_the_full_pool_without_escaping() {
        let w = Workload::mcf(64);
        let prog = w.app().program().unwrap();
        let nodes = prog.symbol("nodes").unwrap();
        let mut exec = dise_cpu::Executor::from_program(&prog, Default::default());
        let mut node_stores = 0u64;
        while !exec.is_halted() {
            let e = exec.step();
            if let Some(m) = e.mem {
                if m.is_store && m.addr >= nodes && m.addr < nodes + 65_536 * 32 {
                    node_stores += 1;
                }
            }
        }
        assert!(node_stores >= 64 * 14, "every iteration writes a node");
    }

    #[test]
    fn twolf_converges_to_fewer_swaps() {
        // Count swap stores in the first and last quarter of the run:
        // annealing should make them rarer.
        let w = Workload::twolf(400);
        let prog = w.app().program().unwrap();
        let cells = prog.symbol("cells").unwrap();
        let mut exec = dise_cpu::Executor::from_program(&prog, Default::default());
        let mut swaps = Vec::new();
        let mut total = 0u64;
        while !exec.is_halted() {
            let e = exec.step();
            total += 1;
            if let Some(m) = e.mem {
                if m.is_store && m.addr >= cells && m.addr < cells + 256 * 8 {
                    swaps.push(total);
                }
            }
        }
        let quarter = total / 4;
        let early = swaps.iter().filter(|&&t| t < quarter).count();
        let late = swaps.iter().filter(|&&t| t > 3 * quarter).count();
        assert!(early > late, "swaps should decay: early {early}, late {late}");
    }

    #[test]
    fn hot_silent_fractions_match_paper_direction() {
        // §5.1: "in all HOT benchmarks—save bzip2—50% or more of all
        // stores to the watched address do not change the data value."
        for w in crate::all(300) {
            let prog = w.app().program().unwrap();
            let hot = prog.symbol("hot").unwrap();
            let mut exec = dise_cpu::Executor::from_program(&prog, Default::default());
            let (mut silent, mut total) = (0u64, 0u64);
            while !exec.is_halted() {
                let e = exec.step();
                if let Some(m) = e.mem {
                    if m.is_store && m.addr == hot {
                        total += 1;
                        if m.is_silent_store() {
                            silent += 1;
                        }
                    }
                }
            }
            let frac = silent as f64 / total.max(1) as f64;
            if w.name() == "bzip2" {
                assert!(frac < 0.5, "bzip2 HOT should be mostly non-silent, got {frac:.2}");
            } else {
                assert!(frac >= 0.4, "{} HOT should be heavily silent, got {frac:.2}", w.name());
            }
        }
    }

    #[test]
    fn mcf_has_lowest_ipc() {
        let mut ipcs = std::collections::HashMap::new();
        for w in crate::all(150) {
            let prog = w.app().program().unwrap();
            let mut m = Machine::from_program(&prog);
            let s = m.run_limit(3_000_000);
            ipcs.insert(w.name(), s.ipc());
        }
        let mcf = ipcs["mcf"];
        for (name, ipc) in &ipcs {
            if *name != "mcf" {
                assert!(mcf < *ipc, "mcf ({mcf:.2}) should trail {name} ({ipc:.2})");
            }
        }
        assert!(mcf < 1.0, "mcf must look memory-bound, got {mcf:.2}");
    }
}
