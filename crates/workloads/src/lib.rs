//! # dise-workloads — SPEC2000-integer-like benchmark kernels
//!
//! The paper evaluates on one "statically large and long running"
//! function from each of six SPEC2000 integer benchmarks (Table 1).
//! SPEC sources and Alpha binaries are not redistributable, so this
//! crate provides hand-written kernels in the `dise-isa` instruction set
//! that mimic each function's *algorithmic character* and are calibrated
//! toward the paper's workload statistics: store density (Table 1) and
//! per-watchpoint write frequency, including silent-store fractions
//! (Table 2). What the experiments actually exercise is the store
//! address/value stream, which these kernels reproduce in shape.
//!
//! | kernel | models | character |
//! |--------|--------|-----------|
//! | `bzip2` | `generateMTFValues` | move-to-front transform, byte shifting |
//! | `crafty` | `InitializeAttackBoards` | bitboard mask generation, shift/or chains |
//! | `gcc` | `regclass` | cost-table scans with per-class accumulation |
//! | `mcf` | `write_circs` | pointer-chasing list walk, cache-hostile |
//! | `twolf` | `uloop` | cell-swap annealing loop, conditional updates |
//! | `vortex` | `BMT_TraverseSets` | object-set traversal, status rewrites |
//!
//! Every kernel exposes the paper's six watchpoints: `HOT`, `WARM1`,
//! `WARM2`, `COLD` scalars, `INDIRECT` (a pointer to the same storage as
//! `HOT`), and `RANGE` (a small array).
//!
//! ```
//! use dise_workloads::{Workload, WatchKind};
//! use dise_debug::{run_baseline, Session, BackendKind};
//!
//! let w = Workload::bzip2(200);
//! let base = run_baseline(w.app(), Default::default())?;
//! let report = Session::new(w.app(), vec![w.watchpoint(WatchKind::Hot)],
//!                           BackendKind::dise_default())?.run();
//! assert!(report.overhead_vs(&base) < 3.0);
//! # Ok::<(), dise_debug::DebugError>(())
//! ```

mod kernels;
mod sweeps;
pub mod synthetic;
mod workload;

pub use sweeps::{transition_cost_sweep, watchpoint_set_sweep};
pub use workload::{WatchKind, Workload};

/// Default iteration count giving tens of thousands of dynamic
/// instructions per kernel — large enough for stable statistics, small
/// enough that the full experiment grid runs in minutes.
pub const DEFAULT_ITERS: u32 = 1500;

/// Build all six kernels at the given scale.
pub fn all(iters: u32) -> Vec<Workload> {
    vec![
        Workload::bzip2(iters),
        Workload::crafty(iters),
        Workload::gcc(iters),
        Workload::mcf(iters),
        Workload::twolf(iters),
        Workload::vortex(iters),
    ]
}

/// Look up a kernel by benchmark name.
pub fn by_name(name: &str, iters: u32) -> Option<Workload> {
    match name {
        "bzip2" => Some(Workload::bzip2(iters)),
        "crafty" => Some(Workload::crafty(iters)),
        "gcc" => Some(Workload::gcc(iters)),
        "mcf" => Some(Workload::mcf(iters)),
        "twolf" => Some(Workload::twolf(iters)),
        "vortex" => Some(Workload::vortex(iters)),
        _ => None,
    }
}
