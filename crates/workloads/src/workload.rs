//! The workload wrapper: an application plus its six watch targets.

use dise_asm::Asm;
use dise_debug::{Application, Condition, WatchExpr, Watchpoint};
use dise_isa::Width;

/// The paper's six watchpoints per benchmark (§5 "Benchmarks and
/// watchpoints").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WatchKind {
    /// A frequently written scalar.
    Hot,
    /// An occasionally written scalar.
    Warm1,
    /// A less occasionally written scalar.
    Warm2,
    /// A rarely written scalar.
    Cold,
    /// A pointer dereference aliasing the same storage as [`Hot`].
    ///
    /// [`Hot`]: WatchKind::Hot
    Indirect,
    /// A non-scalar (array/structure).
    Range,
}

impl WatchKind {
    /// All six kinds, in the paper's order.
    pub const ALL: [WatchKind; 6] = [
        WatchKind::Hot,
        WatchKind::Warm1,
        WatchKind::Warm2,
        WatchKind::Cold,
        WatchKind::Indirect,
        WatchKind::Range,
    ];

    /// The paper's label.
    pub fn label(&self) -> &'static str {
        match self {
            WatchKind::Hot => "HOT",
            WatchKind::Warm1 => "WARM1",
            WatchKind::Warm2 => "WARM2",
            WatchKind::Cold => "COLD",
            WatchKind::Indirect => "INDIRECT",
            WatchKind::Range => "RANGE",
        }
    }
}

/// One benchmark kernel, ready to debug.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Workload {
    pub(crate) name: &'static str,
    pub(crate) function: &'static str,
    pub(crate) app: Application,
    pub(crate) range_len: u64,
}

impl Workload {
    pub(crate) fn from_asm(
        name: &'static str,
        function: &'static str,
        asm: Asm,
        range_len: u64,
    ) -> Workload {
        let app = Application::new(asm, dise_asm::Layout::default());
        Workload { name, function, app, range_len }
    }

    /// Benchmark name (`bzip2`, `crafty`, …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The SPEC function the kernel models.
    pub fn function(&self) -> &'static str {
        self.function
    }

    /// The application to hand to [`dise_debug::Session`].
    pub fn app(&self) -> &Application {
        &self.app
    }

    /// Address of a watch symbol in the assembled image.
    fn sym(&self, name: &str) -> u64 {
        self.app
            .program()
            .expect("kernel assembles")
            .symbol(name)
            .unwrap_or_else(|| panic!("kernel {} lacks symbol {name}", self.name))
    }

    /// Build the watch expression for one of the paper's watchpoints.
    pub fn watch_expr(&self, kind: WatchKind) -> WatchExpr {
        match kind {
            WatchKind::Hot => WatchExpr::Scalar { addr: self.sym("hot"), width: Width::Q },
            WatchKind::Warm1 => WatchExpr::Scalar { addr: self.sym("warm1"), width: Width::Q },
            WatchKind::Warm2 => WatchExpr::Scalar { addr: self.sym("warm2"), width: Width::Q },
            WatchKind::Cold => WatchExpr::Scalar { addr: self.sym("cold"), width: Width::Q },
            WatchKind::Indirect => WatchExpr::Indirect { ptr: self.sym("ind_p"), width: Width::Q },
            WatchKind::Range => {
                WatchExpr::Range { base: self.sym("range_arr"), len: self.range_len }
            }
        }
    }

    /// An unconditional watchpoint.
    pub fn watchpoint(&self, kind: WatchKind) -> Watchpoint {
        Watchpoint::new(self.watch_expr(kind))
    }

    /// A conditional watchpoint whose predicate never holds — the
    /// paper's Fig. 4 methodology ("compares the value of the watched
    /// expression to a constant it never matches").
    pub fn conditional_watchpoint(&self, kind: WatchKind) -> Watchpoint {
        Watchpoint::conditional(self.watch_expr(kind), Condition::equals(u64::MAX))
    }

    /// The Fig. 6 sweep: the first `n` of up to 20 scalar watchpoints,
    /// ordered WARM1, WARM2, COLD, HOT, then the sixteen `extras`
    /// variables. HOT arrives fourth (vortex's silent stores already
    /// bite a 4-register hardware implementation), and everything past
    /// the fourth forces the hardware backend onto page protection.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 20`.
    pub fn sweep_watchpoints(&self, n: usize) -> Vec<Watchpoint> {
        assert!((1..=20).contains(&n), "sweep supports 1..=20 watchpoints");
        let mut wps = vec![
            self.watchpoint(WatchKind::Warm1),
            self.watchpoint(WatchKind::Warm2),
            self.watchpoint(WatchKind::Cold),
            self.watchpoint(WatchKind::Hot),
        ];
        let extras = self.sym("extras");
        for i in 0..16u64 {
            wps.push(Watchpoint::new(WatchExpr::Scalar { addr: extras + 8 * i, width: Width::Q }));
        }
        wps.truncate(n);
        wps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_cpu::Machine;

    #[test]
    fn all_kernels_assemble_run_and_halt() {
        for w in crate::all(120) {
            let prog = w.app().program().unwrap();
            let mut m = Machine::from_program(&prog);
            let stats = m.run_limit(4_000_000);
            assert!(m.exec.is_halted(), "{} did not halt", w.name());
            assert!(stats.instructions > 2_000, "{} too small", w.name());
            assert!(stats.ipc() > 0.05, "{} ipc {}", w.name(), stats.ipc());
        }
    }

    #[test]
    fn all_watch_symbols_resolve() {
        for w in crate::all(50) {
            for kind in WatchKind::ALL {
                let _ = w.watchpoint(kind);
            }
        }
    }

    #[test]
    fn indirect_aliases_hot_storage() {
        for w in crate::all(50) {
            let prog = w.app().program().unwrap();
            let mut mem = dise_mem::Memory::new();
            prog.load(&mut mem);
            let p = prog.symbol("ind_p").unwrap();
            assert_eq!(
                mem.read_u(p, 8),
                prog.symbol("hot").unwrap(),
                "{}: ind_p must point at hot",
                w.name()
            );
        }
    }

    #[test]
    fn kernels_store_with_realistic_density() {
        // Store density should be in the paper's 5–25% band (Table 1).
        for w in crate::all(200) {
            let prog = w.app().program().unwrap();
            let mut exec = dise_cpu::Executor::from_program(&prog, Default::default());
            let mut stores = 0u64;
            let mut total = 0u64;
            while !exec.is_halted() && total < 2_000_000 {
                let e = exec.step();
                total += 1;
                if e.mem.is_some_and(|m| m.is_store) {
                    stores += 1;
                }
            }
            let density = stores as f64 / total as f64;
            assert!((0.04..0.30).contains(&density), "{}: store density {density:.3}", w.name());
        }
    }

    #[test]
    fn hot_is_hotter_than_cold() {
        for w in crate::all(300) {
            let prog = w.app().program().unwrap();
            let hot = prog.symbol("hot").unwrap();
            let cold = prog.symbol("cold").unwrap();
            let mut exec = dise_cpu::Executor::from_program(&prog, Default::default());
            let (mut hot_w, mut cold_w) = (0u64, 0u64);
            while !exec.is_halted() {
                let e = exec.step();
                if let Some(m) = e.mem {
                    if m.is_store {
                        if m.addr == hot {
                            hot_w += 1;
                        } else if m.addr == cold {
                            cold_w += 1;
                        }
                    }
                }
            }
            assert!(hot_w > 10 * cold_w.max(1), "{}: hot {hot_w} vs cold {cold_w}", w.name());
            assert!(hot_w > 0, "{}: hot never written", w.name());
        }
    }
}
