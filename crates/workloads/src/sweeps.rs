//! Declarative machine-configuration batches for sensitivity sweeps.
//!
//! The paper's sensitivity figures re-run the *same* workload under
//! many machine configurations. A sweep declared here is a batch of
//! [`CpuConfig`]s that differ only in timing parameters, so the grid
//! runner in `dise-bench` can drive all of them from **one** functional
//! pass per cell (`dise_debug::run_session_batch`) instead of paying
//! functional replay per grid cell.

use dise_cpu::CpuConfig;

/// The debugger-transition-cost sensitivity batch.
///
/// The paper measures the application→debugger→application round trip
/// at ~290K cycles under gdb and ~513K under Visual Studio, then
/// conservatively models 100K throughout the evaluation (§5). This
/// sweep re-runs an experiment under all three costs; every other
/// machine parameter — and therefore the functional instruction
/// stream — is shared, so the three cells of a grid batch into a
/// single functional pass.
pub fn transition_cost_sweep(base: CpuConfig) -> Vec<(&'static str, CpuConfig)> {
    [("100K", 100_000), ("290K", 290_000), ("513K", 513_000)]
        .into_iter()
        .map(|(label, cost)| {
            let mut cpu = base;
            cpu.debugger_transition_cost = cost;
            (label, cpu)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_varies_only_the_transition_cost() {
        let base = CpuConfig::default();
        let sweep = transition_cost_sweep(base);
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[0].1, base, "the paper's 100K model is the baseline configuration");
        for (_, cpu) in &sweep {
            let mut normalized = *cpu;
            normalized.debugger_transition_cost = base.debugger_transition_cost;
            assert_eq!(normalized, base, "only the transition cost may vary");
            assert_eq!(cpu.engine, base.engine, "functional parameters are shared");
        }
    }
}
