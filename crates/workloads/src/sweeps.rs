//! Declarative machine-configuration batches for sensitivity sweeps.
//!
//! The paper's sensitivity figures re-run the *same* workload under
//! many machine configurations. A sweep declared here is a batch of
//! [`CpuConfig`]s that differ only in timing parameters, so the grid
//! runner in `dise-bench` can drive all of them from **one** functional
//! pass per cell (`dise_debug::run_session_batch`) instead of paying
//! functional replay per grid cell.

use dise_cpu::CpuConfig;
use dise_debug::Watchpoint;

use crate::{WatchKind, Workload};

/// The debugger-transition-cost sensitivity batch.
///
/// The paper measures the application→debugger→application round trip
/// at ~290K cycles under gdb and ~513K under Visual Studio, then
/// conservatively models 100K throughout the evaluation (§5). This
/// sweep re-runs an experiment under all three costs; every other
/// machine parameter — and therefore the functional instruction
/// stream — is shared, so the three cells of a grid batch into a
/// single functional pass.
pub fn transition_cost_sweep(base: CpuConfig) -> Vec<(&'static str, CpuConfig)> {
    [("100K", 100_000), ("290K", 290_000), ("513K", 513_000)]
        .into_iter()
        .map(|(label, cost)| {
            let mut cpu = base;
            cpu.debugger_transition_cost = cost;
            (label, cpu)
        })
        .collect()
}

/// The multi-watchpoint-set sweep: three qualitatively different
/// watchpoint sets over one kernel — a hot scalar, a pair of cooler
/// scalars, and the non-scalar range. Every set leaves the kernel's
/// functional stream untouched under an observing backend, so a grid
/// over (set × observing backend × timing) batches into **one**
/// functional pass per workload (`dise_debug::ObserverBatch` members
/// each carry their own set); only perturbing backends pay per set.
///
/// The RANGE set doubles as a per-member "no experiment" probe:
/// hardware registers decline non-scalars, and the member-level error
/// must not cost the rest of the batch its shared pass.
pub fn watchpoint_set_sweep(w: &Workload) -> Vec<(&'static str, Vec<Watchpoint>)> {
    vec![
        ("HOT", vec![w.watchpoint(WatchKind::Hot)]),
        ("WARM1+COLD", vec![w.watchpoint(WatchKind::Warm1), w.watchpoint(WatchKind::Cold)]),
        ("RANGE", vec![w.watchpoint(WatchKind::Range)]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchpoint_sets_are_distinct_and_nonempty() {
        let w = crate::all(10).remove(0);
        let sets = watchpoint_set_sweep(&w);
        assert_eq!(sets.len(), 3);
        for (label, set) in &sets {
            assert!(!set.is_empty(), "{label}");
        }
        for i in 0..sets.len() {
            for j in i + 1..sets.len() {
                assert_ne!(sets[i].1, sets[j].1, "sets {i} and {j} must differ");
            }
        }
    }

    #[test]
    fn sweep_varies_only_the_transition_cost() {
        let base = CpuConfig::default();
        let sweep = transition_cost_sweep(base);
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[0].1, base, "the paper's 100K model is the baseline configuration");
        for (_, cpu) in &sweep {
            let mut normalized = *cpu;
            normalized.debugger_transition_cost = base.debugger_transition_cost;
            assert_eq!(normalized, base, "only the transition cost may vary");
            assert_eq!(cpu.engine, base.engine, "functional parameters are shared");
        }
    }
}
