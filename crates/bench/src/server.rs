//! # Debug-sessions-as-a-service: a job list in, a transcript out
//!
//! [`serve`] turns a plain-text job list into a fleet of
//! [`SessionTask`]s on one cooperative [`Scheduler`] and streams a
//! completion line per session *as it finishes* (completion order),
//! then returns a deterministic transcript in *submission* order plus
//! the scheduler's fairness counters. The `session_server` binary wraps
//! this for stdin/file use.
//!
//! ## Job grammar
//!
//! One job per line; `#` starts a comment; blank lines are skipped:
//!
//! ```text
//! <name> kernel=<bzip2|crafty|gcc|mcf|twolf|vortex> watch=<hot|warm1|warm2|cold|indirect|range>
//!        backend=<dise|cmp|vm|hw|rewrite|step> [iters=<n>] [cost=<cycles>] [after=<name>]
//! ```
//!
//! `after=` gates a session on an **earlier** job's completion
//! (forward references are rejected, so dependency cycles are
//! unrepresentable — the same backward-only rule as
//! [`Scheduler::spawn_after`]). `cost=` overrides the modelled
//! debugger-transition stall, `iters=` the kernel scale.
//!
//! ## Determinism
//!
//! The streamed lines arrive in completion order, which depends on the
//! worker count; the returned transcript is re-assembled in submission
//! order and is byte-identical for every worker count and slice budget
//! (same argument as the grid: task ids are spawn order, outputs are
//! gathered by id). CI pins this by diffing the transcript of a
//! single-worker run against a committed golden file.

use std::collections::HashMap;
use std::fmt::Write as _;

use dise_cpu::CpuConfig;
use dise_debug::{BackendKind, DebugError, SchedStats, Scheduler, SessionReport, SessionTask};
use dise_workloads::{by_name, WatchKind};

/// One parsed job line: a named debugging session request.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Unique session name (the grammar's first token).
    pub name: String,
    /// Kernel to debug (`kernel=`), validated against
    /// [`dise_workloads::by_name`].
    pub kernel: String,
    /// Kernel scale (`iters=`, default 40 — small enough that a
    /// thousand-session queue drains in seconds on one core).
    pub iters: u32,
    /// Which of the paper's watchpoint localities to set (`watch=`).
    pub watch: WatchKind,
    /// Debugging backend (`backend=`).
    pub backend: BackendKind,
    /// Debugger-transition stall override in cycles (`cost=`).
    pub cost: Option<u64>,
    /// Name of an earlier job this session must wait for (`after=`).
    pub after: Option<String>,
}

/// Default `iters=` when a job line omits it.
pub const DEFAULT_JOB_ITERS: u32 = 40;

fn parse_watch(s: &str) -> Result<WatchKind, String> {
    match s {
        "hot" => Ok(WatchKind::Hot),
        "warm1" => Ok(WatchKind::Warm1),
        "warm2" => Ok(WatchKind::Warm2),
        "cold" => Ok(WatchKind::Cold),
        "indirect" => Ok(WatchKind::Indirect),
        "range" => Ok(WatchKind::Range),
        other => {
            Err(format!("unknown watch {other:?} (expected hot/warm1/warm2/cold/indirect/range)"))
        }
    }
}

fn parse_backend(s: &str) -> Result<BackendKind, String> {
    match s {
        "dise" => Ok(BackendKind::dise_default()),
        "cmp" => Ok(BackendKind::DiseComparators),
        "vm" => Ok(BackendKind::VirtualMemory),
        "hw" => Ok(BackendKind::hw4()),
        "rewrite" => Ok(BackendKind::BinaryRewrite),
        "step" => Ok(BackendKind::SingleStep),
        other => Err(format!("unknown backend {other:?} (expected dise/cmp/vm/hw/rewrite/step)")),
    }
}

/// Parse a job list (the grammar above) into specs.
///
/// # Errors
///
/// Returns a message naming the offending line for: missing required
/// keys, unknown keys/values, duplicate names, unknown kernels, and
/// `after=` references that are not an *earlier* job's name.
pub fn parse_jobs(text: &str) -> Result<Vec<JobSpec>, String> {
    let mut jobs: Vec<JobSpec> = Vec::new();
    let mut seen: HashMap<String, usize> = HashMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        let mut tokens = line.split_whitespace();
        let name = tokens.next().expect("non-empty line has a first token").to_string();
        if name.contains('=') {
            return Err(at(format!("first token {name:?} must be the session name, not a key")));
        }
        if seen.contains_key(&name) {
            return Err(at(format!("duplicate session name {name:?}")));
        }

        let (mut kernel, mut watch, mut backend) = (None, None, None);
        let (mut iters, mut cost, mut after) = (DEFAULT_JOB_ITERS, None, None);
        for tok in tokens {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| at(format!("expected key=value, got {tok:?}")))?;
            match key {
                "kernel" => {
                    if by_name(value, 1).is_none() {
                        return Err(at(format!(
                            "unknown kernel {value:?} (expected bzip2/crafty/gcc/mcf/twolf/vortex)"
                        )));
                    }
                    kernel = Some(value.to_string());
                }
                "watch" => watch = Some(parse_watch(value).map_err(&at)?),
                "backend" => backend = Some(parse_backend(value).map_err(&at)?),
                "iters" => {
                    iters =
                        value.parse().map_err(|e| at(format!("invalid iters {value:?}: {e}")))?;
                }
                "cost" => {
                    cost = Some(
                        value.parse().map_err(|e| at(format!("invalid cost {value:?}: {e}")))?,
                    );
                }
                "after" => {
                    if !seen.contains_key(value) {
                        return Err(at(format!(
                            "after={value:?} must name an earlier job (forward references \
                             are rejected, so dependency cycles cannot be written)"
                        )));
                    }
                    after = Some(value.to_string());
                }
                other => return Err(at(format!("unknown key {other:?}"))),
            }
        }
        let kernel = kernel.ok_or_else(|| at("missing kernel=".into()))?;
        let watch = watch.ok_or_else(|| at("missing watch=".into()))?;
        let backend = backend.ok_or_else(|| at("missing backend=".into()))?;
        seen.insert(name.clone(), jobs.len());
        jobs.push(JobSpec { name, kernel, iters, watch, backend, cost, after });
    }
    Ok(jobs)
}

impl JobSpec {
    /// The session task this job describes.
    pub fn task(&self) -> SessionTask {
        let w = by_name(&self.kernel, self.iters).expect("parse_jobs validated the kernel");
        let cpu = match self.cost {
            Some(c) => CpuConfig { debugger_transition_cost: c, ..CpuConfig::default() },
            None => CpuConfig::default(),
        };
        SessionTask::session(w.app(), vec![w.watchpoint(self.watch)], self.backend, cpu)
    }
}

/// One line summarising a finished session.
fn report_line(job: &JobSpec, report: &Result<SessionReport, DebugError>) -> String {
    match report {
        Ok(r) => format!(
            "done {name} kernel={kernel} watch={watch} cycles={cycles} instructions={insns} \
             transitions={user}+{spurious}spurious",
            name = job.name,
            kernel = job.kernel,
            watch = job.watch.label(),
            cycles = r.run.cycles,
            insns = r.run.instructions,
            user = r.transitions.user,
            spurious = r.transitions.spurious_total(),
        ),
        Err(e) => format!("error {name}: {e}", name = job.name),
    }
}

/// Outcome of [`serve`]: the deterministic transcript plus the
/// scheduler's fairness counters for the run.
pub struct ServeOutcome {
    /// Submission-order report: a `=== session_server report ===`
    /// banner, one line per job, and a closing `sessions=N` line.
    /// Byte-identical for every worker count and slice budget.
    pub transcript: String,
    /// Fairness counters ([`Scheduler::stats`]) after the drain. These
    /// *do* vary with the worker count and slice budget (preemptions,
    /// queue waits), which is why they are reported separately from the
    /// deterministic transcript.
    pub stats: SchedStats,
}

/// Run every job on one cooperative scheduler.
///
/// `on_event` receives one [`report_line`] per session *in completion
/// order* as sessions finish (called from worker threads, outside the
/// scheduler lock). The returned [`ServeOutcome::transcript`] holds the
/// same lines re-assembled in submission order.
pub fn serve<F>(jobs: &[JobSpec], workers: usize, slice: u64, on_event: F) -> ServeOutcome
where
    F: Fn(&str) + Sync,
{
    let sched = Scheduler::new(slice);
    let mut ids = Vec::with_capacity(jobs.len());
    let mut id_of: HashMap<&str, usize> = HashMap::new();
    for job in jobs {
        let task = job.task();
        let id = match &job.after {
            Some(dep) => sched.spawn_after(task, id_of[dep.as_str()]),
            None => sched.spawn(task),
        };
        id_of.insert(job.name.as_str(), id);
        ids.push(id);
    }

    let outputs = sched.drain_with(workers, |id, output| {
        let job = &jobs[id];
        let reports = match output {
            dise_debug::TaskOutput::Batch(r) => r,
            other => unreachable!("JobSpec::task spawns batches of one, got {other:?}"),
        };
        let report = match reports {
            Ok(rs) => Ok(rs[0].clone()),
            Err(e) => Err(e.clone()),
        };
        on_event(&report_line(job, &report));
    });

    let mut by_id: HashMap<usize, _> = outputs.into_iter().collect();
    let stats = sched.stats();
    let mut transcript = String::from("=== session_server report ===\n");
    for (job, id) in jobs.iter().zip(&ids) {
        let reports = by_id.remove(id).expect("drain returns every spawned task").into_batch();
        let report = reports.map(|mut rs| rs.pop().expect("a session task is a batch of one"));
        let _ = writeln!(transcript, "{}", report_line(job, &report));
    }
    let _ = writeln!(transcript, "sessions={}", stats.completed);
    ServeOutcome { transcript, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = "\
# two independent sessions and one gated on the first
a kernel=mcf watch=hot backend=dise iters=3
b kernel=gcc watch=cold backend=vm iters=3 cost=1000
c kernel=mcf watch=range backend=cmp iters=3 after=a
";

    #[test]
    fn parses_the_grammar() {
        let jobs = parse_jobs(SMOKE).expect("smoke list parses");
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].name, "a");
        assert_eq!(jobs[1].cost, Some(1000));
        assert_eq!(jobs[2].after.as_deref(), Some("a"));
        assert_eq!(jobs[2].watch, WatchKind::Range);
    }

    #[test]
    fn rejects_bad_lines_with_line_numbers() {
        for (list, needle) in [
            ("a kernel=mcf watch=hot\n", "missing backend="),
            ("a kernel=spec watch=hot backend=vm\n", "unknown kernel"),
            ("a kernel=mcf watch=tepid backend=vm\n", "unknown watch"),
            ("a kernel=mcf watch=hot backend=gdb\n", "unknown backend"),
            ("a kernel=mcf watch=hot backend=vm\na kernel=gcc watch=hot backend=vm\n", "duplicate"),
            (
                "a kernel=mcf watch=hot backend=vm after=b\nb kernel=gcc watch=hot backend=vm\n",
                "earlier job",
            ),
            ("kernel=mcf watch=hot backend=vm\n", "session name"),
            ("a kernel=mcf watch=hot backend=vm iters=4O\n", "invalid iters"),
        ] {
            let err = parse_jobs(list).expect_err(needle);
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
            assert!(err.starts_with("line "), "{err:?} should carry a line number");
        }
    }

    #[test]
    fn transcript_is_deterministic_and_streams_every_session() {
        let jobs = parse_jobs(SMOKE).expect("smoke list parses");
        let streamed = std::sync::Mutex::new(Vec::new());
        let one = serve(&jobs, 1, 128, |line| streamed.lock().unwrap().push(line.to_string()));
        assert_eq!(streamed.lock().unwrap().len(), jobs.len());
        let four = serve(&jobs, 4, 128, |_| {});
        assert_eq!(one.transcript, four.transcript, "transcript must not depend on workers");
        let unsliced = serve(&jobs, 1, u64::MAX, |_| {});
        assert_eq!(one.transcript, unsliced.transcript, "transcript must not depend on slice");
        assert_eq!(one.stats.completed, jobs.len());
        assert!(one.transcript.contains("done a "));
        assert!(one.transcript.ends_with("sessions=3\n"));
    }
}
