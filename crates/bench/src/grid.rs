//! The job-grid subsystem: every table/figure is a grid of independent
//! debugging sessions (kernel × watchpoint-set × backend × config).
//! This module decomposes a grid into [`SessionJob`] values, runs them
//! on a `std::thread` worker pool, and reassembles the per-cell results
//! in submission order, so parallel output is byte-identical to serial.
//!
//! Worker count comes from the `DISE_JOBS` environment variable
//! (default: the machine's available parallelism, capped by the number
//! of jobs); `DISE_JOBS=1` runs every job inline on the calling thread.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dise_cpu::CpuConfig;
use dise_debug::{
    app_fingerprint, run_session, BackendKind, BaselineCache, DebugError, Scheduler, SessionReport,
    SessionTask, TaskOutput, Watchpoint,
};
use dise_workloads::Workload;

/// One cell of an experiment grid: a kernel, the watchpoints to plant,
/// the backend implementing them, and the machine configuration.
#[derive(Clone, Debug)]
pub struct SessionJob {
    /// The kernel to debug.
    pub workload: Workload,
    /// The watchpoints to plant.
    pub watchpoints: Vec<Watchpoint>,
    /// The backend implementing them.
    pub backend: BackendKind,
    /// Machine configuration (per-cell override).
    pub cpu: CpuConfig,
}

impl SessionJob {
    /// A cell under the given configuration.
    pub fn new(
        workload: Workload,
        watchpoints: Vec<Watchpoint>,
        backend: BackendKind,
        cpu: CpuConfig,
    ) -> SessionJob {
        SessionJob { workload, watchpoints, backend, cpu }
    }

    /// Run the session; `Err` carries the paper's "no experiment" bars.
    ///
    /// # Errors
    ///
    /// As [`dise_debug::run_session`].
    pub fn report(&self) -> Result<SessionReport, DebugError> {
        run_session(self.workload.app(), self.watchpoints.clone(), self.backend, self.cpu)
    }

    /// Overhead (normalised execution time) of the session against the
    /// kernel's baseline from the shared cache, or `None` when the
    /// backend cannot implement the watchpoints (or the watchpoint is
    /// ill-formed) — the paper's "no experiment" bars.
    ///
    /// # Panics
    ///
    /// Panics if the session reports an execution error (the calibrated
    /// kernels must run clean).
    pub fn overhead(&self, baselines: &BaselineCache) -> Option<f64> {
        self.overhead_of(self.report(), baselines)
    }

    /// The resumable form of this cell: a [`SessionTask`] whose output
    /// [`SessionJob::overhead_of`] converts exactly as
    /// [`SessionJob::overhead`] would.
    pub fn task(&self) -> SessionTask {
        SessionTask::session(self.workload.app(), self.watchpoints.clone(), self.backend, self.cpu)
    }

    /// Convert a session result (from [`SessionJob::report`] or a
    /// drained [`SessionTask`]) into this cell's overhead — the one
    /// conversion both the threaded and the scheduled grid paths share.
    ///
    /// # Panics
    ///
    /// As [`SessionJob::overhead`].
    pub fn overhead_of(
        &self,
        report: Result<SessionReport, DebugError>,
        baselines: &BaselineCache,
    ) -> Option<f64> {
        let base = baselines
            .get_or_run(self.workload.name(), self.workload.app(), self.cpu)
            .expect("kernel assembles");
        match report {
            Ok(report) => {
                assert_eq!(report.error, None, "{}: session must run clean", self.workload.name());
                Some(report.overhead_vs(&base))
            }
            Err(DebugError::Unsupported { .. } | DebugError::InvalidWatchpoint { .. }) => None,
            Err(e) => panic!("{}: {e}", self.workload.name()),
        }
    }
}

/// A group of grid cells that share one functional execution: same
/// kernel, same watchpoints, same *functional* backend — the cells
/// differ only in timing configuration, so
/// [`dise_debug::run_session_batch`] replays a single `Exec` stream
/// through one timing model per member.
#[derive(Clone, Debug)]
pub struct SessionBatch {
    /// The kernel to debug.
    pub workload: Workload,
    /// The watchpoints to plant.
    pub watchpoints: Vec<Watchpoint>,
    /// The functional backend (timing-only knobs already folded into
    /// `cpus` by [`BackendKind::split_timing`]).
    pub backend: BackendKind,
    /// Per-member effective machine configurations, in member order.
    pub cpus: Vec<CpuConfig>,
    /// Original grid-cell index of each member, parallel to `cpus`.
    pub cells: Vec<usize>,
}

impl SessionBatch {
    /// Per-member overheads, in member order — member `i` is
    /// byte-identical to `jobs[self.cells[i]].overhead(baselines)`.
    ///
    /// # Panics
    ///
    /// As [`SessionJob::overhead`].
    pub fn overheads(&self, baselines: &BaselineCache) -> Vec<Option<f64>> {
        self.overheads_of(self.task().run_to_completion().into_batch(), baselines)
    }

    /// The resumable form of this batch: a [`SessionTask`] whose output
    /// [`SessionBatch::overheads_of`] converts exactly as
    /// [`SessionBatch::overheads`] would.
    pub fn task(&self) -> SessionTask {
        SessionTask::batch(self.workload.app(), self.watchpoints.clone(), self.backend, &self.cpus)
    }

    /// Convert batch results into per-member overheads — shared by the
    /// threaded and the scheduled grid paths.
    ///
    /// # Panics
    ///
    /// As [`SessionJob::overhead`].
    pub fn overheads_of(
        &self,
        reports: Result<Vec<SessionReport>, DebugError>,
        baselines: &BaselineCache,
    ) -> Vec<Option<f64>> {
        let base = baselines
            .get_or_run(self.workload.name(), self.workload.app(), self.cpus[0])
            .expect("kernel assembles");
        match reports {
            Ok(reports) => reports
                .iter()
                .map(|r| {
                    assert_eq!(r.error, None, "{}: session must run clean", self.workload.name());
                    Some(r.overhead_vs(&base))
                })
                .collect(),
            Err(DebugError::Unsupported { .. } | DebugError::InvalidWatchpoint { .. }) => {
                vec![None; self.cpus.len()]
            }
            Err(e) => panic!("{}: {e}", self.workload.name()),
        }
    }
}

/// One member of an [`ObserverGroup`]: an observing backend with its
/// own watchpoint set, the effective timing configurations of its
/// cells, and the original cell indices they scatter back to.
#[derive(Clone, Debug)]
pub struct ObserverMember {
    /// The observing backend (see [`BackendKind::observation_only`]).
    pub backend: BackendKind,
    /// The member's own watchpoints — members of one group may watch
    /// entirely different things.
    pub watchpoints: Vec<Watchpoint>,
    /// Per-cell effective machine configurations, in member order.
    pub cpus: Vec<CpuConfig>,
    /// Original grid-cell index of each configuration, parallel to
    /// `cpus`.
    pub cells: Vec<usize>,
}

/// A group of grid cells that share one functional execution **across
/// watchpoint sets and backends**: same kernel, every backend observing
/// (never perturbing) — so a single pass of the unmodified application
/// feeds all members' transition detectors and timing models via
/// [`dise_debug::ObserverBatch`]. The group key is the *workload
/// alone*: observers' watchpoints steer only what the debugger traps
/// on, never what the application executes, so cells that differ in
/// watchpoint set still merge. Unlike [`SessionBatch`], members need
/// not agree on DISE engine capacities either: observers install no
/// productions, so the engine is functionally inert.
#[derive(Clone, Debug)]
pub struct ObserverGroup {
    /// The kernel to debug.
    pub workload: Workload,
    /// The observing (backend, watchpoint-set) members sharing the
    /// pass, in first-appearance order.
    pub members: Vec<ObserverMember>,
}

impl ObserverGroup {
    /// Per-cell overheads, tagged with their original cell index —
    /// entry for cell `c` is byte-identical to
    /// `jobs[c].overhead(baselines)`.
    ///
    /// # Panics
    ///
    /// As [`SessionJob::overhead`].
    pub fn overheads(&self, baselines: &BaselineCache) -> Vec<(usize, Option<f64>)> {
        self.overheads_of(self.task().run_to_completion().into_observe(), baselines)
    }

    /// The resumable form of this group: a [`SessionTask`] whose output
    /// [`ObserverGroup::overheads_of`] converts exactly as
    /// [`ObserverGroup::overheads`] would.
    pub fn task(&self) -> SessionTask {
        SessionTask::observer(self.workload.app(), self.member_specs())
    }

    /// [`ObserverGroup::overheads`] through the persistent trace store
    /// at `trace` (`None` behaves exactly as [`ObserverGroup::overheads`]
    /// — see [`trace_dir_from_env`]).
    ///
    /// # Panics
    ///
    /// As [`SessionJob::overhead`]; additionally, a stale or corrupt
    /// stored trace fails the run loudly ([`DebugError::Trace`]) — it is
    /// never silently re-recorded, because a trace that stops matching
    /// its fingerprinted kernel means the store is being misused.
    pub fn overheads_traced(
        &self,
        baselines: &BaselineCache,
        trace: Option<&Path>,
    ) -> Vec<(usize, Option<f64>)> {
        self.overheads_of(self.task_traced(trace).run_to_completion().into_observe(), baselines)
    }

    /// The resumable form of [`ObserverGroup::overheads_traced`]: with a
    /// trace directory, the group's shared pass is **replayed** from the
    /// store when a trace for this kernel (keyed by name + program
    /// fingerprint) already exists — zero functional passes — and
    /// recorded into the store on miss, so the next run replays.
    pub fn task_traced(&self, trace: Option<&Path>) -> SessionTask {
        let Some(path) = trace.and_then(|dir| self.trace_path(dir)) else {
            return self.task();
        };
        if path.exists() {
            SessionTask::observer_replay(self.workload.app(), self.member_specs(), &path)
        } else {
            SessionTask::observer_recorded(self.workload.app(), self.member_specs(), &path)
        }
    }

    /// Where this group's shared pass lives inside the trace store at
    /// `dir`: keyed by kernel name *and* program fingerprint, so two
    /// scales of one kernel — or any edit to it — never collide, and a
    /// recorded trace is valid forever. `None` when the kernel fails to
    /// assemble (the normal, traceless path reports that error in the
    /// shape callers expect). Creates `dir` on first use.
    pub fn trace_path(&self, dir: &Path) -> Option<PathBuf> {
        let fp = app_fingerprint(self.workload.app()).ok()?;
        // A missing store directory is "first recording", not an error;
        // if creation truly failed, recording into it fails loudly.
        let _ = std::fs::create_dir_all(dir);
        Some(dir.join(format!("{}-{fp:016x}.dtrc", self.workload.name())))
    }

    fn member_specs(&self) -> Vec<(BackendKind, Vec<Watchpoint>, Vec<CpuConfig>)> {
        self.members.iter().map(|m| (m.backend, m.watchpoints.clone(), m.cpus.clone())).collect()
    }

    /// Convert shared-pass results into per-cell overheads — shared by
    /// the threaded and the scheduled grid paths.
    ///
    /// # Panics
    ///
    /// As [`SessionJob::overhead`].
    pub fn overheads_of(
        &self,
        results: Result<Vec<Result<Vec<SessionReport>, DebugError>>, DebugError>,
        baselines: &BaselineCache,
    ) -> Vec<(usize, Option<f64>)> {
        let base = baselines
            .get_or_run(self.workload.name(), self.workload.app(), self.members[0].cpus[0])
            .expect("kernel assembles");
        // The outer error is an assembly failure; watchpoint problems
        // (ill-formed, unsupported) come back per member below, exactly
        // as when each cell runs alone.
        let results = results.unwrap_or_else(|e| panic!("{}: {e}", self.workload.name()));
        let mut out = Vec::new();
        for (m, result) in self.members.iter().zip(results) {
            match result {
                Ok(reports) => {
                    for (&cell, r) in m.cells.iter().zip(&reports) {
                        assert_eq!(
                            r.error,
                            None,
                            "{}: session must run clean",
                            self.workload.name()
                        );
                        out.push((cell, Some(r.overhead_vs(&base))));
                    }
                }
                Err(DebugError::Unsupported { .. } | DebugError::InvalidWatchpoint { .. }) => {
                    out.extend(m.cells.iter().map(|&c| (c, None)));
                }
                Err(e) => panic!("{}: {e}", self.workload.name()),
            }
        }
        out
    }
}

/// One engine-configuration sub-batch of a [`PerturbGroup`]: the cells
/// sharing a functional stream (their configurations agree on DISE
/// engine capacities), each with its own timing configuration.
#[derive(Clone, Debug)]
pub struct PerturbSubBatch {
    /// Per-cell effective machine configurations, in member order.
    pub cpus: Vec<CpuConfig>,
    /// Original grid-cell index of each configuration, parallel to
    /// `cpus`.
    pub cells: Vec<usize>,
}

/// A group of perturbing grid cells that share one *image*: same
/// kernel, same watchpoints, same perturbing backend — the cells differ
/// in engine capacities (one functional stream per sub-batch) and
/// timing configuration. [`dise_debug::run_perturbing_group`] assembles
/// and loads the backend-transformed program once and forks every
/// sub-batch's machine from it copy-on-write: K sub-batches cost 1
/// image load + K forks instead of K loads.
#[derive(Clone, Debug)]
pub struct PerturbGroup {
    /// The kernel to debug.
    pub workload: Workload,
    /// The watchpoints to plant.
    pub watchpoints: Vec<Watchpoint>,
    /// The perturbing backend (timing-only knobs already folded into
    /// the sub-batch configurations by [`BackendKind::split_timing`]).
    pub backend: BackendKind,
    /// Engine-configuration sub-batches, in first-appearance order.
    pub batches: Vec<PerturbSubBatch>,
}

impl PerturbGroup {
    /// Per-cell overheads, tagged with their original cell index —
    /// entry for cell `c` is byte-identical to
    /// `jobs[c].overhead(baselines)`.
    ///
    /// # Panics
    ///
    /// As [`SessionJob::overhead`].
    pub fn overheads(&self, baselines: &BaselineCache) -> Vec<(usize, Option<f64>)> {
        self.overheads_of(self.task().run_to_completion().into_group(), baselines)
    }

    /// The resumable form of this group: a [`SessionTask`] whose output
    /// [`PerturbGroup::overheads_of`] converts exactly as
    /// [`PerturbGroup::overheads`] would.
    pub fn task(&self) -> SessionTask {
        let cpus: Vec<Vec<CpuConfig>> = self.batches.iter().map(|b| b.cpus.clone()).collect();
        SessionTask::perturbing_group(
            self.workload.app(),
            self.watchpoints.clone(),
            self.backend,
            &cpus,
        )
    }

    /// Convert group results into per-cell overheads — shared by the
    /// threaded and the scheduled grid paths.
    ///
    /// # Panics
    ///
    /// As [`SessionJob::overhead`].
    pub fn overheads_of(
        &self,
        grouped: Result<Vec<Result<Vec<SessionReport>, DebugError>>, DebugError>,
        baselines: &BaselineCache,
    ) -> Vec<(usize, Option<f64>)> {
        let base = baselines
            .get_or_run(self.workload.name(), self.workload.app(), self.batches[0].cpus[0])
            .expect("kernel assembles");
        let per_batch = match grouped {
            Ok(per_batch) => per_batch,
            Err(DebugError::Unsupported { .. } | DebugError::InvalidWatchpoint { .. }) => {
                return self
                    .batches
                    .iter()
                    .flat_map(|b| b.cells.iter().map(|&c| (c, None)))
                    .collect();
            }
            Err(e) => panic!("{}: {e}", self.workload.name()),
        };
        let mut out = Vec::new();
        for (b, result) in self.batches.iter().zip(per_batch) {
            match result {
                Ok(reports) => {
                    for (&cell, r) in b.cells.iter().zip(&reports) {
                        assert_eq!(
                            r.error,
                            None,
                            "{}: session must run clean",
                            self.workload.name()
                        );
                        out.push((cell, Some(r.overhead_vs(&base))));
                    }
                }
                Err(DebugError::Unsupported { .. } | DebugError::InvalidWatchpoint { .. }) => {
                    out.extend(b.cells.iter().map(|&c| (c, None)));
                }
                Err(e) => panic!("{}: {e}", self.workload.name()),
            }
        }
        out
    }
}

/// A grid group sharing functional work: a single perturbing backend
/// replayed under many timing configurations ([`SessionBatch`]), many
/// observing backends fanned off one pass of the unmodified application
/// ([`ObserverGroup`]), or a perturbing backend's engine-configuration
/// sub-batches forked copy-on-write from one loaded image
/// ([`PerturbGroup`]).
#[derive(Clone, Debug)]
pub enum CellGroup {
    /// A perturbing backend's private replay (timing-only batching).
    Replay(SessionBatch),
    /// Observing backends sharing the application's own pass.
    Observe(ObserverGroup),
    /// A perturbing backend's sub-batches forked from one shared image.
    Fork(PerturbGroup),
}

impl CellGroup {
    /// Per-cell overheads tagged with original cell indices.
    ///
    /// # Panics
    ///
    /// As [`SessionJob::overhead`].
    pub fn overheads(&self, baselines: &BaselineCache) -> Vec<(usize, Option<f64>)> {
        match self {
            CellGroup::Replay(b) => b.cells.iter().copied().zip(b.overheads(baselines)).collect(),
            CellGroup::Observe(g) => g.overheads(baselines),
            CellGroup::Fork(g) => g.overheads(baselines),
        }
    }

    /// The resumable form of this group — the unit the scheduled grid
    /// spawns.
    pub fn task(&self) -> SessionTask {
        match self {
            CellGroup::Replay(b) => b.task(),
            CellGroup::Observe(g) => g.task(),
            CellGroup::Fork(g) => g.task(),
        }
    }

    /// [`CellGroup::overheads`] through the persistent trace store:
    /// observer groups record on miss and replay on hit (see
    /// [`ObserverGroup::overheads_traced`]); perturbing groups change
    /// the functional stream and always execute, trace or no trace.
    ///
    /// # Panics
    ///
    /// As [`CellGroup::overheads`], and loudly on a stale or corrupt
    /// stored trace.
    pub fn overheads_traced(
        &self,
        baselines: &BaselineCache,
        trace: Option<&Path>,
    ) -> Vec<(usize, Option<f64>)> {
        match self {
            CellGroup::Observe(g) => g.overheads_traced(baselines, trace),
            CellGroup::Replay(_) | CellGroup::Fork(_) => self.overheads(baselines),
        }
    }

    /// The resumable form of [`CellGroup::overheads_traced`] — what the
    /// scheduled grid spawns when a trace store is configured.
    pub fn task_traced(&self, trace: Option<&Path>) -> SessionTask {
        match self {
            CellGroup::Observe(g) => g.task_traced(trace),
            CellGroup::Replay(_) | CellGroup::Fork(_) => self.task(),
        }
    }

    /// Scatter a drained [`SessionTask`] output back to per-cell
    /// overheads, byte-identical to [`CellGroup::overheads`].
    ///
    /// # Panics
    ///
    /// Panics when `output`'s shape does not match this group (a caller
    /// bug: the output must come from this group's
    /// [`CellGroup::task`]), and as [`SessionJob::overhead`].
    pub fn overheads_from(
        &self,
        output: TaskOutput,
        baselines: &BaselineCache,
    ) -> Vec<(usize, Option<f64>)> {
        match self {
            CellGroup::Replay(b) => b
                .cells
                .iter()
                .copied()
                .zip(b.overheads_of(output.into_batch(), baselines))
                .collect(),
            CellGroup::Observe(g) => g.overheads_of(output.into_observe(), baselines),
            CellGroup::Fork(g) => g.overheads_of(output.into_group(), baselines),
        }
    }

    /// Original cell indices covered by this group.
    pub fn cells(&self) -> Vec<usize> {
        match self {
            CellGroup::Replay(b) => b.cells.clone(),
            CellGroup::Observe(g) => g.members.iter().flat_map(|m| m.cells.clone()).collect(),
            CellGroup::Fork(g) => g.batches.iter().flat_map(|b| b.cells.clone()).collect(),
        }
    }
}

/// Group grid cells for single-pass execution — the cell-key lattice
/// generalising [`BackendKind::split_timing`] across watchpoint sets
/// and backends:
///
/// * every cell's backend is first split into its functional core and
///   folded timing knobs;
/// * cells whose functional core **observes** (virtual memory, hardware
///   registers, DISE comparators) group by (kernel) alone into an
///   [`ObserverGroup`] — one pass of the unmodified application serves
///   every watchpoint set, every observing backend and every timing
///   configuration at once; within a group, cells sharing a
///   (backend, watchpoints) pair share one member (and one detector);
/// * cells whose functional core **perturbs** (single-stepping,
///   rewriting, DISE production injection) group by (kernel,
///   watchpoints, backend, DISE engine capacities) into a
///   [`SessionBatch`] — one private pass per distinct functional
///   stream, replayed under each member's timing configuration.
///
/// Kernel identity is the full workload (not just its name — two scales
/// of the same kernel are different programs). Groups appear in
/// first-appearance order and members keep cell order; grouping looks
/// only at the jobs, so the partition — and with it the reassembled
/// output — is identical for any worker count.
///
/// Perturbing cells group according to the `DISE_COW_FORK` environment
/// knob (default on — see [`cow_fork_from_env`]): on, engine-divergent
/// cells of one (kernel, watchpoints, backend) merge into a
/// [`PerturbGroup`] and fork from one loaded image; off, each engine
/// configuration loads its own image in a [`SessionBatch`], the
/// pre-fork shape (the determinism suite pins both shapes
/// byte-identical).
pub fn batch_session_jobs(jobs: &[SessionJob]) -> Vec<CellGroup> {
    batch_session_jobs_with(jobs, cow_fork_from_env())
}

/// Parse the `DISE_COW_FORK` knob: unset, empty, `1`, `true`, or `on`
/// enable copy-on-write fork grouping for perturbing cells (the
/// default); `0`, `false`, or `off` disable it.
///
/// # Panics
///
/// Panics on any other value — a typo must fail loudly, not silently
/// change which economy the grid exercises ([`dise_env::env_flag`]).
pub fn cow_fork_from_env() -> bool {
    dise_env::env_flag("DISE_COW_FORK", true)
}

/// Parse the `DISE_TRACE_DIR` knob: the persistent trace-store
/// directory, `None` (no store — every observer group executes its own
/// pass) when unset or empty. With a store configured, the grid
/// **records** each observer group's shared functional pass on first
/// encounter and **replays** it from disk ever after — zero functional
/// passes, zero image loads, byte-identical output, with stale or
/// corrupt traces rejected loudly rather than silently re-run (see
/// [`ObserverGroup::task_traced`]).
///
/// # Panics
///
/// Panics on a non-unicode value ([`dise_env::env_string`]).
pub fn trace_dir_from_env() -> Option<PathBuf> {
    dise_env::env_string("DISE_TRACE_DIR").map(PathBuf::from)
}

/// Parse the `DISE_SCHED` knob: unset, empty, `1`, `true`, or `on`
/// (the default) run the grid's jobs as [`SessionTask`] continuations
/// on the cooperative [`Scheduler`]; `0`, `false`, or `off` keep the
/// pre-scheduler thread-per-group pool. Both paths are byte-identical
/// (the scheduler determinism suite pins them against each other).
///
/// # Panics
///
/// Panics on any other value ([`dise_env::env_flag`]).
pub fn sched_from_env() -> bool {
    dise_env::env_flag("DISE_SCHED", true)
}

/// Default scheduler slice budget (dynamic instructions per grant):
/// large enough that slicing overhead is noise, small enough that a
/// full grid still preempts hundreds of times.
pub const DEFAULT_SLICE: u64 = 65_536;

/// Parse the `DISE_SLICE` knob: the scheduler's per-grant instruction
/// budget, [`DEFAULT_SLICE`] when unset. Results are byte-identical
/// for every value (the determinism suite sweeps it); the knob trades
/// scheduling overhead against fairness granularity.
///
/// # Panics
///
/// Panics on an unparsable or zero value ([`dise_env::env_number`];
/// the [`Scheduler`] rejects zero-instruction slices).
pub fn slice_from_env() -> u64 {
    env_number("DISE_SLICE", DEFAULT_SLICE)
}

/// [`batch_session_jobs`] with the copy-on-write fork knob passed
/// explicitly instead of read from the environment, so tests can pin
/// both partition shapes without racing the process-global environment.
pub fn batch_session_jobs_with(jobs: &[SessionJob], cow_fork: bool) -> Vec<CellGroup> {
    let mut groups: Vec<CellGroup> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        let (backend, cpu) = job.backend.split_timing(job.cpu);
        if backend.observation_only() {
            let existing = groups.iter_mut().find_map(|g| match g {
                CellGroup::Observe(o) if o.workload == job.workload => Some(o),
                _ => None,
            });
            let group = match existing {
                Some(o) => o,
                None => {
                    groups.push(CellGroup::Observe(ObserverGroup {
                        workload: job.workload.clone(),
                        members: Vec::new(),
                    }));
                    let Some(CellGroup::Observe(o)) = groups.last_mut() else { unreachable!() };
                    o
                }
            };
            match group
                .members
                .iter_mut()
                .find(|m| m.backend == backend && m.watchpoints == job.watchpoints)
            {
                Some(m) => {
                    m.cpus.push(cpu);
                    m.cells.push(i);
                }
                None => group.members.push(ObserverMember {
                    backend,
                    watchpoints: job.watchpoints.clone(),
                    cpus: vec![cpu],
                    cells: vec![i],
                }),
            }
        } else if cow_fork {
            let existing = groups.iter_mut().find_map(|g| match g {
                CellGroup::Fork(p)
                    if p.backend == backend
                        && p.workload == job.workload
                        && p.watchpoints == job.watchpoints =>
                {
                    Some(p)
                }
                _ => None,
            });
            let group = match existing {
                Some(p) => p,
                None => {
                    groups.push(CellGroup::Fork(PerturbGroup {
                        workload: job.workload.clone(),
                        watchpoints: job.watchpoints.clone(),
                        backend,
                        batches: Vec::new(),
                    }));
                    let Some(CellGroup::Fork(p)) = groups.last_mut() else { unreachable!() };
                    p
                }
            };
            match group.batches.iter_mut().find(|b| b.cpus[0].engine == cpu.engine) {
                Some(b) => {
                    b.cpus.push(cpu);
                    b.cells.push(i);
                }
                None => {
                    group.batches.push(PerturbSubBatch { cpus: vec![cpu], cells: vec![i] });
                }
            }
        } else {
            let existing = groups.iter_mut().find_map(|g| match g {
                CellGroup::Replay(b)
                    if b.backend == backend
                        && b.workload == job.workload
                        && b.watchpoints == job.watchpoints
                        && b.cpus[0].engine == cpu.engine =>
                {
                    Some(b)
                }
                _ => None,
            });
            match existing {
                Some(b) => {
                    b.cpus.push(cpu);
                    b.cells.push(i);
                }
                None => groups.push(CellGroup::Replay(SessionBatch {
                    workload: job.workload.clone(),
                    watchpoints: job.watchpoints.clone(),
                    backend,
                    cpus: vec![cpu],
                    cells: vec![i],
                })),
            }
        }
    }
    groups
}

/// Run a whole overhead grid on `workers` threads, grouping cells into
/// single functional passes wherever the lattice allows — across timing
/// configurations for perturbing backends, and across backend × timing
/// simultaneously for observing ones (`batching: false` runs every cell
/// independently — the reference path the determinism suite compares
/// against). Results come back in cell order either way, byte-identical
/// to the serial unbatched map.
pub fn run_overhead_grid(
    cells: &[SessionJob],
    workers: usize,
    baselines: &BaselineCache,
    batching: bool,
) -> Vec<Option<f64>> {
    let sched = sched_from_env().then(slice_from_env);
    let trace = trace_dir_from_env();
    run_overhead_grid_with(cells, workers, baselines, batching, sched, trace.as_deref())
}

/// [`run_overhead_grid`] with the scheduler and trace-store knobs
/// passed explicitly: `sched: None` uses the pre-scheduler
/// thread-per-group pool, `Some(slice)` multiplexes the grid's jobs as
/// [`SessionTask`] continuations over `workers` scheduler threads with
/// the given per-grant instruction budget; `trace: Some(dir)` routes
/// every observer group through the persistent trace store at `dir`
/// (record on miss, replay on hit — see [`trace_dir_from_env`]).
/// Output is byte-identical for every combination — the determinism
/// suite pins cold-vs-warm store runs against the traceless reference
/// across both scheduler paths.
pub fn run_overhead_grid_with(
    cells: &[SessionJob],
    workers: usize,
    baselines: &BaselineCache,
    batching: bool,
    sched: Option<u64>,
    trace: Option<&Path>,
) -> Vec<Option<f64>> {
    let Some(slice) = sched else {
        if !batching {
            return run_grid_with(cells, workers, |job| job.overhead(baselines));
        }
        let groups = batch_session_jobs(cells);
        let grouped = run_grid_with(&groups, workers, |g| g.overheads_traced(baselines, trace));
        let mut out = vec![None; cells.len()];
        for tagged in grouped {
            for (cell, o) in tagged {
                out[cell] = o;
            }
        }
        return out;
    };
    // The scheduled path: every group (or bare cell when batching is
    // off) becomes one continuation; task ids are spawn order, so the
    // drained outputs scatter back deterministically regardless of
    // worker count, slice budget, or completion order.
    let mut out = vec![None; cells.len()];
    if !batching {
        let scheduler = Scheduler::new(slice);
        for job in cells {
            scheduler.spawn(job.task());
        }
        for (id, output) in scheduler.drain(workers) {
            out[id] = cells[id].overhead_of(
                output
                    .into_batch()
                    .map(|mut reports| reports.pop().expect("a session task is a batch of one")),
                baselines,
            );
        }
    } else {
        let groups = batch_session_jobs(cells);
        let scheduler = Scheduler::new(slice);
        for group in &groups {
            scheduler.spawn(group.task_traced(trace));
        }
        for (id, output) in scheduler.drain(workers) {
            for (cell, o) in groups[id].overheads_from(output, baselines) {
                out[cell] = o;
            }
        }
    }
    out
}

/// Parse a numeric environment knob (`DISE_ITERS`, `DISE_JOBS`, …),
/// `default` when unset — the loud-on-typo contract, shared with every
/// crate through [`dise_env::env_number`] (re-exported here because the
/// bench harness is where most knobs are read).
///
/// # Panics
///
/// Panics on an unparsable (or non-unicode) value.
pub fn env_number<T: std::str::FromStr>(name: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    dise_env::env_number(name, default)
}

/// Worker-pool size from the `DISE_JOBS` environment variable, or the
/// machine's available parallelism when unset.
///
/// # Panics
///
/// Panics on an unparsable or zero `DISE_JOBS` — a typo must fail
/// loudly, not silently serialise the grid.
pub fn configured_workers() -> usize {
    let default = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let workers = env_number("DISE_JOBS", default);
    assert!(workers > 0, "DISE_JOBS must be >= 1");
    workers
}

/// Run `f` over every job on the configured worker pool (see
/// [`configured_workers`]) and return the results in job order.
pub fn run_grid<J, R, F>(jobs: &[J], f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    run_grid_with(jobs, configured_workers(), f)
}

/// Run `f` over every job on a pool of exactly `workers` threads and
/// return the results in job order — byte-identical to the serial
/// `jobs.iter().map(f)` regardless of scheduling.
///
/// With `workers == 1` (or one job) everything runs inline on the
/// calling thread. A panic in any job is propagated to the caller once
/// all workers have drained.
///
/// # Panics
///
/// Panics if `workers == 0`, and re-raises the first job panic.
pub fn run_grid_with<J, R, F>(jobs: &[J], workers: usize, f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    assert!(workers > 0, "worker pool needs at least one thread");
    let workers = workers.min(jobs.len());
    if workers <= 1 {
        return jobs.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let panic = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                match catch_unwind(AssertUnwindSafe(|| f(job))) {
                    Ok(r) => *results[i].lock().expect("result slot poisoned") = Some(r),
                    Err(cause) => {
                        // Record the first panic (by job order) and keep
                        // draining, so the scope joins cleanly and the
                        // caller sees a deterministic failure.
                        let mut p = panic.lock().expect("panic slot poisoned");
                        match *p {
                            Some((j, _)) if j < i => {}
                            _ => *p = Some((i, cause)),
                        }
                    }
                }
            });
        }
    });
    if let Some((_, cause)) = panic.into_inner().expect("panic slot poisoned") {
        resume_unwind(cause);
    }
    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot poisoned").expect("job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_debug::DiseStrategy;
    use dise_workloads::{all, transition_cost_sweep, WatchKind};

    #[test]
    fn timing_only_cells_group_into_one_batch() {
        let w = &all(10)[0];
        let wp = vec![w.watchpoint(WatchKind::Hot)];
        let mt = BackendKind::Dise(DiseStrategy {
            multithreaded_calls: true,
            ..DiseStrategy::default()
        });
        let jobs: Vec<SessionJob> = [
            (BackendKind::dise_default(), CpuConfig::default()),
            (mt, CpuConfig::default()),
            (BackendKind::hw4(), CpuConfig::default()),
        ]
        .into_iter()
        .map(|(b, c)| SessionJob::new(w.clone(), wp.clone(), b, c))
        .collect();
        let groups = batch_session_jobs_with(&jobs, false);
        assert_eq!(groups.len(), 2, "the two DISE cells differ only in timing");
        let CellGroup::Replay(dise) = &groups[0] else {
            panic!("DISE perturbs: must be a private replay")
        };
        assert_eq!(dise.cells, vec![0, 1]);
        assert!(dise.cpus[1].multithreaded_dise_calls, "mt knob folded into the config");
        assert_eq!(groups[1].cells(), vec![2]);

        // With copy-on-write forking the same cells form one perturbing
        // group holding a single engine sub-batch.
        let groups = batch_session_jobs_with(&jobs, true);
        assert_eq!(groups.len(), 2);
        let CellGroup::Fork(dise) = &groups[0] else {
            panic!("DISE perturbs: must fork from a shared image")
        };
        assert_eq!(dise.batches.len(), 1, "identical engines share one functional stream");
        assert_eq!(dise.batches[0].cells, vec![0, 1]);
    }

    /// The lattice's new axis: cells that differ in *backend* — as long
    /// as every backend observes — share one group, and therefore one
    /// functional pass, alongside their timing spread.
    #[test]
    fn observing_backends_group_across_backend_and_timing() {
        let w = &all(10)[0];
        let wp = vec![w.watchpoint(WatchKind::Warm1)];
        let mut jobs = Vec::new();
        for (_, cpu) in transition_cost_sweep(CpuConfig::default()) {
            for backend in [BackendKind::VirtualMemory, BackendKind::hw4(), BackendKind::SingleStep]
            {
                jobs.push(SessionJob::new(w.clone(), wp.clone(), backend, cpu));
            }
        }
        let groups = batch_session_jobs_with(&jobs, false);
        assert_eq!(groups.len(), 2, "VM+HW share a pass; single-stepping replays privately");
        let CellGroup::Observe(o) = &groups[0] else { panic!("first group must observe") };
        assert_eq!(o.members.len(), 2);
        assert_eq!(o.members[0].backend, BackendKind::VirtualMemory);
        assert_eq!(o.members[0].cells, vec![0, 3, 6]);
        assert_eq!(o.members[1].backend, BackendKind::hw4());
        assert_eq!(o.members[1].cells, vec![1, 4, 7]);
        let CellGroup::Replay(ss) = &groups[1] else { panic!("single-step must replay") };
        assert_eq!(ss.cells, vec![2, 5, 8]);
    }

    /// The lattice's final axis: observing cells that differ in
    /// *watchpoint set* — and in backend, and in timing — all collapse
    /// into one per-workload group, one member per distinct
    /// (backend, watchpoints) pair. A perturbing cell never joins.
    #[test]
    fn observing_backends_group_across_watchpoint_sets() {
        let w = &all(10)[0];
        let sets = [
            vec![w.watchpoint(WatchKind::Hot)],
            vec![w.watchpoint(WatchKind::Warm1), w.watchpoint(WatchKind::Cold)],
            vec![w.watchpoint(WatchKind::Range)],
        ];
        let mut jobs = Vec::new();
        for set in &sets {
            for backend in
                [BackendKind::VirtualMemory, BackendKind::DiseComparators, BackendKind::hw4()]
            {
                for (_, cpu) in transition_cost_sweep(CpuConfig::default()).into_iter().take(2) {
                    jobs.push(SessionJob::new(w.clone(), set.clone(), backend, cpu));
                }
            }
            jobs.push(SessionJob::new(
                w.clone(),
                set.clone(),
                BackendKind::dise_default(),
                CpuConfig::default(),
            ));
        }
        let groups = batch_session_jobs_with(&jobs, false);
        // One observer group for the whole workload; DISE replays
        // privately, one batch per watchpoint set.
        assert_eq!(groups.len(), 1 + sets.len(), "{groups:#?}");
        let CellGroup::Observe(o) = &groups[0] else { panic!("first group must observe") };
        assert_eq!(o.members.len(), 9, "3 sets x 3 observing backends");
        for m in &o.members {
            assert_eq!(m.cpus.len(), 2, "each member carries its two timing configs");
        }
        assert!(sets.iter().all(|s| o.members.iter().any(|m| &m.watchpoints == s)));
        for g in &groups[1..] {
            let CellGroup::Replay(b) = g else { panic!("DISE must replay privately") };
            assert_eq!(b.backend, BackendKind::dise_default());
        }
    }

    /// Observer groups ignore DISE engine capacities (observers install
    /// no productions), so engine-divergent cells still merge — while
    /// the perturbing replay path keeps them apart.
    #[test]
    fn observer_groups_merge_across_engine_configs() {
        let w = &all(10)[0];
        let wp = vec![w.watchpoint(WatchKind::Warm1)];
        let small_engine = CpuConfig {
            engine: dise_engine::EngineConfig { pattern_entries: 8, replacement_entries: 64 },
            ..CpuConfig::default()
        };
        let jobs = [
            SessionJob::new(
                w.clone(),
                wp.clone(),
                BackendKind::VirtualMemory,
                CpuConfig::default(),
            ),
            SessionJob::new(w.clone(), wp.clone(), BackendKind::VirtualMemory, small_engine),
        ];
        let groups = batch_session_jobs(&jobs);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].cells(), vec![0, 1]);
    }

    #[test]
    fn same_name_different_scale_workloads_stay_separate() {
        // Two scales of the same kernel share a name but are different
        // programs; merging them would run only the first one's app.
        let small = &all(10)[0];
        let large = &all(20)[0];
        assert_eq!(small.name(), large.name());
        let jobs = [small, large].map(|w| {
            SessionJob::new(
                w.clone(),
                vec![w.watchpoint(WatchKind::Hot)],
                BackendKind::dise_default(),
                CpuConfig::default(),
            )
        });
        assert_eq!(batch_session_jobs(&jobs).len(), 2);
    }

    #[test]
    fn functionally_different_cells_stay_separate() {
        let w = &all(10)[0];
        let small_engine = CpuConfig {
            engine: dise_engine::EngineConfig { pattern_entries: 8, replacement_entries: 64 },
            ..CpuConfig::default()
        };
        let jobs = [
            SessionJob::new(
                w.clone(),
                vec![w.watchpoint(WatchKind::Hot)],
                BackendKind::dise_default(),
                CpuConfig::default(),
            ),
            // Different watchpoint.
            SessionJob::new(
                w.clone(),
                vec![w.watchpoint(WatchKind::Cold)],
                BackendKind::dise_default(),
                CpuConfig::default(),
            ),
            // Different engine capacity: functional, must not merge.
            SessionJob::new(
                w.clone(),
                vec![w.watchpoint(WatchKind::Hot)],
                BackendKind::dise_default(),
                small_engine,
            ),
        ];
        assert_eq!(batch_session_jobs_with(&jobs, false).len(), 3);
        // With forking, the engine-divergent cells 0 and 2 share one
        // image (one group, two sub-batches — two functional streams,
        // one load); the different watchpoint still stands alone.
        let groups = batch_session_jobs_with(&jobs, true);
        assert_eq!(groups.len(), 2);
        let CellGroup::Fork(p) = &groups[0] else { panic!("perturbing cells must fork") };
        assert_eq!(p.batches.len(), 2, "one sub-batch per engine configuration");
        assert_eq!(p.batches[0].cells, vec![0]);
        assert_eq!(p.batches[1].cells, vec![2]);
    }

    /// The acceptance bar: a grid containing batchable cells (a
    /// transition-cost sweep plus an unsupported combination) produces
    /// byte-identical overheads batched and unbatched, serial and
    /// pooled.
    #[test]
    fn batched_overheads_match_unbatched_cell_for_cell() {
        let w = &all(10)[0];
        let mut jobs = Vec::new();
        for (_, cpu) in transition_cost_sweep(CpuConfig::default()) {
            for backend in [BackendKind::hw4(), BackendKind::dise_default()] {
                jobs.push(SessionJob::new(
                    w.clone(),
                    vec![w.watchpoint(WatchKind::Warm1)],
                    backend,
                    cpu,
                ));
            }
        }
        // An unsupported cell: INDIRECT under virtual memory. It merges
        // into the workload's observer group (the group key no longer
        // carries watchpoints) and fails there per-member.
        jobs.push(SessionJob::new(
            w.clone(),
            vec![w.watchpoint(WatchKind::Indirect)],
            BackendKind::VirtualMemory,
            CpuConfig::default(),
        ));
        assert_eq!(
            batch_session_jobs(&jobs).len(),
            2,
            "one per-workload observer group (incl. the unsupported member), one DISE sweep"
        );

        let baselines = BaselineCache::new();
        let unbatched = run_overhead_grid(&jobs, 1, &baselines, false);
        for workers in [1, 4] {
            let batched = run_overhead_grid(&jobs, workers, &baselines, true);
            assert_eq!(batched, unbatched, "workers={workers}");
        }
        assert_eq!(unbatched[6], None, "unsupported cell renders the no-experiment bar");
    }

    /// The copy-on-write acceptance bar: a perturbing sweep spanning
    /// *engine capacities* (cells that can never share a functional
    /// stream) produces byte-identical overheads whether each engine
    /// configuration loads its own image (fork off) or every sub-batch
    /// forks from one shared image (fork on) — and both match the
    /// cell-by-cell unbatched reference.
    #[test]
    fn forked_overheads_match_unforked_cell_for_cell() {
        let w = &all(10)[0];
        let wp = vec![w.watchpoint(WatchKind::Warm1)];
        let small_engine = CpuConfig {
            engine: dise_engine::EngineConfig { pattern_entries: 8, replacement_entries: 64 },
            ..CpuConfig::default()
        };
        let mut jobs = Vec::new();
        for engine_cpu in [CpuConfig::default(), small_engine] {
            for (_, cpu) in transition_cost_sweep(engine_cpu).into_iter().take(2) {
                for backend in [BackendKind::dise_default(), BackendKind::BinaryRewrite] {
                    jobs.push(SessionJob::new(w.clone(), wp.clone(), backend, cpu));
                }
            }
        }
        // An unsupported perturbing cell: a multi-watchpoint set under
        // inline evaluation renders the no-experiment bar through the
        // fork path too.
        jobs.push(SessionJob::new(
            w.clone(),
            vec![w.watchpoint(WatchKind::Hot), w.watchpoint(WatchKind::Cold)],
            BackendKind::Dise(DiseStrategy::evaluate_inline(true)),
            CpuConfig::default(),
        ));

        let scatter = |groups: Vec<CellGroup>, baselines: &BaselineCache| {
            let mut out = vec![None; jobs.len()];
            for g in &groups {
                for (cell, o) in g.overheads(baselines) {
                    out[cell] = o;
                }
            }
            out
        };
        let baselines = BaselineCache::new();
        let unbatched: Vec<Option<f64>> = jobs.iter().map(|job| job.overhead(&baselines)).collect();
        let forked = scatter(batch_session_jobs_with(&jobs, true), &baselines);
        let unforked = scatter(batch_session_jobs_with(&jobs, false), &baselines);
        assert_eq!(forked, unbatched, "forked grid diverged from cell-by-cell reference");
        assert_eq!(unforked, unbatched, "unforked grid diverged from cell-by-cell reference");
        assert_eq!(unbatched[8], None, "unsupported cell renders the no-experiment bar");
    }

    // Each env test owns a uniquely named variable: the process
    // environment is shared across test threads, so reusing names would
    // race.
    #[test]
    fn env_number_parses_and_defaults() {
        assert_eq!(env_number("DISE_TEST_UNSET_KNOB", 42u32), 42);
        std::env::set_var("DISE_TEST_SET_KNOB", "17");
        assert_eq!(env_number("DISE_TEST_SET_KNOB", 42u32), 17);
        std::env::set_var("DISE_TEST_PADDED_KNOB", " 8 ");
        assert_eq!(env_number("DISE_TEST_PADDED_KNOB", 1usize), 8, "whitespace is trimmed");
    }

    #[test]
    fn env_number_typo_fails_loudly() {
        std::env::set_var("DISE_TEST_TYPO_KNOB", "4O0"); // letter O
        let err = catch_unwind(|| env_number("DISE_TEST_TYPO_KNOB", 400u32)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("DISE_TEST_TYPO_KNOB"), "panic names the knob: {msg}");
        assert!(msg.contains("4O0"), "panic shows the bad value: {msg}");
    }

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = jobs.iter().map(|j| j * j).collect();
        for workers in [1, 2, 8, 200] {
            assert_eq!(run_grid_with(&jobs, workers, |j| j * j), serial, "workers={workers}");
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<u64> = run_grid_with(&Vec::<u64>::new(), 8, |j| *j);
        assert!(out.is_empty());
    }

    #[test]
    fn panic_in_job_propagates() {
        let jobs: Vec<u64> = (0..32).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_grid_with(&jobs, 4, |j| {
                if *j == 17 {
                    panic!("job 17 exploded");
                }
                *j
            })
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "job 17 exploded");
    }

    #[test]
    fn first_panic_by_job_order_wins() {
        let jobs: Vec<u64> = (0..32).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_grid_with(&jobs, 8, |j| {
                if *j >= 3 {
                    panic!("job {j} exploded");
                }
                *j
            })
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(msg, "job 3 exploded");
    }
}
