//! The job-grid subsystem: every table/figure is a grid of independent
//! debugging sessions (kernel × watchpoint-set × backend × config).
//! This module decomposes a grid into [`SessionJob`] values, runs them
//! on a `std::thread` worker pool, and reassembles the per-cell results
//! in submission order, so parallel output is byte-identical to serial.
//!
//! Worker count comes from the `DISE_JOBS` environment variable
//! (default: the machine's available parallelism, capped by the number
//! of jobs); `DISE_JOBS=1` runs every job inline on the calling thread.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dise_cpu::CpuConfig;
use dise_debug::{run_session, BackendKind, BaselineCache, DebugError, SessionReport, Watchpoint};
use dise_workloads::Workload;

/// One cell of an experiment grid: a kernel, the watchpoints to plant,
/// the backend implementing them, and the machine configuration.
#[derive(Clone, Debug)]
pub struct SessionJob {
    /// The kernel to debug.
    pub workload: Workload,
    /// The watchpoints to plant.
    pub watchpoints: Vec<Watchpoint>,
    /// The backend implementing them.
    pub backend: BackendKind,
    /// Machine configuration (per-cell override).
    pub cpu: CpuConfig,
}

impl SessionJob {
    /// A cell under the given configuration.
    pub fn new(
        workload: Workload,
        watchpoints: Vec<Watchpoint>,
        backend: BackendKind,
        cpu: CpuConfig,
    ) -> SessionJob {
        SessionJob { workload, watchpoints, backend, cpu }
    }

    /// Run the session; `Err` carries the paper's "no experiment" bars.
    ///
    /// # Errors
    ///
    /// As [`dise_debug::run_session`].
    pub fn report(&self) -> Result<SessionReport, DebugError> {
        run_session(self.workload.app(), self.watchpoints.clone(), self.backend, self.cpu)
    }

    /// Overhead (normalised execution time) of the session against the
    /// kernel's baseline from the shared cache, or `None` when the
    /// backend cannot implement the watchpoints.
    ///
    /// # Panics
    ///
    /// Panics if the session reports an execution error (the calibrated
    /// kernels must run clean).
    pub fn overhead(&self, baselines: &BaselineCache) -> Option<f64> {
        let base = baselines
            .get_or_run(self.workload.name(), self.workload.app(), self.cpu)
            .expect("kernel assembles");
        match self.report() {
            Ok(report) => {
                assert_eq!(report.error, None, "{}: session must run clean", self.workload.name());
                Some(report.overhead_vs(&base))
            }
            Err(DebugError::Unsupported { .. }) => None,
            Err(e) => panic!("{}: {e}", self.workload.name()),
        }
    }
}

/// Parse a numeric environment knob, `default` when unset. A typo must
/// fail loudly, not silently fall back.
pub(crate) fn env_number<T: std::str::FromStr>(name: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match std::env::var(name) {
        Ok(s) => s.trim().parse().unwrap_or_else(|e| panic!("invalid {name} value `{s}`: {e}")),
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(s)) => {
            panic!("invalid {name} value {s:?}: not unicode")
        }
    }
}

/// Worker-pool size from the `DISE_JOBS` environment variable, or the
/// machine's available parallelism when unset.
///
/// # Panics
///
/// Panics on an unparsable or zero `DISE_JOBS` — a typo must fail
/// loudly, not silently serialise the grid.
pub fn configured_workers() -> usize {
    let default = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let workers = env_number("DISE_JOBS", default);
    assert!(workers > 0, "DISE_JOBS must be >= 1");
    workers
}

/// Run `f` over every job on the configured worker pool (see
/// [`configured_workers`]) and return the results in job order.
pub fn run_grid<J, R, F>(jobs: &[J], f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    run_grid_with(jobs, configured_workers(), f)
}

/// Run `f` over every job on a pool of exactly `workers` threads and
/// return the results in job order — byte-identical to the serial
/// `jobs.iter().map(f)` regardless of scheduling.
///
/// With `workers == 1` (or one job) everything runs inline on the
/// calling thread. A panic in any job is propagated to the caller once
/// all workers have drained.
///
/// # Panics
///
/// Panics if `workers == 0`, and re-raises the first job panic.
pub fn run_grid_with<J, R, F>(jobs: &[J], workers: usize, f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    assert!(workers > 0, "worker pool needs at least one thread");
    let workers = workers.min(jobs.len());
    if workers <= 1 {
        return jobs.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let panic = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                match catch_unwind(AssertUnwindSafe(|| f(job))) {
                    Ok(r) => *results[i].lock().expect("result slot poisoned") = Some(r),
                    Err(cause) => {
                        // Record the first panic (by job order) and keep
                        // draining, so the scope joins cleanly and the
                        // caller sees a deterministic failure.
                        let mut p = panic.lock().expect("panic slot poisoned");
                        match *p {
                            Some((j, _)) if j < i => {}
                            _ => *p = Some((i, cause)),
                        }
                    }
                }
            });
        }
    });
    if let Some((_, cause)) = panic.into_inner().expect("panic slot poisoned") {
        resume_unwind(cause);
    }
    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot poisoned").expect("job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = jobs.iter().map(|j| j * j).collect();
        for workers in [1, 2, 8, 200] {
            assert_eq!(run_grid_with(&jobs, workers, |j| j * j), serial, "workers={workers}");
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<u64> = run_grid_with(&Vec::<u64>::new(), 8, |j| *j);
        assert!(out.is_empty());
    }

    #[test]
    fn panic_in_job_propagates() {
        let jobs: Vec<u64> = (0..32).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_grid_with(&jobs, 4, |j| {
                if *j == 17 {
                    panic!("job 17 exploded");
                }
                *j
            })
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "job 17 exploded");
    }

    #[test]
    fn first_panic_by_job_order_wins() {
        let jobs: Vec<u64> = (0..32).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_grid_with(&jobs, 8, |j| {
                if *j >= 3 {
                    panic!("job {j} exploded");
                }
                *j
            })
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(msg, "job 3 exploded");
    }
}
