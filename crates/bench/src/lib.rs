//! # dise-bench — the evaluation harness
//!
//! One function per table/figure of the paper's §5, each returning the
//! formatted rows the paper reports. Binary wrappers (`table1`, `fig3`,
//! …, `all_experiments`) print them; `all_experiments` also rewrites
//! `EXPERIMENTS.md` with measured-vs-paper notes.
//!
//! Scale: the paper simulates full SPEC functions (up to 1.8 G
//! instructions); we run the calibrated kernels for
//! [`Experiment::default`]'s iteration count (override with the
//! `DISE_ITERS` environment variable). Every reported quantity is a
//! ratio, so the *shape* — who wins, by what order of magnitude, where
//! the crossovers fall — is what these harnesses reproduce.
//!
//! Execution: each table/figure is decomposed into independent
//! [`SessionJob`] grid cells and run on a [`grid`] worker pool sized by
//! the `DISE_JOBS` environment variable (default: available
//! parallelism), with results reassembled in cell order so output is
//! byte-identical for any worker count. Cells are first grouped into
//! single-functional-pass [`CellGroup`]s: a [`SessionBatch`] when they
//! differ only in timing configuration
//! ([`dise_debug::run_session_batch`]), or an [`ObserverGroup`] when
//! their backends all *observe* without perturbing execution — one
//! shared pass of the unmodified application across backend × timing
//! simultaneously ([`dise_debug::ObserverBatch`]). Perturbing cells
//! that differ in DISE engine capacities can never share a pass, but
//! they can share an *image*: by default (`DISE_COW_FORK`, see
//! [`grid::cow_fork_from_env`]) they merge into a [`PerturbGroup`]
//! whose sub-batches all fork copy-on-write from one loaded template
//! machine ([`dise_debug::run_perturbing_group`]) — K engine
//! configurations cost 1 image load + K forks instead of K loads. All
//! of these are byte-identical to the unbatched path, enforced by the
//! grid determinism tests, and the pass/load savings are pinned by
//! execution-count assertions (`tests/execution_counts.rs`).
//!
//! By default (`DISE_SCHED`, see [`grid::sched_from_env`]) the worker
//! pool no longer pins one group to one thread: every group becomes a
//! resumable [`dise_debug::SessionTask`] and `DISE_JOBS` threads drain
//! one cooperative [`dise_debug::Scheduler`], each session granted
//! `DISE_SLICE`-instruction slices with least-progress-first priority.
//! Output stays byte-identical across `DISE_SCHED=0/1`, every worker
//! count and every slice budget (`tests/scheduler.rs`), and the
//! [`server`] module serves arbitrary job lists through the same
//! machinery (`session_server` bin).

mod experiments;
pub mod grid;
pub mod paper;
pub mod server;

pub use experiments::{
    baseline_table, fig3, fig4, fig5, fig6, fig7, fig8, fig9, sensitivity, table1, table2,
    watchpoint_sets, Experiment,
};
pub use grid::{
    batch_session_jobs, batch_session_jobs_with, configured_workers, cow_fork_from_env, env_number,
    run_grid, run_grid_with, run_overhead_grid, run_overhead_grid_with, sched_from_env,
    slice_from_env, trace_dir_from_env, CellGroup, ObserverGroup, ObserverMember, PerturbGroup,
    PerturbSubBatch, SessionBatch, SessionJob, DEFAULT_SLICE,
};

/// Render one figure/table section with a heading.
pub fn section(title: &str, body: &str) -> String {
    format!("## {title}\n\n{body}\n")
}
