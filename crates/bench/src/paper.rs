//! Reference numbers transcribed from the paper, for side-by-side
//! comparison in `EXPERIMENTS.md`.

/// Table 1 rows: `(benchmark, function, instructions, ipc, store density %)`.
pub const TABLE1: [(&str, &str, u64, f64, f64); 6] = [
    ("bzip2", "generateMTFValues", 1_828_109_152, 2.45, 19.8),
    ("crafty", "InitializeAttackBoards", 18_546_482, 2.39, 10.8),
    ("gcc", "regclass", 18_016_384, 1.90, 9.68),
    ("mcf", "write_circs", 1_847_332, 0.33, 16.2),
    ("twolf", "uloop", 2_336_334, 1.87, 13.7),
    ("vortex", "BMT_TraverseSets", 205_690_692, 2.25, 17.6),
];

/// Table 2 rows: writes per 100K stores for
/// `(benchmark, HOT, WARM1, WARM2, COLD, INDIRECT, RANGE)`.
/// `~0` entries are recorded as 0.01.
pub const TABLE2: [(&str, [f64; 6]); 6] = [
    ("bzip2", [24_805.7, 193.4, 0.01, 0.0, 24_805.7, 193.4]),
    ("crafty", [6_531.4, 3_308.4, 6.7, 0.4, 6_531.4, 72.8]),
    ("gcc", [454.8, 223.7, 0.2, 0.1, 454.8, 8_197.9]),
    ("mcf", [11_229.8, 1_168.4, 215.4, 0.0, 11_229.8, 0.0]),
    ("twolf", [1_467.4, 227.5, 101.4, 80.8, 1_467.4, 250.6]),
    ("vortex", [7_290.3, 27.6, 27.6, 0.01, 7_290.3, 0.4]),
];

/// Qualitative expectations per figure, quoted from the paper — the
/// "shape" every reproduction run is checked against.
pub const FIGURE_NOTES: [(&str, &str); 7] = [
    (
        "Figure 3 (unconditional watchpoints)",
        "DISE overhead rarely exceeds 25%; single-stepping is 6,000–40,000x; \
         virtual memory is erratic (near zero for isolated COLD data, \
         single-stepping-level when watched data shares pages with hot data); \
         hardware registers lose only to silent stores; no VM/HW bars for \
         INDIRECT, no HW bar for RANGE.",
    ),
    (
        "Figure 4 (conditional watchpoints)",
        "Only DISE evaluates predicates in-application: its bars are unchanged \
         while VM/HW inherit a 100K-cycle round trip per write, so DISE wins \
         everywhere except the coldest watchpoints (crossover ≈ 1 write per \
         100K stores).",
    ),
    (
        "Figure 5 (binary rewriting)",
        "Comparable for small-footprint kernels; rewriting degrades \
         instruction-cache behaviour for large-footprint code (gcc-class), \
         up to ~2.8x in the paper.",
    ),
    (
        "Figure 6 (number of watchpoints)",
        "With ≤4 watchpoints the hardware registers slightly beat DISE \
         (except under silent stores, vortex@4); at ≥5 the VM fallback \
         explodes by 3+ orders of magnitude while all DISE variants stay \
         flat; serial matching is best for 1–2 watchpoints, Bloom filters \
         win beyond; bitwise Bloom beats bytewise when false positives \
         dominate (gcc).",
    ),
    (
        "Figure 7 (ISA support ablation)",
        "Removing ctrap/d_ccall (bottom group) forces a pipeline flush per \
         store and multiplies overhead; with them, Match-Address-Value is \
         cheapest where applicable, Evaluate-Expression pays load-port \
         contention, and Match-Address+call suffers only on very hot \
         watchpoints (HOT/bzip2 4.62x in the paper).",
    ),
    (
        "Figure 8 (multithreaded DISE calls)",
        "Only call-heavy (HOT) watchpoints benefit; bzip2's HOT overhead \
         nearly halves; WARM/COLD bars barely move.",
    ),
    (
        "Figure 9 (protecting debugger structures)",
        "The store-range check adds a modest constant overhead on top of a \
         COLD watchpoint.",
    ),
];
