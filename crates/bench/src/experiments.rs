//! The experiment implementations, one per table/figure.
//!
//! Each table/figure is decomposed into independent grid cells (see
//! [`crate::grid`]), run on the experiment's worker pool, and
//! reassembled in cell order, so output is identical for any worker
//! count.

use dise_cpu::{CpuConfig, Executor, Machine, RunStats};
use dise_debug::{BackendKind, BaselineCache, DebugError, DiseStrategy, SessionReport};
use dise_workloads::{all, transition_cost_sweep, watchpoint_set_sweep, WatchKind, Workload};

use crate::grid::{self, run_grid_with, run_overhead_grid, SessionJob};

/// Shared experiment context: workload scale, machine configuration,
/// worker-pool size, and a baseline cache (the undebugged run of each
/// kernel).
pub struct Experiment {
    /// Kernel iteration count.
    pub iters: u32,
    /// Machine configuration.
    pub cpu: CpuConfig,
    /// Worker-pool size used to run experiment grids.
    pub workers: usize,
    /// Batch grid cells differing only in timing configuration into
    /// single functional passes (on by default; the determinism suite
    /// compares against the unbatched reference).
    pub batching: bool,
    workloads: Vec<Workload>,
    baselines: BaselineCache,
}

impl Default for Experiment {
    fn default() -> Experiment {
        Experiment::new(grid::env_number("DISE_ITERS", 400), CpuConfig::default())
    }
}

impl Experiment {
    /// Build a context at the given scale, with the worker-pool size
    /// from `DISE_JOBS` (default: available parallelism).
    pub fn new(iters: u32, cpu: CpuConfig) -> Experiment {
        Experiment {
            iters,
            cpu,
            workers: grid::configured_workers(),
            batching: true,
            workloads: all(iters),
            baselines: BaselineCache::new(),
        }
    }

    /// Override the worker-pool size (1 = serial).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Experiment {
        assert!(workers > 0, "worker pool needs at least one thread");
        self.workers = workers;
        self
    }

    /// Enable or disable multi-config batching (on by default). Output
    /// must be byte-identical either way; the grid determinism tests
    /// enforce it.
    #[must_use]
    pub fn with_batching(mut self, batching: bool) -> Experiment {
        self.batching = batching;
        self
    }

    /// The six kernels.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// Baseline (undebugged) statistics for a kernel, cached.
    pub fn baseline(&self, w: &Workload) -> RunStats {
        self.baselines.get_or_run(w.name(), w.app(), self.cpu).expect("kernel assembles")
    }

    /// One grid cell under this experiment's machine configuration.
    pub fn job(
        &self,
        w: &Workload,
        wps: Vec<dise_debug::Watchpoint>,
        backend: BackendKind,
    ) -> SessionJob {
        SessionJob::new(w.clone(), wps, backend, self.cpu)
    }

    /// Run one debugging session; `Err` carries the paper's
    /// "no experiment" bars.
    pub fn session(
        &self,
        w: &Workload,
        wps: Vec<dise_debug::Watchpoint>,
        backend: BackendKind,
    ) -> Result<SessionReport, DebugError> {
        self.job(w, wps, backend).report()
    }

    /// Overhead (normalised execution time) of one session, or `None`
    /// when the backend cannot implement the watchpoint.
    pub fn overhead(
        &self,
        w: &Workload,
        wps: Vec<dise_debug::Watchpoint>,
        backend: BackendKind,
    ) -> Option<f64> {
        self.job(w, wps, backend).overhead(&self.baselines)
    }

    /// Overheads of a whole cell grid, on the worker pool, in cell
    /// order.
    fn grid_overheads(&self, cells: &[SessionJob]) -> Vec<Option<f64>> {
        // Warm the cache first — one baseline run per distinct kernel —
        // so parallel cells of the same kernel don't all stampede on
        // the same missing entry and run it redundantly.
        let mut distinct: Vec<&Workload> = Vec::new();
        for job in cells {
            if !distinct.iter().any(|w| w.name() == job.workload.name()) {
                distinct.push(&job.workload);
            }
        }
        run_grid_with(&distinct, self.workers, |w| {
            self.baseline(w);
        });
        run_overhead_grid(cells, self.workers, &self.baselines, self.batching)
    }

    /// One result per workload, computed on the worker pool, in
    /// workload order.
    fn per_workload<R: Send, F: Fn(&Workload) -> R + Sync>(&self, f: F) -> Vec<R> {
        run_grid_with(&self.workloads, self.workers, f)
    }
}

fn fmt_over(o: Option<f64>) -> String {
    match o {
        None => "      --".to_string(),
        Some(v) if v >= 1000.0 => format!("{v:>8.0}"),
        Some(v) => format!("{v:>8.2}"),
    }
}

/// The four implementations compared in Figs. 3 and 4, plus the
/// pure-observation DISE comparator organisation as a fifth column (it
/// joins the per-workload observer batch, so the extra column costs no
/// extra functional execution).
fn standard_backends() -> [(&'static str, BackendKind); 5] {
    [
        ("Single-Stepping", BackendKind::SingleStep),
        ("Virtual-Memory", BackendKind::VirtualMemory),
        ("Hardware", BackendKind::hw4()),
        ("DISE", BackendKind::dise_default()),
        ("DISE-Cmp", BackendKind::DiseComparators),
    ]
}

/// **Table 1** — benchmark summary: dynamic instructions, IPC, store
/// density, per kernel.
pub fn table1(ctx: &Experiment) -> String {
    let mut out =
        String::from("benchmark  function                 instructions      IPC   store density\n");
    let rows = ctx.per_workload(|w| {
        let prog = w.app().program().expect("kernel assembles");
        // Functional pass for the store count; timed pass for IPC.
        let mut exec = Executor::from_program(&prog, ctx.cpu);
        let mut stores = 0u64;
        while !exec.is_halted() {
            if exec.step().mem.is_some_and(|m| m.is_store) {
                stores += 1;
            }
        }
        let base = ctx.baseline(w);
        format!(
            "{:<10} {:<24} {:>12} {:>8.2} {:>10.1}%\n",
            w.name(),
            w.function(),
            base.instructions,
            base.ipc(),
            100.0 * stores as f64 / base.instructions as f64,
        )
    });
    out.extend(rows);
    out
}

/// **Table 2** — watchpoint write frequency per 100K stores (stores
/// overlapping each watched expression's current storage).
pub fn table2(ctx: &Experiment) -> String {
    let mut out =
        String::from("benchmark       HOT    WARM1    WARM2     COLD INDIRECT    RANGE\n");
    let rows = ctx.per_workload(|w| {
        let prog = w.app().program().expect("kernel assembles");
        let exprs: Vec<_> = WatchKind::ALL.iter().map(|k| w.watch_expr(*k)).collect();
        let mut hits = [0u64; 6];
        let mut stores = 0u64;
        let mut exec = Executor::from_program(&prog, ctx.cpu);
        while !exec.is_halted() {
            let e = exec.step();
            if let Some(m) = e.mem {
                if m.is_store {
                    stores += 1;
                    for (i, expr) in exprs.iter().enumerate() {
                        let overlap = expr
                            .watched_intervals(exec.mem())
                            .iter()
                            .any(|&(base, len)| m.addr < base + len && base < m.addr + m.width);
                        if overlap {
                            hits[i] += 1;
                        }
                    }
                }
            }
        }
        let mut row = format!("{:<10}", w.name());
        for h in hits {
            row.push_str(&format!(" {:>8.1}", 100_000.0 * h as f64 / stores.max(1) as f64));
        }
        row.push('\n');
        row
    });
    out.extend(rows);
    out
}

/// **Figure 3** — execution time (normalised to undebugged) of four
/// unconditional-watchpoint implementations, 6 kernels × 6 watchpoints.
pub fn fig3(ctx: &Experiment) -> String {
    watchpoint_grid(ctx, false)
}

/// **Figure 4** — the same grid with conditional watchpoints whose
/// predicate never holds.
pub fn fig4(ctx: &Experiment) -> String {
    watchpoint_grid(ctx, true)
}

fn watchpoint_grid(ctx: &Experiment, conditional: bool) -> String {
    let mut cells = Vec::new();
    for w in ctx.workloads() {
        for kind in WatchKind::ALL {
            let wp = if conditional { w.conditional_watchpoint(kind) } else { w.watchpoint(kind) };
            for (_, backend) in standard_backends() {
                cells.push(ctx.job(w, vec![wp], backend));
            }
        }
    }
    let overheads = ctx.grid_overheads(&cells);

    let mut out = format!(
        "{:<10} {:<9}{:>9}{:>9}{:>9}{:>9}{:>9}\n",
        "benchmark", "watch", "SingleStep", " VirtMem", " HwRegs", "  DISE", " DISE-Cmp"
    );
    let mut next = overheads.into_iter();
    for w in ctx.workloads() {
        for kind in WatchKind::ALL {
            out.push_str(&format!("{:<10} {:<9}", w.name(), kind.label()));
            for _ in standard_backends() {
                out.push_str(&fmt_over(next.next().expect("one overhead per cell")));
            }
            out.push('\n');
        }
    }
    out
}

/// **Figure 5** — DISE vs. static binary rewriting on a COLD
/// watchpoint, plus the static code growth that causes the difference.
pub fn fig5(ctx: &Experiment) -> String {
    let mut out =
        format!("{:<10}{:>10}{:>12}{:>14}\n", "benchmark", "DISE", "Rewriting", "text growth");
    let rows = ctx.per_workload(|w| {
        let wp = w.watchpoint(WatchKind::Cold);
        let base = ctx.baseline(w);
        let dise =
            ctx.session(w, vec![wp], BackendKind::dise_default()).expect("dise supports COLD");
        let bw = ctx
            .session(w, vec![wp], BackendKind::BinaryRewrite)
            .expect("rewrite supports a single scalar");
        format!(
            "{:<10}{:>10.2}{:>12.2}{:>13.2}x\n",
            w.name(),
            dise.overhead_vs(&base),
            bw.overhead_vs(&base),
            bw.text_bytes as f64 / dise.text_bytes.max(1) as f64,
        )
    });
    out.extend(rows);
    out
}

/// **Figure 6** — impact of the number of watchpoints: the
/// hardware-register/virtual-memory hybrid against the three DISE
/// multi-matching organisations and the bound-register comparators, on
/// crafty, gcc and vortex. The 17- and 20-watchpoint rows sit past the
/// comparator file's 16 bound-register pairs: the comparator column
/// degrades to the paper's "no experiment" bar (`--`, a loud
/// `Unsupported` at setup) while the match-address organisations spill
/// their constants to memory and keep running.
pub fn fig6(ctx: &Experiment) -> String {
    let counts = [1usize, 2, 3, 4, 5, 8, 16, 17, 20];
    let kernels: Vec<&Workload> = ["crafty", "gcc", "vortex"]
        .iter()
        .map(|name| {
            ctx.workloads().iter().find(|w| w.name() == *name).expect("sweep kernel exists")
        })
        .collect();
    let backends = [
        BackendKind::hw4(),
        BackendKind::Dise(DiseStrategy::default()),
        BackendKind::Dise(DiseStrategy::bloom(false)),
        BackendKind::Dise(DiseStrategy::bloom(true)),
        BackendKind::DiseComparators,
    ];
    let mut cells = Vec::new();
    for w in &kernels {
        for n in counts {
            let wps = w.sweep_watchpoints(n);
            for backend in backends {
                cells.push(ctx.job(w, wps.clone(), backend));
            }
        }
    }
    let overheads = ctx.grid_overheads(&cells);

    let mut out = format!(
        "{:<10}{:>4}{:>10}{:>10}{:>10}{:>10}{:>10}\n",
        "benchmark", "n", "Hw/VM", "Serial", "ByteBloom", "BitBloom", "Cmp"
    );
    let mut next = overheads.into_iter();
    for w in &kernels {
        for n in counts {
            out.push_str(&format!("{:<10}{:>4}", w.name(), n));
            for _ in backends {
                out.push_str(&fmt_over(next.next().expect("one overhead per cell")));
            }
            out.push('\n');
        }
    }
    out
}

/// **Figure 7** — the DISE design space: three replacement-sequence
/// organisations with and without conditional trap/call support, on
/// bzip2, mcf and twolf (HOT/WARM1/WARM2/COLD).
pub fn fig7(ctx: &Experiment) -> String {
    let kinds = [WatchKind::Hot, WatchKind::Warm1, WatchKind::Warm2, WatchKind::Cold];
    let organisations = [
        ("MA/EE +cond", DiseStrategy::match_address_call(true)),
        ("EE/-- +cond", DiseStrategy::evaluate_inline(true)),
        ("MAV/-- +cond", DiseStrategy::match_address_value(true)),
        ("MA/EE -cond", DiseStrategy::match_address_call(false)),
        ("EE/-- -cond", DiseStrategy::evaluate_inline(false)),
        ("MAV/-- -cond", DiseStrategy::match_address_value(false)),
    ];
    let kernels: Vec<&Workload> = ["bzip2", "mcf", "twolf"]
        .iter()
        .map(|name| ctx.workloads().iter().find(|w| w.name() == *name).expect("fig7 kernel exists"))
        .collect();
    let mut cells = Vec::new();
    for w in &kernels {
        for kind in kinds {
            for (_, strategy) in &organisations {
                cells.push(ctx.job(w, vec![w.watchpoint(kind)], BackendKind::Dise(*strategy)));
            }
        }
    }
    let overheads = ctx.grid_overheads(&cells);

    let mut out = format!("{:<10}{:<7}", "benchmark", "watch");
    for (label, _) in &organisations {
        out.push_str(&format!("{label:>14}"));
    }
    out.push('\n');
    let mut next = overheads.into_iter();
    for w in &kernels {
        for kind in kinds {
            out.push_str(&format!("{:<10}{:<7}", w.name(), kind.label()));
            for _ in &organisations {
                out.push_str(&format!(
                    "      {}",
                    fmt_over(next.next().expect("one overhead per cell"))
                ));
            }
            out.push('\n');
        }
    }
    out
}

/// **Figure 8** — multithreaded DISE function calls: the paper's
/// default organisation with and without the second thread context.
pub fn fig8(ctx: &Experiment) -> String {
    let kinds = [WatchKind::Hot, WatchKind::Warm1, WatchKind::Warm2, WatchKind::Cold];
    let backends = [
        BackendKind::dise_default(),
        BackendKind::Dise(DiseStrategy { multithreaded_calls: true, ..DiseStrategy::default() }),
    ];
    let mut cells = Vec::new();
    for w in ctx.workloads() {
        for kind in kinds {
            for backend in backends {
                cells.push(ctx.job(w, vec![w.watchpoint(kind)], backend));
            }
        }
    }
    let overheads = ctx.grid_overheads(&cells);

    let mut out = format!("{:<10}{:<7}{:>12}{:>12}\n", "benchmark", "watch", "no-MT", "with-MT");
    let mut next = overheads.into_iter();
    for w in ctx.workloads() {
        for kind in kinds {
            let plain = next.next().expect("one overhead per cell");
            let mt = next.next().expect("one overhead per cell");
            out.push_str(&format!(
                "{:<10}{:<7}  {}  {}\n",
                w.name(),
                kind.label(),
                fmt_over(plain),
                fmt_over(mt)
            ));
        }
    }
    out
}

/// **Figure 9** — the cost of protecting the debugger's embedded data
/// (the Fig. 2f store-range check) on a COLD watchpoint.
pub fn fig9(ctx: &Experiment) -> String {
    let backends = [
        BackendKind::dise_default(),
        BackendKind::Dise(DiseStrategy { protect_debugger: true, ..DiseStrategy::default() }),
    ];
    let mut cells = Vec::new();
    for w in ctx.workloads() {
        for backend in backends {
            cells.push(ctx.job(w, vec![w.watchpoint(WatchKind::Cold)], backend));
        }
    }
    let overheads = ctx.grid_overheads(&cells);

    let mut out = format!("{:<10}{:>14}{:>12}\n", "benchmark", "unprotected", "protected");
    let mut next = overheads.into_iter();
    for w in ctx.workloads() {
        let plain = next.next().expect("one overhead per cell");
        let prot = next.next().expect("one overhead per cell");
        out.push_str(&format!("{:<10}  {}  {}\n", w.name(), fmt_over(plain), fmt_over(prot)));
    }
    out
}

/// **Transition-cost sensitivity** (beyond the paper's figures): the
/// paper *measures* the application→debugger→application round trip at
/// ~290K cycles (gdb) and ~513K (Visual Studio) but conservatively
/// models 100K throughout §5. This table re-runs the WARM1 watchpoint
/// under all three costs. The three cells of each (kernel, backend) row
/// differ only in timing configuration, so the grid batches them into a
/// **single functional pass** (`run_session_batch`) — the sweep costs
/// one execution per row, not one per cell.
pub fn sensitivity(ctx: &Experiment) -> String {
    let costs = transition_cost_sweep(ctx.cpu);
    let backends = [
        ("VirtMem", BackendKind::VirtualMemory),
        ("HwRegs", BackendKind::hw4()),
        ("DISE-Cmp", BackendKind::DiseComparators),
        ("DISE", BackendKind::dise_default()),
    ];
    let mut cells = Vec::new();
    for w in ctx.workloads() {
        for (_, backend) in backends {
            for (_, cpu) in &costs {
                cells.push(SessionJob::new(
                    w.clone(),
                    vec![w.watchpoint(WatchKind::Warm1)],
                    backend,
                    *cpu,
                ));
            }
        }
    }
    let overheads = ctx.grid_overheads(&cells);

    let mut out = format!("{:<10}{:<9}", "benchmark", "backend");
    for (label, _) in &costs {
        out.push_str(&format!("{label:>10}"));
    }
    out.push('\n');
    let mut next = overheads.into_iter();
    for w in ctx.workloads() {
        for (name, _) in backends {
            out.push_str(&format!("{:<10}{:<9}", w.name(), name));
            for _ in &costs {
                out.push_str(&format!(
                    "  {}",
                    fmt_over(next.next().expect("one overhead per cell"))
                ));
            }
            out.push('\n');
        }
    }
    out
}

/// **Watchpoint-set sweep** (beyond the paper's figures): three
/// qualitatively different watchpoint sets per kernel
/// ([`watchpoint_set_sweep`]) under every observing backend plus DISE.
/// The observing cells of one kernel — every set × VirtMem/HwRegs/
/// DISE-Cmp — batch into a **single** functional pass of the unmodified
/// application (`ObserverBatch` members each carry their own set);
/// only the DISE column pays a private replay per set. HwRegs renders
/// `--` on the RANGE set (non-scalars exceed register granularity)
/// without costing its co-members the shared pass.
pub fn watchpoint_sets(ctx: &Experiment) -> String {
    let backends = [
        ("VirtMem", BackendKind::VirtualMemory),
        ("HwRegs", BackendKind::hw4()),
        ("DISE-Cmp", BackendKind::DiseComparators),
        ("DISE", BackendKind::dise_default()),
    ];
    let mut cells = Vec::new();
    let mut labels = Vec::new();
    for w in ctx.workloads() {
        for (label, wps) in watchpoint_set_sweep(w) {
            labels.push((w.name(), label));
            for (_, backend) in backends {
                cells.push(ctx.job(w, wps.clone(), backend));
            }
        }
    }
    let overheads = ctx.grid_overheads(&cells);

    let mut out = format!("{:<10}{:<12}", "benchmark", "watchpoints");
    for (label, _) in backends {
        out.push_str(&format!("{label:>10}"));
    }
    out.push('\n');
    let mut next = overheads.into_iter();
    for (kernel, set) in labels {
        out.push_str(&format!("{kernel:<10}{set:<12}"));
        for _ in backends {
            out.push_str(&format!("  {}", fmt_over(next.next().expect("one overhead per cell"))));
        }
        out.push('\n');
    }
    out
}

/// Sanity harness used by the quickstart example and the integration
/// tests: one undebugged run of each kernel.
pub fn baseline_table(ctx: &Experiment) -> String {
    let mut out = String::from("benchmark   cycles  instructions   IPC\n");
    let rows = ctx.per_workload(|w| {
        let prog = w.app().program().expect("kernel assembles");
        let mut m = Machine::with_config(&prog, ctx.cpu);
        let s = m.run();
        format!("{:<10}{:>9}{:>13}{:>7.2}\n", w.name(), s.cycles, s.instructions, s.ipc())
    });
    out.extend(rows);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Experiment {
        Experiment::new(60, CpuConfig::default())
    }

    #[test]
    fn table1_has_six_rows() {
        let t = table1(&tiny());
        assert_eq!(t.lines().count(), 7);
        assert!(t.contains("bzip2"));
        assert!(t.contains("generateMTFValues"));
    }

    #[test]
    fn table2_hot_dominates_cold() {
        let t = table2(&tiny());
        for line in t.lines().skip(1) {
            let fields: Vec<&str> = line.split_whitespace().collect();
            let hot: f64 = fields[1].parse().unwrap();
            let cold: f64 = fields[4].parse().unwrap();
            assert!(hot > cold, "{line}");
        }
    }

    #[test]
    fn fig5_rewriting_bloats_text() {
        let t = fig5(&tiny());
        for line in t.lines().skip(1) {
            let growth: f64 =
                line.split_whitespace().last().unwrap().trim_end_matches('x').parse().unwrap();
            assert!(growth > 1.3, "{line}");
        }
    }

    #[test]
    fn fig3_row_for_one_cell_behaves() {
        let ctx = tiny();
        let w = ctx.workloads()[0].clone(); // bzip2
        let hot = w.watchpoint(WatchKind::Hot);
        let ss = ctx.overhead(&w, vec![hot], BackendKind::SingleStep).unwrap();
        let dise = ctx.overhead(&w, vec![hot], BackendKind::dise_default()).unwrap();
        assert!(ss > 100.0, "single-stepping catastrophically slow: {ss}");
        assert!(dise < 5.0, "DISE stays modest: {dise}");
        // INDIRECT has no VM/HW experiment.
        let ind = w.watchpoint(WatchKind::Indirect);
        assert!(ctx.overhead(&w, vec![ind], BackendKind::VirtualMemory).is_none());
        assert!(ctx.overhead(&w, vec![ind], BackendKind::hw4()).is_none());
        assert!(ctx.overhead(&w, vec![ind], BackendKind::dise_default()).is_some());
    }
}
