//! The experiment implementations, one per table/figure.

use std::collections::HashMap;

use dise_cpu::{CpuConfig, Executor, Machine, RunStats};
use dise_debug::{run_baseline, BackendKind, DebugError, DiseStrategy, Session, SessionReport};
use dise_workloads::{all, WatchKind, Workload};

/// Shared experiment context: workload scale, machine configuration,
/// and a baseline cache (the undebugged run of each kernel).
pub struct Experiment {
    /// Kernel iteration count.
    pub iters: u32,
    /// Machine configuration.
    pub cpu: CpuConfig,
    workloads: Vec<Workload>,
    baselines: HashMap<&'static str, RunStats>,
}

impl Default for Experiment {
    fn default() -> Experiment {
        let iters = std::env::var("DISE_ITERS").ok().and_then(|s| s.parse().ok()).unwrap_or(400);
        Experiment::new(iters, CpuConfig::default())
    }
}

impl Experiment {
    /// Build a context at the given scale.
    pub fn new(iters: u32, cpu: CpuConfig) -> Experiment {
        Experiment { iters, cpu, workloads: all(iters), baselines: HashMap::new() }
    }

    /// The six kernels.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// Baseline (undebugged) statistics for a kernel, cached.
    pub fn baseline(&mut self, w: &Workload) -> RunStats {
        let cpu = self.cpu;
        *self
            .baselines
            .entry(w.name())
            .or_insert_with(|| run_baseline(w.app(), cpu).expect("kernel assembles"))
    }

    /// Run one debugging session; `Err` carries the paper's
    /// "no experiment" bars.
    pub fn session(
        &self,
        w: &Workload,
        wps: Vec<dise_debug::Watchpoint>,
        backend: BackendKind,
    ) -> Result<SessionReport, DebugError> {
        Ok(Session::with_config(w.app(), wps, backend, self.cpu)?.run())
    }

    /// Overhead (normalised execution time) of one session, or `None`
    /// when the backend cannot implement the watchpoint.
    pub fn overhead(
        &mut self,
        w: &Workload,
        wps: Vec<dise_debug::Watchpoint>,
        backend: BackendKind,
    ) -> Option<f64> {
        let base = self.baseline(w);
        match self.session(w, wps, backend) {
            Ok(report) => {
                assert_eq!(report.error, None, "{}: session must run clean", w.name());
                Some(report.overhead_vs(&base))
            }
            Err(DebugError::Unsupported { .. }) => None,
            Err(e) => panic!("{}: {e}", w.name()),
        }
    }
}

fn fmt_over(o: Option<f64>) -> String {
    match o {
        None => "      --".to_string(),
        Some(v) if v >= 1000.0 => format!("{v:>8.0}"),
        Some(v) => format!("{v:>8.2}"),
    }
}

/// The four implementations compared in Figs. 3 and 4.
fn standard_backends() -> [(&'static str, BackendKind); 4] {
    [
        ("Single-Stepping", BackendKind::SingleStep),
        ("Virtual-Memory", BackendKind::VirtualMemory),
        ("Hardware", BackendKind::hw4()),
        ("DISE", BackendKind::dise_default()),
    ]
}

/// **Table 1** — benchmark summary: dynamic instructions, IPC, store
/// density, per kernel.
pub fn table1(ctx: &mut Experiment) -> String {
    let mut out =
        String::from("benchmark  function                 instructions      IPC   store density\n");
    for w in ctx.workloads().to_vec() {
        let prog = w.app().program().expect("kernel assembles");
        // Functional pass for the store count; timed pass for IPC.
        let mut exec = Executor::from_program(&prog, ctx.cpu);
        let mut stores = 0u64;
        while !exec.is_halted() {
            if exec.step().mem.is_some_and(|m| m.is_store) {
                stores += 1;
            }
        }
        let base = ctx.baseline(&w);
        out.push_str(&format!(
            "{:<10} {:<24} {:>12} {:>8.2} {:>10.1}%\n",
            w.name(),
            w.function(),
            base.instructions,
            base.ipc(),
            100.0 * stores as f64 / base.instructions as f64,
        ));
    }
    out
}

/// **Table 2** — watchpoint write frequency per 100K stores (stores
/// overlapping each watched expression's current storage).
pub fn table2(ctx: &mut Experiment) -> String {
    let mut out =
        String::from("benchmark       HOT    WARM1    WARM2     COLD INDIRECT    RANGE\n");
    for w in ctx.workloads().to_vec() {
        let prog = w.app().program().expect("kernel assembles");
        let exprs: Vec<_> = WatchKind::ALL.iter().map(|k| w.watch_expr(*k)).collect();
        let mut hits = [0u64; 6];
        let mut stores = 0u64;
        let mut exec = Executor::from_program(&prog, ctx.cpu);
        while !exec.is_halted() {
            let e = exec.step();
            if let Some(m) = e.mem {
                if m.is_store {
                    stores += 1;
                    for (i, expr) in exprs.iter().enumerate() {
                        let overlap = expr
                            .watched_intervals(exec.mem())
                            .iter()
                            .any(|&(base, len)| m.addr < base + len && base < m.addr + m.width);
                        if overlap {
                            hits[i] += 1;
                        }
                    }
                }
            }
        }
        out.push_str(&format!("{:<10}", w.name()));
        for h in hits {
            out.push_str(&format!(" {:>8.1}", 100_000.0 * h as f64 / stores.max(1) as f64));
        }
        out.push('\n');
    }
    out
}

/// **Figure 3** — execution time (normalised to undebugged) of four
/// unconditional-watchpoint implementations, 6 kernels × 6 watchpoints.
pub fn fig3(ctx: &mut Experiment) -> String {
    watchpoint_grid(ctx, false)
}

/// **Figure 4** — the same grid with conditional watchpoints whose
/// predicate never holds.
pub fn fig4(ctx: &mut Experiment) -> String {
    watchpoint_grid(ctx, true)
}

fn watchpoint_grid(ctx: &mut Experiment, conditional: bool) -> String {
    let mut out = format!(
        "{:<10} {:<9}{:>9}{:>9}{:>9}{:>9}\n",
        "benchmark", "watch", "SingleStep", " VirtMem", " HwRegs", "  DISE"
    );
    for w in ctx.workloads().to_vec() {
        for kind in WatchKind::ALL {
            let wp = if conditional { w.conditional_watchpoint(kind) } else { w.watchpoint(kind) };
            out.push_str(&format!("{:<10} {:<9}", w.name(), kind.label()));
            for (_, backend) in standard_backends() {
                let o = ctx.overhead(&w, vec![wp], backend);
                out.push_str(&fmt_over(o));
            }
            out.push('\n');
        }
    }
    out
}

/// **Figure 5** — DISE vs. static binary rewriting on a COLD
/// watchpoint, plus the static code growth that causes the difference.
pub fn fig5(ctx: &mut Experiment) -> String {
    let mut out =
        format!("{:<10}{:>10}{:>12}{:>14}\n", "benchmark", "DISE", "Rewriting", "text growth");
    for w in ctx.workloads().to_vec() {
        let wp = w.watchpoint(WatchKind::Cold);
        let base = ctx.baseline(&w);
        let dise =
            ctx.session(&w, vec![wp], BackendKind::dise_default()).expect("dise supports COLD");
        let bw = ctx
            .session(&w, vec![wp], BackendKind::BinaryRewrite)
            .expect("rewrite supports a single scalar");
        out.push_str(&format!(
            "{:<10}{:>10.2}{:>12.2}{:>13.2}x\n",
            w.name(),
            dise.overhead_vs(&base),
            bw.overhead_vs(&base),
            bw.text_bytes as f64 / dise.text_bytes.max(1) as f64,
        ));
    }
    out
}

/// **Figure 6** — impact of the number of watchpoints: the
/// hardware-register/virtual-memory hybrid against the three DISE
/// multi-matching organisations, on crafty, gcc and vortex.
pub fn fig6(ctx: &mut Experiment) -> String {
    let counts = [1usize, 2, 3, 4, 5, 8, 16];
    let mut out = format!(
        "{:<10}{:>4}{:>10}{:>10}{:>10}{:>10}\n",
        "benchmark", "n", "Hw/VM", "Serial", "ByteBloom", "BitBloom"
    );
    for name in ["crafty", "gcc", "vortex"] {
        let w =
            ctx.workloads().iter().find(|w| w.name() == name).expect("sweep kernel exists").clone();
        for n in counts {
            let wps = w.sweep_watchpoints(n);
            out.push_str(&format!("{:<10}{:>4}", w.name(), n));
            let hw = ctx.overhead(&w, wps.clone(), BackendKind::hw4());
            out.push_str(&fmt_over(hw));
            for strategy in
                [DiseStrategy::default(), DiseStrategy::bloom(false), DiseStrategy::bloom(true)]
            {
                let o = ctx.overhead(&w, wps.clone(), BackendKind::Dise(strategy));
                out.push_str(&fmt_over(o));
            }
            out.push('\n');
        }
    }
    out
}

/// **Figure 7** — the DISE design space: three replacement-sequence
/// organisations with and without conditional trap/call support, on
/// bzip2, mcf and twolf (HOT/WARM1/WARM2/COLD).
pub fn fig7(ctx: &mut Experiment) -> String {
    let kinds = [WatchKind::Hot, WatchKind::Warm1, WatchKind::Warm2, WatchKind::Cold];
    let organisations = [
        ("MA/EE +cond", DiseStrategy::match_address_call(true)),
        ("EE/-- +cond", DiseStrategy::evaluate_inline(true)),
        ("MAV/-- +cond", DiseStrategy::match_address_value(true)),
        ("MA/EE -cond", DiseStrategy::match_address_call(false)),
        ("EE/-- -cond", DiseStrategy::evaluate_inline(false)),
        ("MAV/-- -cond", DiseStrategy::match_address_value(false)),
    ];
    let mut out = format!("{:<10}{:<7}", "benchmark", "watch");
    for (label, _) in &organisations {
        out.push_str(&format!("{label:>14}"));
    }
    out.push('\n');
    for name in ["bzip2", "mcf", "twolf"] {
        let w =
            ctx.workloads().iter().find(|w| w.name() == name).expect("fig7 kernel exists").clone();
        for kind in kinds {
            out.push_str(&format!("{:<10}{:<7}", w.name(), kind.label()));
            for (_, strategy) in &organisations {
                let o = ctx.overhead(&w, vec![w.watchpoint(kind)], BackendKind::Dise(*strategy));
                out.push_str(&format!("      {}", fmt_over(o)));
            }
            out.push('\n');
        }
    }
    out
}

/// **Figure 8** — multithreaded DISE function calls: the paper's
/// default organisation with and without the second thread context.
pub fn fig8(ctx: &mut Experiment) -> String {
    let kinds = [WatchKind::Hot, WatchKind::Warm1, WatchKind::Warm2, WatchKind::Cold];
    let mut out = format!("{:<10}{:<7}{:>12}{:>12}\n", "benchmark", "watch", "no-MT", "with-MT");
    for w in ctx.workloads().to_vec() {
        for kind in kinds {
            let wp = w.watchpoint(kind);
            let plain = ctx.overhead(&w, vec![wp], BackendKind::dise_default());
            let mt = ctx.overhead(
                &w,
                vec![wp],
                BackendKind::Dise(DiseStrategy {
                    multithreaded_calls: true,
                    ..DiseStrategy::default()
                }),
            );
            out.push_str(&format!(
                "{:<10}{:<7}  {}  {}\n",
                w.name(),
                kind.label(),
                fmt_over(plain),
                fmt_over(mt)
            ));
        }
    }
    out
}

/// **Figure 9** — the cost of protecting the debugger's embedded data
/// (the Fig. 2f store-range check) on a COLD watchpoint.
pub fn fig9(ctx: &mut Experiment) -> String {
    let mut out = format!("{:<10}{:>14}{:>12}\n", "benchmark", "unprotected", "protected");
    for w in ctx.workloads().to_vec() {
        let wp = w.watchpoint(WatchKind::Cold);
        let plain = ctx.overhead(&w, vec![wp], BackendKind::dise_default());
        let prot = ctx.overhead(
            &w,
            vec![wp],
            BackendKind::Dise(DiseStrategy { protect_debugger: true, ..DiseStrategy::default() }),
        );
        out.push_str(&format!("{:<10}  {}  {}\n", w.name(), fmt_over(plain), fmt_over(prot)));
    }
    out
}

/// Sanity harness used by the quickstart example and the integration
/// tests: one undebugged run of each kernel.
pub fn baseline_table(ctx: &mut Experiment) -> String {
    let mut out = String::from("benchmark   cycles  instructions   IPC\n");
    for w in ctx.workloads().to_vec() {
        let prog = w.app().program().expect("kernel assembles");
        let mut m = Machine::with_config(&prog, ctx.cpu);
        let s = m.run();
        out.push_str(&format!(
            "{:<10}{:>9}{:>13}{:>7.2}\n",
            w.name(),
            s.cycles,
            s.instructions,
            s.ipc()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Experiment {
        Experiment::new(60, CpuConfig::default())
    }

    #[test]
    fn table1_has_six_rows() {
        let t = table1(&mut tiny());
        assert_eq!(t.lines().count(), 7);
        assert!(t.contains("bzip2"));
        assert!(t.contains("generateMTFValues"));
    }

    #[test]
    fn table2_hot_dominates_cold() {
        let t = table2(&mut tiny());
        for line in t.lines().skip(1) {
            let fields: Vec<&str> = line.split_whitespace().collect();
            let hot: f64 = fields[1].parse().unwrap();
            let cold: f64 = fields[4].parse().unwrap();
            assert!(hot > cold, "{line}");
        }
    }

    #[test]
    fn fig5_rewriting_bloats_text() {
        let ctx = &mut tiny();
        let t = fig5(ctx);
        for line in t.lines().skip(1) {
            let growth: f64 =
                line.split_whitespace().last().unwrap().trim_end_matches('x').parse().unwrap();
            assert!(growth > 1.3, "{line}");
        }
    }

    #[test]
    fn fig3_row_for_one_cell_behaves() {
        let mut ctx = tiny();
        let w = ctx.workloads()[0].clone(); // bzip2
        let hot = w.watchpoint(WatchKind::Hot);
        let ss = ctx.overhead(&w, vec![hot], BackendKind::SingleStep).unwrap();
        let dise = ctx.overhead(&w, vec![hot], BackendKind::dise_default()).unwrap();
        assert!(ss > 100.0, "single-stepping catastrophically slow: {ss}");
        assert!(dise < 5.0, "DISE stays modest: {dise}");
        // INDIRECT has no VM/HW experiment.
        let ind = w.watchpoint(WatchKind::Indirect);
        assert!(ctx.overhead(&w, vec![ind], BackendKind::VirtualMemory).is_none());
        assert!(ctx.overhead(&w, vec![ind], BackendKind::hw4()).is_none());
        assert!(ctx.overhead(&w, vec![ind], BackendKind::dise_default()).is_some());
    }
}
