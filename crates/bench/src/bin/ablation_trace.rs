//! Persistent-trace ablation: what recording a kernel's functional
//! `Exec` stream costs, how hard the delta + run-length codec squeezes
//! it, how fast a stored stream replays, and what the record-once /
//! replay-forever economy saves an observer grid in functional passes.
//! Replays are byte-identical to live runs (the conformance and
//! determinism suites prove that); this harness shows the ratios,
//! throughputs and counters, honestly — the compression column is the
//! codec's doing, the pass-economy columns are the grid's.

use std::time::Instant;

use dise_asm::{parse_asm, Layout};
use dise_cpu::{replay_timing, CpuConfig, TraceReader};
use dise_debug::{
    functional_passes, record_session, run_baseline, trace_records, trace_replays, Application,
    BackendKind, ObserverBatch,
};
use dise_workloads::{all, transition_cost_sweep, WatchKind};

/// A unique scratch directory per invocation: the ablation must measure
/// a cold record, not whatever a previous run left in a shared store.
fn scratch_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dise-trace-ablation-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch trace dir");
    dir
}

fn main() {
    let iters: u32 = dise_bench::env_number("DISE_ITERS", 2_000);
    let dir = scratch_dir();

    // 1. The acceptance kernel: a tight store loop, the best case for
    //    the run-length layer — after the first iteration every record
    //    is predicted by the last one seen at its (pc, disepc) slot, so
    //    whole laps collapse into run tokens.
    let tight = Application::new(
        parse_asm(
            "        la      r1, hot
                     lda     r4, 2000(zero)
             loop:   stq     r4, 0(r1)
                     subq    r4, 1, r4
                     bgt     r4, loop
                     halt
             .data
             hot:    .quad 0",
        )
        .expect("tight loop parses"),
        Layout::default(),
    );
    let path = dir.join("tight_loop.dtrc");
    let stats = record_session(&tight, &path).expect("tight loop records");
    println!("Persistent trace ablation ({iters}-iteration kernels)\n");
    println!(
        "tight loop: {} records, {} raw B -> {} file B ({:.1}x compression)",
        stats.records,
        stats.raw_bytes,
        stats.file_bytes,
        stats.compression()
    );
    assert!(
        stats.compression() >= 10.0,
        "the acceptance bar: >=10x on the tight loop, got {:.1}x",
        stats.compression()
    );

    // 2. Per-kernel codec economics and throughput: record each
    //    calibrated kernel once, then replay the stored stream through
    //    a timing model and check it against the live baseline.
    println!(
        "\n{:<14}{:>10}{:>10}{:>9}{:>8}{:>12}{:>12}",
        "kernel", "records", "file B", "B/rec", "ratio", "rec Mrec/s", "rep Mrec/s"
    );
    for w in &all(iters) {
        let path = dir.join(format!("{}.dtrc", w.name()));
        let t = Instant::now();
        let stats = record_session(w.app(), &path).expect("kernel records");
        let record_secs = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let mut reader = TraceReader::open(&path, None).expect("fresh trace opens");
        let replayed = replay_timing(&mut reader, &[CpuConfig::default()])
            .expect("fresh trace replays")
            .remove(0);
        let replay_secs = t.elapsed().as_secs_f64();
        let live = run_baseline(w.app(), CpuConfig::default()).expect("kernel runs");
        assert_eq!(replayed, live, "{}: replayed timing must match the live machine", w.name());

        #[allow(clippy::cast_precision_loss)]
        let (records, file_bytes) = (stats.records as f64, stats.file_bytes as f64);
        println!(
            "{:<14}{:>10}{:>10}{:>9.2}{:>8.1}{:>12.2}{:>12.2}",
            w.name(),
            stats.records,
            stats.file_bytes,
            file_bytes / records,
            stats.compression(),
            records / record_secs / 1e6,
            records / replay_secs / 1e6,
        );
    }

    // 3. The pass economy: one observer group (3 watchpoint sets x 2
    //    observing backends x 3 timing configs) run cold (recording)
    //    and warm (replaying). The warm run performs zero functional
    //    passes; the reports are identical.
    let w = &all(iters)[0];
    let sets = [
        vec![w.watchpoint(WatchKind::Hot)],
        vec![w.watchpoint(WatchKind::Warm1)],
        vec![w.watchpoint(WatchKind::Cold)],
    ];
    let cpus: Vec<CpuConfig> =
        transition_cost_sweep(CpuConfig::default()).into_iter().map(|(_, c)| c).collect();
    let batch = |app| {
        let mut b = ObserverBatch::new(app);
        for set in &sets {
            for backend in [BackendKind::VirtualMemory, BackendKind::hw4()] {
                b.member(backend, set.clone(), cpus.clone());
            }
        }
        b
    };
    let members = batch(w.app()).len();
    let path = dir.join(format!("observer-{}.dtrc", w.name()));

    let (p0, r0) = (functional_passes(), trace_records());
    let t = Instant::now();
    let cold = batch(w.app()).run_recorded(&path).expect("cold observer batch runs");
    let cold_secs = t.elapsed().as_secs_f64();
    let (cold_passes, cold_records) = (functional_passes() - p0, trace_records() - r0);

    let (p0, r0) = (functional_passes(), trace_replays());
    let t = Instant::now();
    let warm = batch(w.app()).run_from_trace(&path).expect("warm observer batch replays");
    let warm_secs = t.elapsed().as_secs_f64();
    let (warm_passes, warm_replays) = (functional_passes() - p0, trace_replays() - r0);

    assert_eq!(cold, warm, "{}: warm replay must be byte-identical to the cold run", w.name());
    assert_eq!(warm_passes, 0, "a warm grid performs zero functional passes");
    println!(
        "\nObserver-batch economy on {} ({} members x {} timing configs):",
        w.name(),
        members,
        cpus.len()
    );
    println!("{:<14}{:>10}{:>8}{:>9}{:>9}", "shape", "seconds", "passes", "records", "replays");
    println!(
        "{:<14}{:>10.3}{:>8}{:>9}{:>9}",
        "cold (record)", cold_secs, cold_passes, cold_records, 0
    );
    println!(
        "{:<14}{:>10.3}{:>8}{:>9}{:>9}",
        "warm (replay)", warm_secs, warm_passes, 0, warm_replays
    );

    println!(
        "\nThe passes column is the tentpole: a warm store serves every \
         watchpoint set, observing backend and timing configuration from \
         one stored stream without executing the application at all — the \
         record-once pass is the last functional pass that kernel ever \
         needs. The ratio column is the codec: straight-line re-execution \
         collapses into run tokens, so file size tracks the kernel's \
         *control structure*, not its dynamic instruction count."
    );

    let _ = std::fs::remove_dir_all(&dir);
}
