//! Chunked fan-out ablation: what slice-based observer dispatch with
//! per-member store-interval prefilters buys over record-at-a-time
//! fan-out. The observer batch runs a watch-sparse kernel — every store
//! lands pages away from every watched cell — once per chunk size
//! (`DISE_CHUNK=1` *is* the per-record fan-out: every record becomes a
//! singleton chunk), on both the live-execution and trace-replay paths,
//! for each observing backend solo and for the 4-member batch. A middle
//! row per configuration (chunked, `DISE_TIMING_SHARE=0`) splits the
//! win between chunk dispatch/prefiltering and copy-on-write timing
//! groups. Output is asserted byte-identical across chunk sizes and
//! sharing modes before any throughput is reported, and the whole table
//! is also emitted as machine-readable `BENCH_fanout.json`.

use std::path::Path;
use std::time::Instant;

use dise_asm::{parse_asm, Layout};
use dise_cpu::CpuConfig;
use dise_debug::{
    fanout_chunks, fanout_chunks_scanned, fanout_chunks_skipped, Application, BackendKind,
    ObserverBatch, SessionReport, WatchExpr, Watchpoint,
};
use dise_isa::Width;

/// One member of the ablation batch: a display name, an observing
/// backend, and the watched address.
type Member = (&'static str, BackendKind, u64);

/// One measured configuration, ready for both the console table and the
/// JSON emission.
struct Sample {
    label: &'static str,
    mode: &'static str,
    chunk: u64,
    share: bool,
    records_per_sec: f64,
    chunks: u64,
    skipped: u64,
    scanned: u64,
    reports: Vec<Vec<SessionReport>>,
}

fn watchpoint(addr: u64) -> Watchpoint {
    Watchpoint::new(WatchExpr::Scalar { addr, width: Width::Q })
}

fn batch<'a>(app: &'a Application, members: &[Member]) -> ObserverBatch<'a> {
    let mut b = ObserverBatch::new(app);
    for &(_, backend, addr) in members {
        b.member(backend, vec![watchpoint(addr)], vec![CpuConfig::default()]);
    }
    b
}

/// Run `members` over `app` at the given chunk size, best-of-`reps`
/// wall time, and return the throughput, chunk-counter deltas, and the
/// reports (for the byte-identity assertion).
#[allow(clippy::cast_precision_loss)]
#[allow(clippy::too_many_arguments)]
fn measure(
    label: &'static str,
    app: &Application,
    members: &[Member],
    records: u64,
    chunk: u64,
    share: bool,
    trace: Option<&Path>,
    reps: u32,
) -> Sample {
    std::env::set_var("DISE_CHUNK", chunk.to_string());
    std::env::set_var("DISE_TIMING_SHARE", if share { "1" } else { "0" });
    let mode = if trace.is_some() { "replay" } else { "live" };
    let (c0, s0, k0) = (fanout_chunks(), fanout_chunks_scanned(), fanout_chunks_skipped());
    let mut best = f64::INFINITY;
    let mut reports = Vec::new();
    for _ in 0..reps.max(1) {
        let b = batch(app, members);
        let t = Instant::now();
        let out = match trace {
            Some(path) => b.run_from_trace(path),
            None => b.run(),
        };
        best = best.min(t.elapsed().as_secs_f64());
        reports = out
            .expect("ablation batch runs")
            .into_iter()
            .map(|r| r.expect("every member is observable"))
            .collect();
    }
    let reps = u64::from(reps.max(1));
    let (chunks, scanned, skipped) = (
        (fanout_chunks() - c0) / reps,
        (fanout_chunks_scanned() - s0) / reps,
        (fanout_chunks_skipped() - k0) / reps,
    );
    assert_eq!(
        scanned + skipped,
        members.len() as u64 * chunks,
        "{label}/{mode}: every (member, chunk) pair is scanned xor skipped"
    );
    Sample {
        label,
        mode,
        chunk,
        share,
        records_per_sec: records as f64 / best,
        chunks,
        skipped,
        scanned,
        reports,
    }
}

fn json_row(s: &Sample) -> String {
    format!(
        "    {{\"config\": \"{}\", \"mode\": \"{}\", \"chunk\": {}, \"timing_share\": {}, \
         \"records_per_sec\": {:.0}, \"chunks\": {}, \"skipped\": {}, \"scanned\": {}}}",
        s.label, s.mode, s.chunk, s.share, s.records_per_sec, s.chunks, s.skipped, s.scanned
    )
}

#[allow(clippy::too_many_lines)]
fn main() {
    let iters: u32 = dise_bench::env_number("DISE_ITERS", 20_000);
    let reps: u32 = dise_bench::env_number("DISE_REPS", 5);
    let chunk: u64 = dise_bench::env_number("DISE_CHUNK", 64);
    assert!(chunk > 1, "the ablation compares DISE_CHUNK={chunk} against the per-record 1");

    // The watch-sparse kernel: a tight store loop hammering `hot`,
    // with every watched cell a page or more away — no store ever
    // intersects a member's filter, so every clean chunk is skippable
    // by every member. This isolates the dispatch cost the tentpole
    // removes; the conformance and property suites already prove the
    // dense/retargeting cases byte-identical.
    // `lda` carries a 14-bit displacement; synthesize larger iteration
    // counts as base * 2^k with a run of doublings.
    let (mut base, mut doublings) = (i64::from(iters), String::new());
    while base > 8191 {
        base = (base + 1) / 2;
        doublings.push_str("addq r4, r4, r4\n");
    }
    let app = Application::new(
        parse_asm(&format!(
            "        la      r1, hot
                     lda     r4, {base}(zero)
                     {doublings}
             loop:   stq     r4, 0(r1)
                     subq    r4, 1, r4
                     bgt     r4, loop
                     halt
             .data
             hot:    .quad 0
                     .space 4096
             cold:   .quad 0
                     .space 4096
             cold2:  .quad 0"
        ))
        .expect("kernel parses"),
        Layout::default(),
    );
    let prog = app.program().expect("kernel assembles");
    let (cold, cold2) = (prog.symbol("cold").unwrap(), prog.symbol("cold2").unwrap());
    let records =
        dise_debug::run_baseline(&app, CpuConfig::default()).expect("kernel runs").instructions;

    let solo: [Member; 3] = [
        ("virtual_memory", BackendKind::VirtualMemory, cold),
        ("hw_registers", BackendKind::hw4(), cold),
        ("dise_comparators", BackendKind::DiseComparators, cold),
    ];
    let batch4: [Member; 4] = [
        ("virtual_memory", BackendKind::VirtualMemory, cold),
        ("hw_registers", BackendKind::hw4(), cold),
        ("dise_comparators", BackendKind::DiseComparators, cold),
        ("virtual_memory", BackendKind::VirtualMemory, cold2),
    ];

    // One recorded pass feeds every replay measurement.
    let dir = std::env::temp_dir().join(format!("dise-fanout-ablation-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let trace = dir.join("kernel.dtrc");
    dise_debug::record_session(&app, &trace).expect("kernel records");

    println!("Chunked fan-out ablation ({iters}-iteration kernel, {records} records)\n");
    println!(
        "{:<22}{:>8}{:>7}{:>7}{:>13}{:>9}{:>9}{:>9}",
        "config", "mode", "chunk", "share", "Mrec/s", "chunks", "skipped", "scanned"
    );
    let mut samples: Vec<Sample> = Vec::new();
    let mut speedups = Vec::new();
    for members in
        std::iter::once(&batch4[..]).chain(solo.iter().map(std::slice::from_ref::<Member>))
    {
        let label = if members.len() == 4 { "batch4" } else { members[0].0 };
        for trace in [None, Some(trace.as_path())] {
            // The baseline is the pre-chunking fan-out: every record
            // dispatched alone, every member consuming privately. The
            // middle row isolates the dispatch/prefilter win from the
            // shared-timing win.
            let per_record = measure(label, &app, members, records, 1, false, trace, reps);
            let chunked_priv = measure(label, &app, members, records, chunk, false, trace, reps);
            let chunked = measure(label, &app, members, records, chunk, true, trace, reps);
            assert_eq!(
                chunked_priv.reports, per_record.reports,
                "{label}: chunked fan-out must be byte-identical to per-record"
            );
            assert_eq!(
                chunked.reports, per_record.reports,
                "{label}: shared timing must be byte-identical to private timing"
            );
            let speedup = chunked.records_per_sec / per_record.records_per_sec;
            let mode = chunked.mode;
            for s in [per_record, chunked_priv, chunked] {
                println!(
                    "{:<22}{:>8}{:>7}{:>7}{:>13.2}{:>9}{:>9}{:>9}",
                    s.label,
                    s.mode,
                    s.chunk,
                    s.share,
                    s.records_per_sec / 1e6,
                    s.chunks,
                    s.skipped,
                    s.scanned
                );
                samples.push(s);
            }
            if label == "batch4" {
                speedups.push((mode, speedup));
            }
        }
    }

    println!(
        "\n4-member batch, chunked shared-timing fan-out (DISE_CHUNK={chunk}) over \
         per-record private-timing dispatch (DISE_CHUNK=1, DISE_TIMING_SHARE=0):"
    );
    for (mode, speedup) in &speedups {
        println!("  {mode:<7} {speedup:.2}x records/sec");
    }
    let best = speedups.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);
    assert!(
        best >= 2.0,
        "acceptance bar: >=2x records/sec on the watch-sparse 4-member batch, got {best:.2}x"
    );

    let rows: Vec<String> = samples.iter().map(json_row).collect();
    let json = format!(
        "{{\n  \"kernel\": \"cold_watch_loop\",\n  \"iters\": {iters},\n  \
         \"records\": {records},\n  \"chunk\": {chunk},\n  \"reps\": {reps},\n  \
         \"batch4_speedup\": {{{}}},\n  \"configs\": [\n{}\n  ]\n}}\n",
        speedups
            .iter()
            .map(|(mode, s)| format!("\"{mode}\": {s:.3}"))
            .collect::<Vec<_>>()
            .join(", "),
        rows.join(",\n")
    );
    std::fs::write("BENCH_fanout.json", &json).expect("write BENCH_fanout.json");
    println!("\nwrote BENCH_fanout.json");

    println!(
        "\nThe skipped column is the dispatch half of the tentpole: on a \
         watch-sparse stream the summary/filter intersection rejects whole \
         chunks per member, so no member's observer ever touches a clean \
         record. The share column is the timing half: members with identical \
         CpuConfig lists hold bit-identical timing state until their first \
         spurious stall, so one copy-on-write timing group consumes each \
         chunk once instead of {} times. Per-record private-timing dispatch \
         (chunk 1, share off) — the pre-chunking fan-out — pays both costs \
         on every kernel instruction.",
        batch4.len()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
