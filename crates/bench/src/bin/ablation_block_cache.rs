//! Block-level decoded-trace cache ablation: the same kernels through
//! the executor with the cache forced off and on (`set_block_cache` —
//! the `DISE_BLOCK_CACHE` env knob sets only the default), with and
//! without a storewatching DISE production installed so the fused
//! DISE-expansion path is measured too. The `Exec` streams are
//! byte-identical either way (the conformance and determinism suites
//! prove that); this harness shows the counters and the wall-clock win.

use std::time::Instant;

use dise_asm::{parse_asm, Layout, Program};
use dise_cpu::{CpuConfig, Executor};
use dise_engine::{Pattern, Production, TDisp, TOperand, TReg, TemplateInst};
use dise_isa::{AluOp, Cond, Instr, OpClass, Reg, Width};

/// A warm store loop: the block-cache best case (one hot block replayed
/// every iteration) and, with the production installed, the fused-
/// expansion best case (the expansion is stitched into the cached
/// block once instead of re-expanded every fetch).
fn store_loop(iters: u32) -> Program {
    // Displacements are 14-bit signed and `ldah` shifts by 14: split
    // the count into `hi * 2^14 + lo` with a sign-extended low half.
    let lo = ((iters as i64) << 50 >> 50) as i16;
    let hi = ((iters as i64 - lo as i64) >> 14) as i16;
    let src = format!(
        "start:  la r1, w
                 ldah r2, {hi}(zero)
                 lda r2, {lo}(r2)
         loop:   stq r2, 0(r1)
                 addq r2, 0, r3
                 xor r3, r2, r3
                 subq r2, 1, r2
                 bgt r2, loop
                 halt
         .data
         w: .quad 0"
    );
    parse_asm(&src).expect("parses").assemble(Layout::default()).expect("assembles")
}

/// The paper's Fig. 2a naive watchpoint production: every store
/// expands to a load/compare/branch/trap sequence.
fn install_fig2a(m: &mut Executor) {
    let dr1 = Reg::dise(1);
    m.engine_mut()
        .install(Production::new(
            "fig2a",
            Pattern::opclass(OpClass::Store),
            vec![
                TemplateInst::Trigger,
                TemplateInst::Load {
                    width: Width::Q,
                    rd: TReg::Lit(dr1),
                    base: TReg::Lit(Reg::DAR),
                    disp: TDisp::Lit(0),
                },
                TemplateInst::Alu {
                    op: AluOp::CmpEq,
                    rd: TReg::Lit(dr1),
                    ra: TReg::Lit(dr1),
                    rb: TOperand::Reg(TReg::Lit(Reg::DPV)),
                },
                TemplateInst::Fixed(Instr::DBr { cond: Cond::Ne, rs: dr1, disp: 1 }),
                TemplateInst::Fixed(Instr::Trap),
            ],
        ))
        .expect("production installs");
}

fn run_once(prog: &Program, dise: bool, cache: bool) -> (f64, Executor) {
    let mut m = Executor::from_program(prog, CpuConfig::default());
    if dise {
        install_fig2a(&mut m);
        // DAR/DPV track `w`, whose value never revisits 0 mid-loop, so
        // the expansion's trap arm stays cold and the loop stays hot.
        m.set_reg(Reg::DAR, prog.symbol("w").expect("w exists"));
        m.set_reg(Reg::DPV, 0);
    }
    m.set_block_cache(cache);
    let t = Instant::now();
    while !m.is_halted() {
        m.step();
    }
    (t.elapsed().as_secs_f64(), m)
}

fn main() {
    let iters: u32 = dise_bench::env_number("DISE_ITERS", 200_000);
    let prog = store_loop(iters);
    println!("Block decoded-trace cache ablation ({iters}-iteration store loop)\n");
    println!(
        "{:<26}{:>9}{:>12}{:>11}{:>9}{:>9}{:>8}",
        "configuration", "seconds", "instrs", "lookups", "hits", "misses", "inval"
    );
    for (label, dise) in [("plain loop", false), ("+ fig2a store production", true)] {
        let mut insns = Vec::new();
        for (tag, cache) in [("cache off", false), ("cache on", true)] {
            let (secs, m) = run_once(&prog, dise, cache);
            let b = m.block_cache_stats();
            println!(
                "{:<26}{:>9.3}{:>12}{:>11}{:>9}{:>9}{:>8}",
                format!("{label}, {tag}"),
                secs,
                m.instructions(),
                b.lookups,
                b.hits,
                b.misses,
                b.invalidations,
            );
            insns.push(m.instructions());
        }
        assert_eq!(insns[0], insns[1], "the cache must not change the instruction stream");
    }
    println!(
        "\nhits dominating misses is the point: the hot block decodes once and \
         replays from the cache every iteration, while stores into decoded \
         text or engine changes drop exactly the overlapping blocks. The \
         wall-clock win comes from the fused expansion — a production served \
         from a cached block skips the per-fetch pattern match and template \
         instantiation. On the plain loop the per-instruction decode cache \
         was already a tag check against an empty production list, so block \
         replay adds a few ns/step of cursor bookkeeping there; that is the \
         cost of the fused path being possible at all."
    );
}
