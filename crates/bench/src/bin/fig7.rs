//! Regenerates Figure 7 of the paper.

fn main() {
    let ctx = dise_bench::Experiment::default();
    println!("Figure 7: alternate DISE implementations");
    println!("(iters = {}, override with DISE_ITERS)\n", ctx.iters);
    print!("{}", dise_bench::fig7(&ctx));
}
