//! Regenerates Figure 4 of the paper.

fn main() {
    let ctx = dise_bench::Experiment::default();
    println!("Figure 4: conditional watchpoints (exec time normalised to baseline)");
    println!("(iters = {}, override with DISE_ITERS)\n", ctx.iters);
    print!("{}", dise_bench::fig4(&ctx));
}
