//! Regenerates Figure 8 of the paper.

fn main() {
    let ctx = dise_bench::Experiment::default();
    println!("Figure 8: DISE overhead with multithreading");
    println!("(iters = {}, override with DISE_ITERS)\n", ctx.iters);
    print!("{}", dise_bench::fig8(&ctx));
}
