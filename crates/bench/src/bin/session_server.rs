//! `session_server` — debug sessions as a service, on one scheduler.
//!
//! Reads a job list (grammar in [`dise_bench::server`]) from the path
//! given as the first argument, or from stdin when no argument is
//! given. Streams one line per session *as it completes*, then prints
//! the deterministic submission-order transcript under a
//! `=== session_server report ===` banner — CI extracts that tail with
//! `sed -n '/^=== /,$p'` and diffs it against a golden file, because it
//! is byte-identical for every `DISE_JOBS` and `DISE_SLICE`.
//!
//! ```text
//! $ session_server jobs.txt          # or:  session_server < jobs.txt
//! ```
//!
//! Exits with status 2 and a message on a malformed job list.

use std::io::Read;

use dise_bench::server::{parse_jobs, serve};
use dise_bench::{configured_workers, slice_from_env};

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}"))),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| fail(&format!("cannot read stdin: {e}")));
            buf
        }
    };
    let jobs = parse_jobs(&text).unwrap_or_else(|e| fail(&e));
    let workers = configured_workers();
    let slice = slice_from_env();
    println!("session_server: {} session(s), {workers} worker(s), slice {slice}", jobs.len());

    let outcome = serve(&jobs, workers, slice, |line| println!("{line}"));
    let s = outcome.stats;
    println!(
        "scheduler: slices_granted={} preemptions={} max_wait_slices={} max_in_flight={}",
        s.slices_granted, s.preemptions, s.max_wait_slices, s.max_in_flight
    );
    print!("{}", outcome.transcript);
}

fn fail(msg: &str) -> ! {
    eprintln!("session_server: {msg}");
    std::process::exit(2);
}
