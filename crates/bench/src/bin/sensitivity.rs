//! Regenerates the transition-cost sensitivity table (beyond the
//! paper's figures): WARM1 overheads under the paper's modeled 100K
//! and measured 290K (gdb) / 513K (Visual Studio) spurious-transition
//! round trips, one functional pass per (kernel, backend) row.

fn main() {
    let ctx = dise_bench::Experiment::default();
    println!("Transition-cost sensitivity: WARM1 under 100K/290K/513K-cycle round trips");
    println!("(iters = {}, override with DISE_ITERS)\n", ctx.iters);
    print!("{}", dise_bench::sensitivity(&ctx));
}
