//! Copy-on-write checkpoint/fork ablation: what forking a warmed
//! machine costs, how much of the image stays shared over a debugging
//! session, and what the one-load-plus-K-forks economy saves on a
//! perturbing grid group compared with re-assembling and re-loading the
//! image per engine configuration (`DISE_COW_FORK=0`'s shape). The
//! outputs are byte-identical either way (the determinism, conformance
//! and property suites prove that); this harness shows the counters and
//! the wall-clock deltas, honestly — on small kernels the assembly and
//! load being amortised are themselves small, so the relative win
//! tracks image size, not simulation length.

use std::time::Instant;

use dise_cpu::{CpuConfig, Executor};
use dise_debug::{
    checkpoint_forks, image_loads, run_perturbing_group, run_session_batch, BackendKind,
};
use dise_mem::PAGE_SIZE;
use dise_workloads::{all, transition_cost_sweep, WatchKind};

fn main() {
    let iters: u32 = dise_bench::env_number("DISE_ITERS", 2_000);
    let workloads = all(iters);

    // 1. Fork latency and page sharing, per kernel: load the image,
    //    fork a child, drive the child to completion, and report what
    //    the copy-on-write page table did. `pages_copied +
    //    shared_pages == pages_shared` holds throughout because the
    //    parent never writes.
    println!("Copy-on-write fork ablation ({iters}-iteration kernels)\n");
    println!(
        "{:<14}{:>12}{:>12}{:>9}{:>9}{:>9}{:>10}",
        "kernel", "fork ns", "resident B", "pages", "shared", "copied", "instrs"
    );
    for w in &workloads {
        let prog = w.app().program().expect("kernel assembles");
        let mut parent = Executor::from_program(&prog, CpuConfig::default());
        // Median-ish fork latency over enough forks to defeat timer
        // granularity; children are dropped unused, so this is the pure
        // O(page-table) capture cost.
        let reps = 1_000;
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(parent.fork());
        }
        let fork_ns = t.elapsed().as_nanos() as f64 / f64::from(reps);
        let resident = parent.mem().resident_bytes();
        let mut child = parent.fork();
        while !child.is_halted() {
            child.step();
        }
        let cow = child.mem().cow_stats();
        assert_eq!(
            cow.pages_copied as usize + child.mem().shared_pages(),
            cow.pages_shared as usize,
            "with an idle parent, every starting page is still shared or was copied once"
        );
        println!(
            "{:<14}{:>12.0}{:>12}{:>9}{:>9}{:>9}{:>10}",
            w.name(),
            fork_ns,
            resident,
            resident / PAGE_SIZE,
            child.mem().shared_pages(),
            cow.pages_copied,
            child.instructions(),
        );
    }

    // 2. The grid economy: K engine-capacity sub-batches (x 3 timing
    //    configs each) of one perturbing backend, run as K private
    //    batches (assemble + load per sub-batch) vs one forked group
    //    (one load, K copy-on-write forks). Same reports, fewer loads.
    let engines = [(32usize, 256usize), (16, 128), (8, 64)].map(|(p, r)| CpuConfig {
        engine: dise_engine::EngineConfig { pattern_entries: p, replacement_entries: r },
        ..CpuConfig::default()
    });
    println!(
        "\nPerturbing-group economy: {} engine configs x {} timing configs, DISE backend",
        engines.len(),
        transition_cost_sweep(CpuConfig::default()).len()
    );
    println!("{:<22}{:>10}{:>8}{:>8}{:>12}", "shape", "seconds", "loads", "forks", "cells");
    for w in &workloads {
        let wp = vec![w.watchpoint(WatchKind::Hot)];
        let batches: Vec<Vec<CpuConfig>> = engines
            .iter()
            .map(|&e| transition_cost_sweep(e).into_iter().map(|(_, c)| c).collect())
            .collect();
        let cells: usize = batches.iter().map(Vec::len).sum();

        let (l0, f0) = (image_loads(), checkpoint_forks());
        let t = Instant::now();
        let per_batch: Vec<_> = batches
            .iter()
            .map(|cpus| {
                run_session_batch(w.app(), wp.clone(), BackendKind::dise_default(), cpus)
                    .expect("kernel runs")
            })
            .collect();
        let unforked_secs = t.elapsed().as_secs_f64();
        let (unforked_loads, unforked_forks) = (image_loads() - l0, checkpoint_forks() - f0);

        let (l0, f0) = (image_loads(), checkpoint_forks());
        let t = Instant::now();
        let grouped =
            run_perturbing_group(w.app(), wp.clone(), BackendKind::dise_default(), &batches)
                .expect("kernel runs");
        let forked_secs = t.elapsed().as_secs_f64();
        let (forked_loads, forked_forks) = (image_loads() - l0, checkpoint_forks() - f0);

        for (private, shared) in per_batch.iter().zip(&grouped) {
            let shared = shared.as_ref().expect("sub-batch runs");
            assert_eq!(private, shared, "{}: fork must be invisible", w.name());
        }
        println!(
            "{:<22}{:>10.3}{:>8}{:>8}{:>12}",
            format!("{}: per-batch", w.name()),
            unforked_secs,
            unforked_loads,
            unforked_forks,
            cells
        );
        println!(
            "{:<22}{:>10.3}{:>8}{:>8}{:>12}",
            format!("{}: forked", w.name()),
            forked_secs,
            forked_loads,
            forked_forks,
            cells
        );
    }

    println!(
        "\nThe fork column is the tentpole: every engine sub-batch after the \
         first skips assembly and image loading, paying an O(page-table) \
         fork instead — microseconds against the load's linear copy. The \
         functional passes themselves are untouched (perturbing backends \
         genuinely differ per engine config), so the end-to-end delta is \
         the static work amortised, which on these calibrated kernels is \
         small next to simulation time; the counter columns, not the \
         seconds, are the honest measure of what forking removes."
    );
}
