//! Regenerates Figure 3 of the paper.

fn main() {
    let ctx = dise_bench::Experiment::default();
    println!("Figure 3: unconditional watchpoints (exec time normalised to baseline)");
    println!("(iters = {}, override with DISE_ITERS)\n", ctx.iters);
    print!("{}", dise_bench::fig3(&ctx));
}
