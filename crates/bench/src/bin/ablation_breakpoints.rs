//! Breakpoint ablation (§4.1/§4.3): the paper reports no breakpoint
//! figure because unconditional breakpoints have an "ideal" conventional
//! implementation, and conditional breakpoints "exhibit
//! cross-implementation performance trends … similar to the trends
//! exhibited by conditional watchpoints". This harness verifies both
//! claims on the calibrated kernels: trap patching vs. the two DISE
//! breakpoint implementations, unconditional and conditional (predicate
//! true on ~1/64 of hits).

use dise_cpu::CpuConfig;
use dise_debug::{run_baseline, Breakpoint, BreakpointBackend, BreakpointSession};
use dise_workloads::all;

fn main() {
    let iters: u32 = dise_bench::env_number("DISE_ITERS", 400);
    println!("Breakpoint ablation (iters = {iters})\n");
    println!(
        "{:<10}{:<14}{:>11}{:>12}{:>12}{:>9}{:>10}",
        "benchmark", "kind", "TrapPatch", "DISE cw", "DISE pc", "hits", "spurious"
    );
    for w in all(iters) {
        let prog = w.app().program().expect("kernel assembles");
        // Break on the instruction after the first statement marker —
        // inside the main loop of every kernel.
        let bp_pc = *prog.stmt_pcs.iter().min().expect("kernels have statements");
        let hot = prog.symbol("hot").expect("hot exists");
        let base = run_baseline(w.app(), CpuConfig::default()).expect("baseline runs");

        for (label, bp) in [
            ("unconditional", Breakpoint::new(bp_pc)),
            // A predicate over the HOT variable that is rarely true.
            ("cond (rare)", Breakpoint::conditional(bp_pc, hot, 3)),
        ] {
            let mut row = format!("{:<10}{:<14}", w.name(), label);
            let mut last = None;
            for backend in [
                BreakpointBackend::TrapPatch,
                BreakpointBackend::DiseCodeword,
                BreakpointBackend::DisePcPattern,
            ] {
                let r = BreakpointSession::new(w.app(), vec![bp], backend, CpuConfig::default())
                    .expect("session")
                    .run();
                row.push_str(&format!("{:>11.2}", r.overhead_vs(&base)));
                last = Some(r);
            }
            let r = last.expect("ran");
            row.push_str(&format!(
                "{:>9}{:>10}",
                r.transitions.user,
                r.transitions.spurious_total()
            ));
            println!("{row}");
        }
    }
    println!(
        "\nconditional breakpoints mirror conditional watchpoints: trap \
         patching pays a 100K-cycle round trip per false predicate, DISE \
         evaluates it in the replacement sequence."
    );
}
