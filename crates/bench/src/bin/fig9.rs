//! Regenerates Figure 9 of the paper.

fn main() {
    let ctx = dise_bench::Experiment::default();
    println!("Figure 9: cost of protecting debugger structures");
    println!("(iters = {}, override with DISE_ITERS)\n", ctx.iters);
    print!("{}", dise_bench::fig9(&ctx));
}
