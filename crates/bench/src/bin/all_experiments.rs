//! Runs every table and figure of the paper's evaluation and writes the
//! results — side by side with the paper's reference numbers and
//! expected shapes — to `EXPERIMENTS.md` (or stdout with `--stdout`).

use std::fmt::Write as _;

use dise_bench::{paper, section, Experiment};

fn main() {
    let stdout_only = std::env::args().any(|a| a == "--stdout");
    let ctx = Experiment::default();
    let mut doc = String::new();

    writeln!(doc, "# EXPERIMENTS — paper vs. measured\n").unwrap();
    writeln!(
        doc,
        "Reproduction of every table and figure of *Low-Overhead Interactive \
         Debugging via Dynamic Instrumentation with DISE* (HPCA 2005) on the \
         `dise-repro` simulator. Workload scale: {} kernel iterations \
         (`DISE_ITERS` to override). Absolute numbers differ from the paper \
         (SPEC functions ran billions of instructions on the authors' \
         SimpleScalar configuration); the comparisons below are about \
         *shape*: who wins, by what order of magnitude, and where the \
         crossovers fall.\n",
        ctx.iters
    )
    .unwrap();

    writeln!(doc, "Regenerate any single experiment with `cargo run --release -p dise-bench --bin <table1|table2|fig3..fig9>`.\n").unwrap();

    // Tables with paper references.
    let t1 = dise_bench::table1(&ctx);
    doc.push_str(&section("Table 1 — benchmark summary (measured)", &code(&t1)));
    let mut t1p =
        String::from("benchmark  function                 instructions      IPC   store density\n");
    for (b, f, i, ipc, sd) in paper::TABLE1 {
        writeln!(t1p, "{b:<10} {f:<24} {i:>12} {ipc:>8.2} {sd:>10.1}%").unwrap();
    }
    doc.push_str(&section("Table 1 — paper", &code(&t1p)));

    let t2 = dise_bench::table2(&ctx);
    doc.push_str(&section(
        "Table 2 — watchpoint write frequency per 100K stores (measured)",
        &code(&t2),
    ));
    let mut t2p =
        String::from("benchmark       HOT    WARM1    WARM2     COLD INDIRECT    RANGE\n");
    for (b, v) in paper::TABLE2 {
        write!(t2p, "{b:<10}").unwrap();
        for x in v {
            write!(t2p, " {x:>8.1}").unwrap();
        }
        t2p.push('\n');
    }
    doc.push_str(&section("Table 2 — paper", &code(&t2p)));

    // Figures.
    type Fig = fn(&Experiment) -> String;
    let figs: [(&str, Fig); 7] = [
        ("Figure 3 — unconditional watchpoints", dise_bench::fig3),
        ("Figure 4 — conditional watchpoints", dise_bench::fig4),
        ("Figure 5 — DISE vs binary rewriting (COLD)", dise_bench::fig5),
        ("Figure 6 — number of watchpoints", dise_bench::fig6),
        ("Figure 7 — alternate DISE implementations", dise_bench::fig7),
        ("Figure 8 — multithreaded DISE calls", dise_bench::fig8),
        ("Figure 9 — protecting debugger structures", dise_bench::fig9),
    ];
    for (i, (title, f)) in figs.iter().enumerate() {
        eprintln!("running {title} ...");
        let body = f(&ctx);
        doc.push_str(&section(&format!("{title} (measured)"), &code(&body)));
        let (_, note) = paper::FIGURE_NOTES[i];
        writeln!(doc, "**Paper's shape:** {note}\n").unwrap();
    }

    eprintln!("running transition-cost sensitivity ...");
    let sens = dise_bench::sensitivity(&ctx);
    doc.push_str(&section(
        "Transition-cost sensitivity — WARM1 under 100K/290K/513K-cycle round trips (measured)",
        &code(&sens),
    ));
    writeln!(
        doc,
        "**Expected shape:** the paper models a conservative 100K-cycle spurious \
         round trip but measures ~290K under gdb and ~513K under Visual Studio; \
         DISE rows are flat (no spurious transitions to charge) while the \
         virtual-memory and hardware-register rows scale with the cost. Each \
         (kernel, backend) row is one functional pass replayed through three \
         timing configurations.\n"
    )
    .unwrap();

    eprintln!("running watchpoint-set sweep ...");
    let sets = dise_bench::watchpoint_sets(&ctx);
    doc.push_str(&section(
        "Watchpoint-set sweep — HOT / WARM1+COLD / RANGE per kernel (measured)",
        &code(&sets),
    ));
    writeln!(
        doc,
        "**Expected shape:** every observing column (VirtMem, HwRegs, DISE-Cmp) \
         of one kernel — across all three watchpoint sets — is produced from a \
         single functional pass of the unmodified application; only the DISE \
         column replays per set. DISE-Cmp tracks DISE closely (no spurious \
         address transitions) while HwRegs shows `--` on RANGE (non-scalar) \
         and VirtMem pays page-sharing costs.\n"
    )
    .unwrap();

    writeln!(
        doc,
        "## Known calibration gaps\n\n\
         * Kernel HOT write frequencies sit in the 11K–31K per 100K band; the \
           paper's spread is wider (455 for gcc up to 24.8K for bzip2). The \
           HOT ordering and the silent-store property (bzip2 mostly \
           non-silent, all others ≥50% silent) are preserved, which is what \
           drives the hardware-register and DISE comparisons.\n\
         * Store densities land at 5–14% vs. the paper's 10–20%; IPCs sit in \
           the paper's band with mcf clearly memory-bound at the bottom.\n\
         * Fig. 5: our gcc kernel's loop footprint still fits the 32 KB L1I \
           even after rewriting, so its rewriting penalty is milder than the \
           paper's 2.83x; crafty and vortex show the instruction-cache \
           effect instead.\n\
         * Fig. 7: the Evaluate-Expression organisation shows less load-port \
           pain than the paper reports because the calibrated kernels are \
           lighter on load bandwidth than SPEC functions.\n"
    )
    .unwrap();

    if stdout_only {
        print!("{doc}");
    } else {
        std::fs::write("EXPERIMENTS.md", &doc).expect("write EXPERIMENTS.md");
        println!("wrote EXPERIMENTS.md ({} bytes)", doc.len());
    }
}

fn code(s: &str) -> String {
    format!("```text\n{s}```")
}
