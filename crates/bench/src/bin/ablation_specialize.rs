//! Pattern-specialization ablation (§4.2 "Pattern matching
//! optimizations"): when no watched data lives on the stack, the
//! debugger can install a second, more-specific production that expands
//! stack-pointer stores to just themselves, sparing them the watchpoint
//! sequence. This harness builds a stack-heavy synthetic application
//! (the calibrated kernels deliberately avoid `sp`) and measures the
//! saving.

use dise_asm::{parse_asm, Layout};
use dise_cpu::CpuConfig;
use dise_debug::{
    run_baseline, Application, BackendKind, DiseStrategy, Session, WatchExpr, Watchpoint,
};
use dise_isa::Width;

fn stack_heavy_app(iters: u32) -> Application {
    // Per iteration: three stack spills (callee-save style) and one
    // store to a watched global.
    let src = format!(
        "start:  la r1, g
                 lda r2, {iters}(zero)
         loop:   stq r2, -8(sp)
                 stq r1, -16(sp)
                 stq r2, -24(sp)
                 ldq r3, 0(r1)
                 addq r3, 1, r3
                 stq r3, 0(r1)
                 subq r2, 1, r2
                 bgt r2, loop
                 halt
         .data
         g: .quad 0"
    );
    Application::new(parse_asm(&src).expect("parses"), Layout::default())
}

fn main() {
    let iters: u32 = dise_bench::env_number("DISE_ITERS", 2000);
    let app = stack_heavy_app(iters);
    let g = app.program().expect("assembles").symbol("g").unwrap();
    let wp = Watchpoint::new(WatchExpr::Scalar { addr: g, width: Width::Q });
    let base = run_baseline(&app, CpuConfig::default()).expect("baseline");

    println!("Pattern specialization ablation ({iters} iterations, 3 of 4 stores to the stack)\n");
    for (label, specialize) in [("general store pattern", false), ("+ stack pass-through", true)] {
        let strategy = DiseStrategy { specialize_stack_stores: specialize, ..Default::default() };
        let r = Session::new(&app, vec![wp], BackendKind::Dise(strategy)).expect("session").run();
        println!(
            "{label:<24} overhead {:>5.2}x  ({} instructions executed)",
            r.overhead_vs(&base),
            r.run.instructions,
        );
    }
    println!(
        "\nwith the more-specific pattern installed, stack stores expand to \
         just themselves and the watchpoint sequence is spared — sound here \
         because no watched data lives on the stack."
    );
}
