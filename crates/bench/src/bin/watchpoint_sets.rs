//! Regenerates the watchpoint-set sweep (beyond the paper's figures):
//! three watchpoint sets per kernel under every observing backend plus
//! DISE — the observing cells of each kernel share one functional pass.

fn main() {
    let ctx = dise_bench::Experiment::default();
    println!("Watchpoint-set sweep: HOT / WARM1+COLD / RANGE per kernel");
    println!("(iters = {}, override with DISE_ITERS)\n", ctx.iters);
    print!("{}", dise_bench::watchpoint_sets(&ctx));
}
