//! Regenerates Figure 6 of the paper.

fn main() {
    let ctx = dise_bench::Experiment::default();
    println!("Figure 6: impact of the number of watchpoints");
    println!("(iters = {}, override with DISE_ITERS)\n", ctx.iters);
    print!("{}", dise_bench::fig6(&ctx));
}
