//! Regenerates Table 2 of the paper.

fn main() {
    let ctx = dise_bench::Experiment::default();
    println!("Table 2: watchpoint write frequency (per 100K stores)");
    println!("(iters = {}, override with DISE_ITERS)\n", ctx.iters);
    print!("{}", dise_bench::table2(&ctx));
}
