//! Cooperative-scheduler ablation: spawn a large mixed fleet of debug
//! sessions (default 1000, override with `DISE_SESSIONS`) on one
//! [`Scheduler`] and report what the multiplexer did — slices granted,
//! preemptions, the worst queue wait any session saw, and the in-flight
//! high-water mark — next to the thread-per-job shape the grid used
//! before `DISE_SCHED`.
//!
//! Honesty about the wall clock: this container is a single core, so
//! slicing 1000 sessions across it cannot finish *sooner* than running
//! them to completion one at a time — the same instructions retire
//! either way, plus preemption bookkeeping. What the scheduler buys is
//! *liveness*, and that is what the counters pin: every session makes
//! progress early (in-flight high-water ≈ fleet size, not worker
//! count), no session waits more than ~2×fleet slices for its next
//! grant, and short sessions finish long before their giant neighbours
//! instead of queueing behind them. The wall-clock column is printed so
//! the overhead of slicing is visible, not hidden.

use std::time::Instant;

use dise_cpu::CpuConfig;
use dise_debug::{BackendKind, Scheduler, SessionTask, TaskOutput};
use dise_workloads::{all, WatchKind};

fn main() {
    let sessions: usize = dise_bench::env_number("DISE_SESSIONS", 1_000);
    let workers = dise_bench::configured_workers();
    let slice = dise_bench::slice_from_env();

    // A mixed fleet: six kernels at three scales, cycling through
    // perturbing and observing backends and the paper's watchpoint
    // localities, so long and short sessions share the queue.
    let scales = [3_u32, 10, 30];
    // Each backend paired with watch localities it can implement
    // (indirect/range watchpoints are not statically addressable for
    // VM/registers, and the rewriting experiment covers scalars only).
    let scalar = &WatchKind::ALL[..4];
    let backends: [(BackendKind, &[WatchKind]); 5] = [
        (BackendKind::dise_default(), &WatchKind::ALL),
        (BackendKind::VirtualMemory, scalar),
        (BackendKind::hw4(), scalar),
        (BackendKind::DiseComparators, &WatchKind::ALL),
        (BackendKind::BinaryRewrite, scalar),
    ];
    let workloads: Vec<_> = scales.iter().map(|&it| all(it)).collect();

    println!(
        "Cooperative scheduler ablation: {sessions} sessions, {workers} worker(s), slice {slice}\n"
    );

    let sched = Scheduler::new(slice);
    let t = Instant::now();
    for i in 0..sessions {
        let w = &workloads[i % scales.len()][(i / scales.len()) % 6];
        let (backend, watches) = backends[i % backends.len()];
        let watch = watches[i % watches.len()];
        sched.spawn(SessionTask::session(
            w.app(),
            vec![w.watchpoint(watch)],
            backend,
            CpuConfig::default(),
        ));
    }
    let spawn_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let outputs = sched.drain(workers);
    let drain_s = t.elapsed().as_secs_f64();
    let stats = sched.stats();

    let mut instructions = 0_u64;
    let mut errors = 0_usize;
    for (_, out) in &outputs {
        match out {
            TaskOutput::Batch(Ok(reports)) => {
                instructions += reports.iter().map(|r| r.run.instructions).sum::<u64>();
            }
            TaskOutput::Batch(Err(_)) => errors += 1,
            other => unreachable!("fleet spawns batches of one, got {other:?}"),
        }
    }

    println!("{:<26}{:>14}", "sessions completed", stats.completed);
    println!("{:<26}{:>14}", "session errors", errors);
    println!("{:<26}{:>14}", "instructions retired", instructions);
    println!("{:<26}{:>14}", "slices granted", stats.slices_granted);
    println!("{:<26}{:>14}", "preemptions", stats.preemptions);
    println!("{:<26}{:>14}", "max wait (slices)", stats.max_wait_slices);
    println!("{:<26}{:>14}", "in-flight high-water", stats.max_in_flight);
    println!("{:<26}{:>14.1}", "spawn ms (all sessions)", spawn_ms);
    println!("{:<26}{:>14.2}", "drain s", drain_s);

    assert_eq!(stats.completed, sessions, "every spawned session must complete");
    assert_eq!(errors, 0, "the fleet only pairs backends with watch kinds they support");
    assert!(
        stats.max_wait_slices <= 2 * stats.slices_granted.max(1),
        "wait metric is bounded by the run length"
    );
    println!(
        "\nLiveness, not throughput: on one core the sliced drain retires the same\n\
         {instructions} instructions as thread-per-job plus scheduling overhead, but every\n\
         session is admitted early ({} in flight at the high-water mark) and the worst\n\
         queue wait any session saw was {} slices across {} grants.",
        stats.max_in_flight, stats.max_wait_slices, stats.slices_granted
    );
}
