//! Regenerates Figure 5 of the paper.

fn main() {
    let ctx = dise_bench::Experiment::default();
    println!("Figure 5: DISE vs binary rewriting (COLD watchpoint)");
    println!("(iters = {}, override with DISE_ITERS)\n", ctx.iters);
    print!("{}", dise_bench::fig5(&ctx));
}
