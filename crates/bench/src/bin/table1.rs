//! Regenerates Table 1 of the paper.

fn main() {
    let ctx = dise_bench::Experiment::default();
    println!("Table 1: benchmark summary");
    println!("(iters = {}, override with DISE_ITERS)\n", ctx.iters);
    print!("{}", dise_bench::table1(&ctx));
}
