//! Criterion wrappers around the paper's experiments, one benchmark per
//! table/figure, at a reduced scale so `cargo bench` exercises every
//! experiment path end-to-end. Use the `dise-bench` binaries for
//! full-scale, formatted reproductions.

use criterion::{criterion_group, criterion_main, Criterion};

use dise_bench::Experiment;
use dise_cpu::CpuConfig;

const BENCH_ITERS: u32 = 40;

fn ctx() -> Experiment {
    Experiment::new(BENCH_ITERS, CpuConfig::default())
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1", |b| b.iter(|| dise_bench::table1(&ctx())));
    g.bench_function("table2", |b| b.iter(|| dise_bench::table2(&ctx())));
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig3_unconditional", |b| b.iter(|| dise_bench::fig3(&ctx())));
    g.bench_function("fig4_conditional", |b| b.iter(|| dise_bench::fig4(&ctx())));
    g.bench_function("fig5_rewriting", |b| b.iter(|| dise_bench::fig5(&ctx())));
    g.bench_function("fig6_num_watchpoints", |b| b.iter(|| dise_bench::fig6(&ctx())));
    g.bench_function("fig7_alternate_impls", |b| b.iter(|| dise_bench::fig7(&ctx())));
    g.bench_function("fig8_multithreading", |b| b.iter(|| dise_bench::fig8(&ctx())));
    g.bench_function("fig9_protection", |b| b.iter(|| dise_bench::fig9(&ctx())));
    g.finish();
}

criterion_group!(benches, bench_tables, bench_figures);
criterion_main!(benches);
