//! Criterion microbenchmarks of the simulator's hot paths: DISE
//! expansion, cache access, branch prediction, functional execution and
//! the full timing pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use dise_asm::{parse_asm, Layout};
use dise_cpu::{CpuConfig, Executor, Machine, Predictor};
use dise_engine::{Engine, Pattern, Production, TemplateInst};
use dise_isa::{decode, encode, Instr, OpClass, Reg, Width};
use dise_mem::{Cache, CacheConfig, MemConfig, MemSystem};

fn bench_isa_codec(c: &mut Criterion) {
    let insts: Vec<Instr> = (0..64u8)
        .map(|i| Instr::Load {
            width: Width::Q,
            rd: Reg::gpr(i % 32),
            base: Reg::SP,
            disp: i as i16 * 8,
        })
        .collect();
    let words: Vec<u32> = insts.iter().map(encode).collect();
    let mut g = c.benchmark_group("isa");
    g.throughput(Throughput::Elements(insts.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| insts.iter().map(encode).fold(0u64, |a, w| a ^ w as u64))
    });
    g.bench_function("decode", |b| {
        b.iter(|| {
            words.iter().map(|w| decode(black_box(*w)).unwrap()).filter(Instr::is_load).count()
        })
    });
    g.finish();
}

fn bench_engine_expansion(c: &mut Criterion) {
    let mut engine = Engine::with_paper_config();
    engine
        .install(Production::new(
            "stores",
            Pattern::opclass(OpClass::Store),
            vec![TemplateInst::Trigger, TemplateInst::Fixed(Instr::Nop)],
        ))
        .unwrap();
    let store = Instr::Store { width: Width::Q, rs: Reg::gpr(1), base: Reg::gpr(2), disp: 8 };
    let alu = Instr::mov(Reg::gpr(1), Reg::gpr(2));
    let mut g = c.benchmark_group("engine");
    g.bench_function("expand_match", |b| {
        b.iter(|| engine.expand(black_box(0x1000), black_box(&store)))
    });
    g.bench_function("expand_miss", |b| {
        b.iter(|| engine.expand(black_box(0x1000), black_box(&alu)))
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem");
    g.bench_function("l1_hit", |b| {
        let mut cache = Cache::new(CacheConfig::L1);
        cache.access(0x1000);
        b.iter(|| cache.access(black_box(0x1000)))
    });
    g.bench_function("hierarchy_stream", |b| {
        let mut sys = MemSystem::new(MemConfig::default());
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64) & 0xf_ffff;
            sys.data_access(black_box(addr), false)
        })
    });
    g.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let mut p = Predictor::new(Default::default());
    let mut i = 0u64;
    c.bench_function("predictor/predict_update", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            p.predict_and_update(black_box(0x1000 + (i % 64) * 4), i.is_multiple_of(3))
        })
    });
}

fn countdown(n: u32) -> dise_asm::Program {
    parse_asm(&format!(
        "start: lda r1, {n}(zero)
         loop:  subq r1, 1, r1
                stq r1, 0(r2)
                bgt r1, loop
                halt"
    ))
    .unwrap()
    .assemble(Layout::default())
    .unwrap()
}

fn bench_pipeline(c: &mut Criterion) {
    let prog = countdown(2000);
    let mut g = c.benchmark_group("cpu");
    g.throughput(Throughput::Elements(2000 * 3));
    g.bench_function("functional", |b| {
        b.iter(|| {
            let mut e = Executor::from_program(&prog, CpuConfig::default());
            let mut n = 0u64;
            while !e.is_halted() {
                e.step();
                n += 1;
            }
            n
        })
    });
    g.bench_function("timed", |b| {
        b.iter(|| {
            let mut m = Machine::from_program(&prog);
            m.run().cycles
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_isa_codec, bench_engine_expansion, bench_cache, bench_predictor,
              bench_pipeline
}
criterion_main!(benches);
