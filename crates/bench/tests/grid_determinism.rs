//! The grid runner's contract with the experiments: parallel execution
//! must be invisible in the output. Tables/figures are rendered under a
//! serial pool (`workers = 1`) and a parallel pool (`workers = 8`) and
//! compared byte for byte.
//!
//! The full ten-experiment sweep simulates a few hundred sessions
//! (~3 min in the dev profile), so it is `#[ignore]`d by default and
//! run explicitly by CI (`-- --include-ignored`); a light three-
//! experiment variant keeps every `cargo test -q` on the parallel path.

use dise_bench::{
    batch_session_jobs_with, run_grid_with, run_overhead_grid_with, CellGroup, Experiment,
    SessionJob, DEFAULT_SLICE,
};
use dise_cpu::CpuConfig;
use dise_debug::{BackendKind, BaselineCache};
use dise_workloads::{all, transition_cost_sweep, WatchKind};

type Render = fn(&Experiment) -> String;

fn ctx(workers: usize) -> Experiment {
    Experiment::new(10, CpuConfig::default()).with_workers(workers)
}

fn assert_deterministic(experiments: &[(&str, Render)]) {
    let serial = ctx(1);
    let parallel = ctx(8);
    for (name, render) in experiments {
        assert_eq!(render(&serial), render(&parallel), "{name} output depends on worker count");
    }
}

fn assert_batching_invisible(experiments: &[(&str, Render)]) {
    // Worker count intentionally comes from `DISE_JOBS` (CI runs this
    // under both 1 and 4), so the batched/unbatched comparison covers
    // the serial and pooled grid paths.
    let batched = Experiment::new(10, CpuConfig::default());
    let unbatched = Experiment::new(10, CpuConfig::default()).with_batching(false);
    for (name, render) in experiments {
        assert_eq!(
            render(&batched),
            render(&unbatched),
            "{name} output depends on multi-config batching"
        );
    }
}

/// A cheap slice of the sweep, always on: one table, one per-workload
/// report grid, one session grid.
#[test]
fn light_experiments_are_deterministic_across_worker_counts() {
    assert_deterministic(&[
        ("table1", dise_bench::table1),
        ("fig9", dise_bench::fig9),
        ("baseline_table", dise_bench::baseline_table),
    ]);
}

/// Single-pass batching must be invisible in the output: the
/// experiments with batchable cells (fig8's multithreading pair shares
/// a functional pass; the sensitivity grid batches its transition
/// costs, observing backends *and* — via the watchpoint-set sweep —
/// whole watchpoint sets into one pass per kernel) render
/// byte-identically with batching disabled. Cheap enough to stay on
/// everywhere: batching itself removes the redundant functional passes
/// this test re-adds.
#[test]
fn batched_and_unbatched_experiments_are_byte_identical() {
    assert_batching_invisible(&[
        ("fig8", dise_bench::fig8),
        ("sensitivity", dise_bench::sensitivity),
        ("watchpoint_sets", dise_bench::watchpoint_sets),
    ]);
}

/// Every experiment produces identical bytes under a 1-thread and an
/// 8-thread pool (the `DISE_JOBS=1` vs `DISE_JOBS=8` acceptance bar).
#[test]
#[ignore = "simulates every figure twice (~3 min dev profile); CI runs it with --include-ignored"]
fn all_experiments_are_deterministic_across_worker_counts() {
    assert_deterministic(&[
        ("table1", dise_bench::table1),
        ("table2", dise_bench::table2),
        ("fig3", dise_bench::fig3),
        ("fig4", dise_bench::fig4),
        ("fig5", dise_bench::fig5),
        ("fig6", dise_bench::fig6),
        ("fig7", dise_bench::fig7),
        ("fig8", dise_bench::fig8),
        ("fig9", dise_bench::fig9),
        ("sensitivity", dise_bench::sensitivity),
        ("watchpoint_sets", dise_bench::watchpoint_sets),
        ("baseline_table", dise_bench::baseline_table),
    ]);
}

/// The full batched-vs-unbatched sweep over every overhead experiment
/// (tables have no session cells; they are covered by the worker-count
/// sweep above). With per-workload observer batching, fig3/fig4's
/// virtual-memory, hardware-register and DISE-comparator columns —
/// across *all six watchpoint kinds* — now share one functional pass
/// per kernel, as do the sensitivity and watchpoint-set grids' observing
/// rows — this sweep is the byte-identity bar for that sharing across
/// every table and figure.
#[test]
#[ignore = "simulates every figure twice (~3 min dev profile); CI runs it with --include-ignored"]
fn all_experiments_are_batching_invariant() {
    assert_batching_invisible(&[
        ("fig3", dise_bench::fig3),
        ("fig4", dise_bench::fig4),
        ("fig6", dise_bench::fig6),
        ("fig7", dise_bench::fig7),
        ("fig8", dise_bench::fig8),
        ("fig9", dise_bench::fig9),
        ("sensitivity", dise_bench::sensitivity),
        ("watchpoint_sets", dise_bench::watchpoint_sets),
    ]);
}

/// The copy-on-write fork contract at grid level: a perturbing sweep
/// spanning two workloads, two perturbing backends and two engine
/// capacities renders byte-identical overheads with fork grouping on
/// and off, under a serial and a pooled worker count alike. The
/// partition shape is passed explicitly so both shapes are exercised in
/// one process regardless of the `DISE_COW_FORK` environment (which CI
/// additionally sweeps over the whole suite).
#[test]
fn forked_and_unforked_grids_are_byte_identical_across_worker_counts() {
    let workloads = all(10);
    let small_engine = CpuConfig {
        engine: dise_engine::EngineConfig { pattern_entries: 8, replacement_entries: 64 },
        ..CpuConfig::default()
    };
    let mut jobs = Vec::new();
    for w in workloads.iter().take(2) {
        for backend in [BackendKind::dise_default(), BackendKind::SingleStep] {
            for engine_cpu in [CpuConfig::default(), small_engine] {
                for (_, cpu) in transition_cost_sweep(engine_cpu).into_iter().take(2) {
                    jobs.push(SessionJob::new(
                        w.clone(),
                        vec![w.watchpoint(WatchKind::Hot)],
                        backend,
                        cpu,
                    ));
                }
            }
        }
    }

    let render = |cow_fork: bool, workers: usize| -> Vec<Option<f64>> {
        let baselines = BaselineCache::new();
        let groups = batch_session_jobs_with(&jobs, cow_fork);
        let grouped = run_grid_with(&groups, workers, |g: &CellGroup| g.overheads(&baselines));
        let mut out = vec![None; jobs.len()];
        for tagged in grouped {
            for (cell, o) in tagged {
                out[cell] = o;
            }
        }
        out
    };
    let reference = render(false, 1);
    for (cow_fork, workers) in [(false, 8), (true, 1), (true, 8)] {
        assert_eq!(
            render(cow_fork, workers),
            reference,
            "cow_fork={cow_fork} workers={workers} diverged"
        );
    }
}

/// The persistent trace store's contract at grid level: a grid run cold
/// (observer groups *record* their shared passes into the store) and
/// then warm (the same groups *replay* from the store, executing zero
/// functional passes) renders byte-identical overheads — against the
/// traceless reference, across both scheduler paths (thread-per-group
/// and cooperative, at two slice budgets) and across worker counts 1
/// and 4, the DISE_SCHED × DISE_JOBS matrix CI sweeps. The knobs are
/// passed explicitly so one process pins every combination without
/// racing the environment.
#[test]
fn traced_grids_are_byte_identical_cold_and_warm() {
    let workloads = all(10);
    let mut jobs = Vec::new();
    for w in workloads.iter().take(2) {
        // Observing cells route through the store; the perturbing DISE
        // cells prove traced and untraced groups coexist in one grid.
        for backend in [
            BackendKind::VirtualMemory,
            BackendKind::hw4(),
            BackendKind::DiseComparators,
            BackendKind::dise_default(),
        ] {
            for (_, cpu) in transition_cost_sweep(CpuConfig::default()).into_iter().take(2) {
                jobs.push(SessionJob::new(
                    w.clone(),
                    vec![w.watchpoint(WatchKind::Hot)],
                    backend,
                    cpu,
                ));
            }
        }
    }

    let dir = std::env::temp_dir().join(format!("dise-grid-determinism-{}", std::process::id()));
    let baselines = BaselineCache::new();
    let reference = run_overhead_grid_with(&jobs, 1, &baselines, true, None, None);

    // Cold: first traced run records each workload's shared pass.
    let cold = run_overhead_grid_with(&jobs, 1, &baselines, true, None, Some(&dir));
    assert_eq!(cold, reference, "recording must be invisible in the output");
    let stored = std::fs::read_dir(&dir).expect("store exists").count();
    assert_eq!(stored, 2, "one trace per workload, whatever the member count");

    // Warm: every later run replays, across the scheduler × worker
    // matrix.
    for (sched, workers) in [(None, 1), (None, 4), (Some(DEFAULT_SLICE), 1), (Some(777), 4)] {
        let warm = run_overhead_grid_with(&jobs, workers, &baselines, true, sched, Some(&dir));
        assert_eq!(warm, reference, "sched={sched:?} workers={workers} warm replay diverged");
    }

    // A damaged store fails the grid loudly — it never silently
    // re-records or replays wrong bytes.
    let victim = std::fs::read_dir(&dir)
        .expect("store exists")
        .next()
        .expect("a stored trace")
        .expect("dir entry")
        .path();
    let mut bytes = std::fs::read(&victim).expect("trace readable");
    bytes[40] ^= 0x01;
    std::fs::write(&victim, &bytes).expect("rewrite");
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_overhead_grid_with(&jobs, 1, &baselines, true, None, Some(&dir))
    }))
    .expect_err("a corrupt stored trace must fail the grid, not be papered over");
    let msg = panic.downcast_ref::<String>().cloned().unwrap_or_else(|| {
        panic.downcast_ref::<&str>().map(ToString::to_string).unwrap_or_default()
    });
    assert!(msg.contains("trace"), "the panic names the trace store: {msg}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `run_grid_with(.., 1, ..)` is exactly the serial map, including for
/// real session jobs against a shared baseline cache.
#[test]
fn single_worker_matches_serial_session_runs() {
    let w = &all(25)[0];
    let cells: Vec<SessionJob> = [BackendKind::dise_default(), BackendKind::hw4()]
        .into_iter()
        .map(|b| {
            SessionJob::new(w.clone(), vec![w.watchpoint(WatchKind::Hot)], b, CpuConfig::default())
        })
        .collect();

    let baselines = BaselineCache::new();
    let pooled = run_grid_with(&cells, 1, |job| job.overhead(&baselines));
    let serial: Vec<Option<f64>> = cells.iter().map(|job| job.overhead(&baselines)).collect();
    assert_eq!(pooled, serial);
    assert_eq!(baselines.len(), 1, "one kernel, one cached baseline");
}
