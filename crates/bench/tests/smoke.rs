//! Smoke tests for the evaluation harness: run real experiments at a
//! tiny scale and assert they produce rows, so the figure/table
//! binaries cannot silently rot.

use dise_bench::{table1, Experiment};
use dise_cpu::CpuConfig;

const BENCHMARKS: [&str; 6] = ["bzip2", "crafty", "gcc", "mcf", "twolf", "vortex"];

/// A tiny-scale context, equivalent to running a binary with
/// `DISE_ITERS=25`.
fn tiny() -> Experiment {
    Experiment::new(25, CpuConfig::default())
}

/// `table1` at a tiny DISE_ITERS still emits one row per benchmark,
/// with plausible per-row content.
#[test]
fn table1_produces_rows_at_tiny_scale() {
    let ctx = tiny();
    let out = table1(&ctx);
    assert!(!out.trim().is_empty(), "table1 produced no output");
    for b in BENCHMARKS {
        let row = out
            .lines()
            .find(|l| l.starts_with(b))
            .unwrap_or_else(|| panic!("table1 lost its {b} row:\n{out}"));
        // Each row carries at least an instruction count > 0.
        let has_count =
            row.split_whitespace().any(|tok| tok.parse::<u64>().map(|n| n > 0).unwrap_or(false));
        assert!(has_count, "no instruction count in row: {row}");
    }
}

/// The real surface: the `table1` binary run as a subprocess with a
/// tiny `DISE_ITERS` honours the override and emits every row.
/// (A subprocess keeps the env override out of this multi-threaded
/// test binary.)
#[test]
fn table1_binary_honours_dise_iters_env() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_table1"))
        .env("DISE_ITERS", "25")
        .output()
        .expect("table1 binary runs");
    assert!(out.status.success(), "table1 exited with {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("iters = 25"), "DISE_ITERS override not reflected:\n{stdout}");
    for b in BENCHMARKS {
        assert!(stdout.lines().any(|l| l.starts_with(b)), "missing {b} row:\n{stdout}");
    }
}
