//! The cooperative scheduler's contract with the grid and the server:
//! multiplexing sessions as sliced [`SessionTask`] continuations must
//! be invisible in every output byte, for every worker count and every
//! slice budget — and it must buy the liveness it promises (≥1000
//! sessions concurrently in flight on one core, no session starved
//! beyond the fairness pin).

use dise_bench::server::{parse_jobs, serve};
use dise_bench::{run_overhead_grid_with, SessionJob, DEFAULT_SLICE};
use dise_cpu::CpuConfig;
use dise_debug::{BackendKind, BaselineCache, Scheduler, SessionTask};
use dise_workloads::{all, transition_cost_sweep, WatchKind};

/// A mixed grid: perturbing cells that group into copy-on-write forks
/// (transition-cost sweep per kernel), observing cells that share a
/// pass, and singleton cells — the same shapes the experiments submit.
fn mixed_cells(iters: u32) -> Vec<SessionJob> {
    let mut cells = Vec::new();
    for w in all(iters) {
        for (_, cpu) in transition_cost_sweep(CpuConfig::default()) {
            cells.push(SessionJob::new(
                w.clone(),
                vec![w.watchpoint(WatchKind::Hot)],
                BackendKind::dise_default(),
                cpu,
            ));
        }
        for backend in
            [BackendKind::VirtualMemory, BackendKind::hw4(), BackendKind::DiseComparators]
        {
            cells.push(SessionJob::new(
                w.clone(),
                vec![w.watchpoint(WatchKind::Cold)],
                backend,
                CpuConfig::default(),
            ));
        }
        cells.push(SessionJob::new(
            w.clone(),
            vec![w.watchpoint(WatchKind::Range)],
            BackendKind::dise_default(),
            CpuConfig::default(),
        ));
    }
    cells
}

/// A tiny deterministic PRNG for budget fuzzing (no external deps, no
/// wall-clock seed — failures must reproduce).
fn lcg_budgets(seed: u64, n: usize) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            1 + (state >> 33) % 4096
        })
        .collect()
}

/// The acceptance bar: the grid is byte-identical with the scheduler
/// off (`DISE_SCHED=0`'s path) and on, under serial and pooled workers,
/// batched and unbatched, for random slice budgets and the default.
#[test]
fn grid_is_identical_with_and_without_the_scheduler() {
    let cells = mixed_cells(5);
    let baselines = BaselineCache::new();
    let mut budgets = lcg_budgets(0x5EED, 3);
    budgets.push(DEFAULT_SLICE);
    budgets.push(u64::MAX);
    for batching in [false, true] {
        let reference = run_overhead_grid_with(&cells, 1, &baselines, batching, None, None);
        for workers in [1, 4] {
            let legacy = run_overhead_grid_with(&cells, workers, &baselines, batching, None, None);
            assert_eq!(
                reference, legacy,
                "pre-scheduler grid must not depend on workers (batching={batching})"
            );
            for &slice in &budgets {
                let sched = run_overhead_grid_with(
                    &cells,
                    workers,
                    &baselines,
                    batching,
                    Some(slice),
                    None,
                );
                assert_eq!(
                    reference, sched,
                    "scheduler changed the grid (batching={batching}, workers={workers}, \
                     slice={slice})"
                );
            }
        }
    }
}

/// The headline liveness claim: a thousand-session queue is *all* in
/// flight at once on a single worker — every session admitted and
/// making progress long before the first long one finishes — and the
/// fairness pin holds (no session waits more than 2×fleet slices
/// between grants).
#[test]
fn a_thousand_sessions_are_concurrently_in_flight_on_one_worker() {
    let fleet = 1_100;
    let workloads = all(2);
    let sched = Scheduler::new(64);
    for i in 0..fleet {
        let w = &workloads[i % workloads.len()];
        sched.spawn(SessionTask::session(
            w.app(),
            vec![w.watchpoint(WatchKind::Hot)],
            BackendKind::dise_default(),
            CpuConfig::default(),
        ));
    }
    let outputs = sched.drain(1);
    let stats = sched.stats();
    assert_eq!(outputs.len(), fleet);
    assert_eq!(stats.completed, fleet);
    assert!(
        stats.max_in_flight >= 1_000,
        "expected >=1000 sessions concurrently in flight, saw {}",
        stats.max_in_flight
    );
    assert!(stats.max_wait_slices <= 2 * fleet as u64, "fairness pin violated: {stats:?}");
    for (id, out) in outputs {
        let reports = out.into_batch().unwrap_or_else(|e| panic!("session {id} failed: {e}"));
        assert_eq!(reports.len(), 1, "a session task is a batch of one");
    }
}

const SERVER_JOBS: &str = include_str!("data/server_smoke.jobs");
const SERVER_GOLDEN: &str = include_str!("data/server_smoke.golden");

/// The server transcript is byte-identical for every worker count and
/// slice budget, matches the committed golden file, streams exactly one
/// line per session, and honours `after=` gating (the dependent's line
/// streams after its dependency's).
#[test]
fn server_transcript_matches_golden_for_any_workers_and_slice() {
    let jobs = parse_jobs(SERVER_JOBS).expect("committed job list parses");
    for workers in [1, 4] {
        for slice in [64, 512, DEFAULT_SLICE] {
            let streamed = std::sync::Mutex::new(Vec::new());
            let outcome = serve(&jobs, workers, slice, |line| {
                streamed.lock().unwrap().push(line.to_string())
            });
            assert_eq!(
                outcome.transcript, SERVER_GOLDEN,
                "transcript diverged from tests/data/server_smoke.golden \
                 (workers={workers}, slice={slice})"
            );
            let streamed = streamed.into_inner().unwrap();
            assert_eq!(streamed.len(), jobs.len(), "one streamed line per session");
            for (dependent, dep) in
                jobs.iter().filter_map(|j| j.after.as_ref().map(|d| (&j.name, d)))
            {
                let pos = |name: &str| {
                    streamed
                        .iter()
                        .position(|l| l.split_whitespace().nth(1) == Some(name))
                        .unwrap_or_else(|| panic!("no streamed line for {name}"))
                };
                assert!(
                    pos(dep) < pos(dependent),
                    "{dependent} streamed before its dependency {dep}"
                );
            }
        }
    }
}
