//! The acceptance bar for observer batching, argued the only way that
//! is meaningful on a single-core CI container: **execution-count
//! assertions**, not timings. `dise_debug::functional_passes()` counts
//! every driven functional pass; a grid over one workload must pay one
//! pass per *functional stream* — one shared pass for **all watchpoint
//! sets × observing backends × timing configs** of that workload, one
//! private replay per perturbing (backend, watchpoints, engine) stream
//! — not one per cell.
//!
//! The same bar extends to the copy-on-write image economy:
//! `dise_debug::image_loads()` counts every assemble-and-load of a
//! program image and `dise_debug::checkpoint_forks()` every
//! copy-on-write fork off a loaded template — a perturbing group over K
//! engine configurations must pay 1 load + K forks, not K loads.
//!
//! And to the persistent trace store: `dise_debug::trace_records()` /
//! `trace_replays()` count recordings and stored-stream replays — a
//! grid run against a warm `DISE_TRACE_DIR` must perform **zero**
//! functional passes and zero image loads, with byte-identical output.
//!
//! This file deliberately holds a single `#[test]`: the counters are
//! process-global, and sibling tests in the same binary would race the
//! deltas.

use dise_bench::{
    batch_session_jobs_with, run_overhead_grid, run_overhead_grid_with, CellGroup, SessionJob,
    DEFAULT_SLICE,
};
use dise_cpu::CpuConfig;
use dise_debug::{
    checkpoint_forks, fanout_chunks, fanout_chunks_scanned, fanout_chunks_skipped,
    functional_passes, image_loads, trace_records, trace_replays, BackendKind, BaselineCache,
    DiseStrategy,
};
use dise_workloads::{all, transition_cost_sweep, watchpoint_set_sweep, WatchKind};

#[test]
fn grids_execute_once_per_functional_stream_not_once_per_cell() {
    let w = &all(10)[0];
    let wp = vec![w.watchpoint(WatchKind::Warm1)];

    // One scenario, the paper's four standard backends plus the
    // pure-observation DISE comparators, three transition costs:
    // 15 cells.
    let mut cells = Vec::new();
    for (_, cpu) in transition_cost_sweep(CpuConfig::default()) {
        for backend in [
            BackendKind::SingleStep,
            BackendKind::VirtualMemory,
            BackendKind::hw4(),
            BackendKind::dise_default(),
            BackendKind::DiseComparators,
        ] {
            cells.push(SessionJob::new(w.clone(), wp.clone(), backend, cpu));
        }
    }
    assert_eq!(cells.len(), 15);

    // Unbatched reference: every cell replays the workload privately.
    let baselines = BaselineCache::new();
    let before = functional_passes();
    let unbatched = run_overhead_grid(&cells, 1, &baselines, false);
    assert_eq!(functional_passes() - before, 15, "unbatched: one pass per cell");

    // Batched: VM, HW and the DISE comparators share a single pass of
    // the unmodified application across all three backends and all
    // three timing configs; single-stepping and production-injecting
    // DISE each keep one private replay. 15 cells, 3 functional
    // executions — the comparator column is literally free.
    let before = functional_passes();
    let batched = run_overhead_grid(&cells, 1, &baselines, true);
    assert_eq!(
        functional_passes() - before,
        3,
        "batched: one observer pass (VM+HW+Cmp x 3 costs) + two private replays"
    );
    assert_eq!(batched, unbatched, "sharing passes must not change a single byte");

    // The tentpole: the watchpoint axis. Three watchpoint *sets* x two
    // observing backends x two timing configs = 12 cells over one
    // workload. Per-(workload, watchpoints) batching (the previous
    // lattice) would pay one pass per set — 3; the per-workload batch
    // pays exactly 1.
    let sets = watchpoint_set_sweep(w);
    assert_eq!(sets.len(), 3);
    let costs: Vec<CpuConfig> =
        transition_cost_sweep(CpuConfig::default()).into_iter().take(2).map(|(_, c)| c).collect();
    let mut observer_cells = Vec::new();
    for (_, wps) in &sets {
        for backend in [BackendKind::VirtualMemory, BackendKind::DiseComparators] {
            for cpu in &costs {
                observer_cells.push(SessionJob::new(w.clone(), wps.clone(), backend, *cpu));
            }
        }
    }
    assert_eq!(observer_cells.len(), 12);
    let before = functional_passes();
    let unbatched = run_overhead_grid(&observer_cells, 1, &baselines, false);
    assert_eq!(functional_passes() - before, 12, "unbatched watchpoint axis: one pass per cell");
    let before = functional_passes();
    let (fc0, fs0, fk0) = (fanout_chunks(), fanout_chunks_scanned(), fanout_chunks_skipped());
    let batched = run_overhead_grid(&observer_cells, 1, &baselines, true);
    assert_eq!(
        functional_passes() - before,
        1,
        "batched: ONE pass per workload across watchpoint sets x backends x timing"
    );
    assert_eq!(batched, unbatched, "the watchpoint axis must not change a single byte");

    // The chunked fan-out conservation bar: every (member, chunk) pair
    // is skipped wholesale or scanned record-by-record — never both,
    // never neither. The shared pass carries 6 members (3 watchpoint
    // sets x 2 observing backends; timing configs ride *inside* a
    // member's TimingBatch and do not multiply the fan-out).
    let (fc, fs, fk) =
        (fanout_chunks() - fc0, fanout_chunks_scanned() - fs0, fanout_chunks_skipped() - fk0);
    assert!(fc > 0, "the shared observer pass must be chunked");
    assert_eq!(fs + fk, 6 * fc, "skipped + scanned == members x chunks");

    // Solo member: the invariant in its literal per-member form,
    // `skipped + scanned == chunks`.
    let solo =
        [SessionJob::new(w.clone(), wp.clone(), BackendKind::VirtualMemory, CpuConfig::default())];
    let (fc0, fs0, fk0) = (fanout_chunks(), fanout_chunks_scanned(), fanout_chunks_skipped());
    run_overhead_grid(&solo, 1, &baselines, true);
    assert_eq!(
        (fanout_chunks_scanned() - fs0) + (fanout_chunks_skipped() - fk0),
        fanout_chunks() - fc0,
        "solo member: skipped + scanned == chunks"
    );

    // Perturbing cells are unchanged by the new axis: adding a DISE
    // cell per watchpoint set costs exactly one private replay per set
    // on top of the single observer pass (12 + 3 cells -> 1 + 3
    // passes), and an unsupported observing cell (RANGE under hardware
    // registers, in set 3) joins the group without costing anything.
    let mut mixed = observer_cells.clone();
    for (_, wps) in &sets {
        mixed.push(SessionJob::new(
            w.clone(),
            wps.clone(),
            BackendKind::dise_default(),
            CpuConfig::default(),
        ));
    }
    mixed.push(SessionJob::new(
        w.clone(),
        sets[2].1.clone(), // RANGE: hardware registers decline it
        BackendKind::hw4(),
        CpuConfig::default(),
    ));
    let before = functional_passes();
    let out = run_overhead_grid(&mixed, 1, &baselines, true);
    assert_eq!(
        functional_passes() - before,
        1 + sets.len() as u64,
        "one observer pass + one private DISE replay per watchpoint set"
    );
    assert_eq!(out[mixed.len() - 1], None, "the unsupported member renders the no-experiment bar");
    assert!(out[..observer_cells.len()].iter().all(Option::is_some));

    // The fig8 shape: two DISE cells differing only in the
    // multithreading timing knob still collapse to one pass.
    let mt = BackendKind::Dise(DiseStrategy { multithreaded_calls: true, ..Default::default() });
    let pair = [
        SessionJob::new(w.clone(), wp.clone(), BackendKind::dise_default(), CpuConfig::default()),
        SessionJob::new(w.clone(), wp.clone(), mt, CpuConfig::default()),
    ];
    let before = functional_passes();
    run_overhead_grid(&pair, 1, &baselines, true);
    assert_eq!(functional_passes() - before, 1, "timing-only DISE pair shares one pass");

    // An unsupported observer member (INDIRECT under virtual memory)
    // must not charge a pass when no member survives.
    let lone = [SessionJob::new(
        w.clone(),
        vec![w.watchpoint(WatchKind::Indirect)],
        BackendKind::VirtualMemory,
        CpuConfig::default(),
    )];
    let before = functional_passes();
    let out = run_overhead_grid(&lone, 1, &baselines, true);
    assert_eq!(out, vec![None], "the no-experiment bar");
    assert_eq!(functional_passes() - before, 0, "nothing observable, nothing executed");

    // The copy-on-write image economy. A perturbing sweep over K = 3
    // DISE engine capacities (x 2 timing configs each) can never share
    // a functional stream — every sub-batch rightly pays its own pass —
    // but it can share its *image*. The partition shape is passed
    // explicitly so the pins hold regardless of the `DISE_COW_FORK`
    // environment (CI sweeps both settings over this binary).
    let engines = [(32usize, 256usize), (16, 128), (8, 64)].map(|(p, r)| CpuConfig {
        engine: dise_engine::EngineConfig { pattern_entries: p, replacement_entries: r },
        ..CpuConfig::default()
    });
    let mut fork_cells = Vec::new();
    for engine_cpu in engines {
        for (_, cpu) in transition_cost_sweep(engine_cpu).into_iter().take(2) {
            fork_cells.push(SessionJob::new(
                w.clone(),
                wp.clone(),
                BackendKind::dise_default(),
                cpu,
            ));
        }
    }
    assert_eq!(fork_cells.len(), 6);
    let overheads_via = |groups: &[CellGroup]| {
        let mut out = vec![None; fork_cells.len()];
        for g in groups {
            for (cell, o) in g.overheads(&baselines) {
                out[cell] = o;
            }
        }
        out
    };

    let unforked_groups = batch_session_jobs_with(&fork_cells, false);
    assert_eq!(unforked_groups.len(), 3, "one private batch per engine configuration");
    let (p0, l0, f0) = (functional_passes(), image_loads(), checkpoint_forks());
    let unforked = overheads_via(&unforked_groups);
    assert_eq!(functional_passes() - p0, 3, "unforked: one pass per engine configuration");
    assert_eq!(image_loads() - l0, 3, "unforked: every engine configuration loads its own image");
    assert_eq!(checkpoint_forks() - f0, 0, "unforked: nothing forks");

    let forked_groups = batch_session_jobs_with(&fork_cells, true);
    assert_eq!(forked_groups.len(), 1, "one group, one shared image");
    let (p0, l0, f0) = (functional_passes(), image_loads(), checkpoint_forks());
    let forked = overheads_via(&forked_groups);
    assert_eq!(functional_passes() - p0, 3, "forked: still one honest pass per engine config");
    assert_eq!(image_loads() - l0, 1, "forked: ONE image load for the whole group");
    assert_eq!(checkpoint_forks() - f0, 3, "forked: one copy-on-write fork per sub-batch");
    assert_eq!(forked, unforked, "sharing the image must not change a single byte");

    // The persistent-trace economy: the 12-cell observer grid from
    // above, run through a trace store. Cold, the shared pass is
    // recorded as it executes (still exactly one pass, one load, plus
    // one trace record); warm, the grid performs **zero** functional
    // passes and zero image loads — the stream comes from the file —
    // and renders byte-identical output, under both grid paths.
    let dir = std::env::temp_dir().join(format!("dise-exec-counts-{}", std::process::id()));
    let (p0, l0, r0, y0) = (functional_passes(), image_loads(), trace_records(), trace_replays());
    let cold = run_overhead_grid_with(&observer_cells, 1, &baselines, true, None, Some(&dir));
    assert_eq!(functional_passes() - p0, 1, "cold store: recording is the one honest pass");
    assert_eq!(image_loads() - l0, 1, "cold store: recording loads the image once");
    assert_eq!(trace_records() - r0, 1, "cold store: one trace recorded for the workload");
    assert_eq!(trace_replays() - y0, 0, "cold store: nothing to replay yet");
    assert_eq!(cold, batched, "recording must not change a single byte");

    let (p0, l0, r0, y0) = (functional_passes(), image_loads(), trace_records(), trace_replays());
    let warm = run_overhead_grid_with(&observer_cells, 1, &baselines, true, None, Some(&dir));
    assert_eq!(functional_passes() - p0, 0, "warm store: ZERO functional passes");
    assert_eq!(image_loads() - l0, 0, "warm store: ZERO image loads");
    assert_eq!(trace_records() - r0, 0, "warm store: nothing re-recorded");
    assert_eq!(trace_replays() - y0, 1, "warm store: the stored stream replayed once");
    assert_eq!(warm, batched, "replaying must not change a single byte");

    let (p0, y0) = (functional_passes(), trace_replays());
    let warm_sched = run_overhead_grid_with(
        &observer_cells,
        2,
        &baselines,
        true,
        Some(DEFAULT_SLICE),
        Some(&dir),
    );
    assert_eq!(functional_passes() - p0, 0, "scheduled warm store: still zero passes");
    assert_eq!(trace_replays() - y0, 1, "scheduled warm store: still one replay");
    assert_eq!(warm_sched, batched, "the scheduled warm grid must not change a single byte");
    let _ = std::fs::remove_dir_all(&dir);
}
