//! The acceptance bar for observer batching, argued the only way that
//! is meaningful on a single-core CI container: **execution-count
//! assertions**, not timings. `dise_debug::functional_passes()` counts
//! every driven functional pass; a grid over one scenario must pay one
//! pass per *functional stream* (one shared pass for all observing
//! backends × timing configs, one private replay per perturbing
//! backend), not one per cell.
//!
//! This file deliberately holds a single `#[test]`: the counter is
//! process-global, and sibling tests in the same binary would race the
//! deltas.

use dise_bench::{run_overhead_grid, SessionJob};
use dise_cpu::CpuConfig;
use dise_debug::{functional_passes, BackendKind, BaselineCache, DiseStrategy};
use dise_workloads::{all, transition_cost_sweep, WatchKind};

#[test]
fn grids_execute_once_per_functional_stream_not_once_per_cell() {
    let w = &all(10)[0];
    let wp = vec![w.watchpoint(WatchKind::Warm1)];

    // One scenario, the paper's four standard backends, three
    // transition costs: 12 cells.
    let mut cells = Vec::new();
    for (_, cpu) in transition_cost_sweep(CpuConfig::default()) {
        for backend in [
            BackendKind::SingleStep,
            BackendKind::VirtualMemory,
            BackendKind::hw4(),
            BackendKind::dise_default(),
        ] {
            cells.push(SessionJob::new(w.clone(), wp.clone(), backend, cpu));
        }
    }
    assert_eq!(cells.len(), 12);

    // Unbatched reference: every cell replays the workload privately.
    let baselines = BaselineCache::new();
    let before = functional_passes();
    let unbatched = run_overhead_grid(&cells, 1, &baselines, false);
    assert_eq!(functional_passes() - before, 12, "unbatched: one pass per cell");

    // Batched: VM and HW share a single pass of the unmodified
    // application across both backends and all three timing configs;
    // single-stepping and DISE each keep one private replay. 12 cells,
    // 3 functional executions.
    let before = functional_passes();
    let batched = run_overhead_grid(&cells, 1, &baselines, true);
    assert_eq!(
        functional_passes() - before,
        3,
        "batched: one observer pass (VM+HW x 3 costs) + two private replays"
    );
    assert_eq!(batched, unbatched, "sharing passes must not change a single byte");

    // The fig8 shape: two DISE cells differing only in the
    // multithreading timing knob still collapse to one pass.
    let mt = BackendKind::Dise(DiseStrategy { multithreaded_calls: true, ..Default::default() });
    let pair = [
        SessionJob::new(w.clone(), wp.clone(), BackendKind::dise_default(), CpuConfig::default()),
        SessionJob::new(w.clone(), wp.clone(), mt, CpuConfig::default()),
    ];
    let before = functional_passes();
    run_overhead_grid(&pair, 1, &baselines, true);
    assert_eq!(functional_passes() - before, 1, "timing-only DISE pair shares one pass");

    // An unsupported observer member (INDIRECT under virtual memory)
    // must not charge a pass when no member survives.
    let lone = [SessionJob::new(
        w.clone(),
        vec![w.watchpoint(WatchKind::Indirect)],
        BackendKind::VirtualMemory,
        CpuConfig::default(),
    )];
    let before = functional_passes();
    let out = run_overhead_grid(&lone, 1, &baselines, true);
    assert_eq!(out, vec![None], "the no-experiment bar");
    assert_eq!(functional_passes() - before, 0, "nothing observable, nothing executed");
}
