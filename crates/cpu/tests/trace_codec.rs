//! The trace codec against the real machine: a tight-loop kernel's
//! recorded bytes are pinned to a golden fixture (any codec or format
//! change must be a conscious, reviewed decision — it invalidates every
//! stored trace), and timing replay from a trace is proven equal to the
//! live machine.
//!
//! Regenerate the fixture after a *deliberate* format change with:
//!
//! ```text
//! DISE_BLESS_TRACE=1 cargo test -p dise-cpu --test trace_codec
//! ```

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dise_asm::{parse_asm, Layout, Program};
use dise_cpu::{
    program_fingerprint, replay_timing, CpuConfig, ExecChunk, Executor, Machine, TraceReader,
    TraceWriter,
};

/// The known tight-loop stream the fixture pins: a counted store loop,
/// the shape the RLE + delta codec is built for.
const TIGHT_LOOP: &str = "
    start:  la r1, hot
            lda r4, 2000(zero)
    loop:   stq r4, 0(r1)
            subq r4, 1, r4
            bgt r4, loop
            halt
    .data
    hot:    .quad 0
";

fn tight_loop() -> Program {
    parse_asm(TIGHT_LOOP).expect("parses").assemble(Layout::default()).expect("assembles")
}

fn scratch(name: &str) -> PathBuf {
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!("dise-trace-codec-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(format!("{}-{name}", UNIQUE.fetch_add(1, Ordering::Relaxed)))
}

/// Record `prog`'s full functional stream to `path`, returning the
/// stats.
fn record(prog: &Program, path: &std::path::Path) -> dise_cpu::TraceStats {
    let mut writer = TraceWriter::create(path, program_fingerprint(prog)).expect("create");
    let mut exec = Executor::from_program(prog, CpuConfig::default());
    while !exec.is_halted() {
        writer.record(&exec.step());
    }
    writer.finish().expect("finish")
}

#[test]
fn tight_loop_encoding_matches_the_golden_fixture() {
    let fixture: &[u8] = include_bytes!("data/tight_loop.dtrc");
    let prog = tight_loop();
    let path = scratch("tight_loop.dtrc");
    record(&prog, &path);
    let fresh = std::fs::read(&path).expect("recorded trace");
    if std::env::var_os("DISE_BLESS_TRACE").is_some() {
        let dest = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/tight_loop.dtrc");
        std::fs::write(&dest, &fresh).expect("bless fixture");
        return;
    }
    assert_eq!(
        fresh, fixture,
        "the on-disk trace encoding changed; if deliberate, bump the format version \
         and re-bless with DISE_BLESS_TRACE=1"
    );
}

#[test]
fn golden_fixture_replays_bit_identically_to_the_live_stream() {
    // Decode the *committed* fixture (not a fresh recording) against a
    // live machine: proves stored traces survive codec refactors.
    let fixture: &[u8] = include_bytes!("data/tight_loop.dtrc");
    let path = scratch("fixture_copy.dtrc");
    std::fs::write(&path, fixture).expect("write fixture copy");
    let prog = tight_loop();
    let mut reader =
        TraceReader::open(&path, Some(program_fingerprint(&prog))).expect("valid fixture");
    let mut exec = Executor::from_program(&prog, CpuConfig::default());
    let mut n = 0u64;
    while !exec.is_halted() {
        let live = exec.step();
        let replayed = reader.next().expect("decodes").expect("stream long enough");
        assert_eq!(live, replayed, "record {n} diverged");
        n += 1;
    }
    assert_eq!(reader.next().expect("clean end"), None, "trace must end with the stream");
    assert_eq!(reader.records(), n);
}

#[test]
fn tight_loop_compresses_at_least_ten_fold() {
    let prog = tight_loop();
    let path = scratch("ratio.dtrc");
    let stats = record(&prog, &path);
    assert!(
        stats.compression() >= 10.0,
        "tight loop must compress ≥10× vs in-memory records, got {:.1}× \
         ({} records, {} file bytes)",
        stats.compression(),
        stats.records,
        stats.file_bytes
    );
}

#[test]
fn timing_replay_from_trace_equals_the_live_machine() {
    let prog = tight_loop();
    let path = scratch("timing.dtrc");
    record(&prog, &path);

    let cheap = CpuConfig { debugger_transition_cost: 5, ..CpuConfig::default() };
    let live_default = Machine::from_program(&prog).run();
    let live_cheap = Machine::with_config(&prog, cheap).run();

    let mut reader =
        TraceReader::open(&path, Some(program_fingerprint(&prog))).expect("valid trace");
    let replayed = replay_timing(&mut reader, &[CpuConfig::default(), cheap]).expect("replays");
    assert_eq!(replayed, vec![live_default, live_cheap], "timing from trace must be exact");
}

/// Chunked decode is per-record decode with buffering: `next_chunk`
/// delivers the identical stream, end-of-stream is idempotent, and —
/// the scratch-buffer contract — one warm chunk serves the entire
/// replay without its allocation ever growing.
#[test]
fn chunked_decode_matches_per_record_decode_with_a_stable_buffer() {
    let prog = tight_loop();
    let path = scratch("chunked.dtrc");
    record(&prog, &path);

    let mut scalar =
        TraceReader::open(&path, Some(program_fingerprint(&prog))).expect("valid trace");
    let mut chunked =
        TraceReader::open(&path, Some(program_fingerprint(&prog))).expect("valid trace");
    let mut chunk = ExecChunk::with_capacity(64);
    // Warm-up: the first fill reserves the buffer once.
    let (read, dirty) = chunked.next_chunk(&mut chunk, u64::MAX, |_| false).expect("decodes");
    assert_eq!(read, 64, "first fill is a whole chunk");
    assert!(dirty.is_none());
    let warm = chunk.buffer_capacity();
    let mut total = 0u64;
    loop {
        for e in chunk.records() {
            assert_eq!(Some(*e), scalar.next().expect("decodes"), "record {total}");
            total += 1;
        }
        chunk.clear();
        assert_eq!(chunk.buffer_capacity(), warm, "no growth after warm-up");
        let (read, dirty) = chunked.next_chunk(&mut chunk, u64::MAX, |_| false).expect("decodes");
        assert!(dirty.is_none());
        if read == 0 {
            break;
        }
    }
    assert_eq!(scalar.next().expect("clean end"), None);
    assert_eq!(total, chunked.records());
    // End of stream is idempotent for the chunked path too.
    let (read, _) = chunked.next_chunk(&mut chunk, u64::MAX, |_| false).expect("idempotent end");
    assert_eq!(read, 0);
}

#[test]
fn stale_trace_is_rejected_by_fingerprint() {
    let prog = tight_loop();
    let path = scratch("stale.dtrc");
    record(&prog, &path);
    let other =
        parse_asm("start: halt\n").expect("parses").assemble(Layout::default()).expect("assembles");
    let err = TraceReader::open(&path, Some(program_fingerprint(&other)))
        .err()
        .expect("stale trace must be rejected");
    assert!(
        matches!(err, dise_trace::TraceError::FingerprintMismatch { .. }),
        "wrong variant: {err:?}"
    );
}
