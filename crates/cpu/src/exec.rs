//! The functional half of the machine: architectural state, DISE
//! replacement context, and per-instruction execution records.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

use dise_asm::Program;
use dise_engine::Engine;
use dise_isa::{decode, Instr, Reg, INSTR_BYTES};
use dise_mem::Memory;

use crate::CpuConfig;

/// Size of the physical register file (32 GPRs + 16 DISE registers).
pub const NUM_REGS: usize = Reg::NUM;

/// Why the pipeline must be flushed after an instruction.
///
/// All of these are implemented with the mis-prediction recovery
/// mechanism (§3 "DISE control flow"), so they share the refill cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlushKind {
    /// A taken DISE branch (`d_beq`/`d_bne`): replacement sequences are
    /// expanded in full with DISE control transfers predicted not-taken.
    DiseBranch,
    /// A (taken) DISE call into a debugger-generated function.
    DiseCall,
    /// A `d_ret` back into the replacement sequence.
    DiseRet,
    /// A taken *conventional* control transfer inside a replacement
    /// sequence (to `⟨newPC:0⟩`), e.g. Fig. 2f's branch to the error
    /// handler. Not fetched, so not predicted, so it always flushes.
    ReplacementBranch,
}

/// Control-transfer classification, for the branch predictor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BranchKind {
    /// Conditional direct branch: direction predicted.
    Conditional,
    /// Unconditional direct branch or call: statically determined, never
    /// mispredicts (beyond BTB compulsory effects we do not model).
    Direct,
    /// Indirect jump through a register: target predicted by the BTB.
    Indirect,
    /// Call (direct or indirect, with link): pushes the RAS.
    Call,
    /// Return (`jmp (ra)` without link): target predicted by the RAS.
    Return,
}

/// A resolved control transfer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Branch {
    /// Classification for prediction.
    pub kind: BranchKind,
    /// Whether it was taken.
    pub taken: bool,
    /// The resolved target (next PC when taken).
    pub target: u64,
}

/// A resolved memory access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemOp {
    /// Effective byte address.
    pub addr: u64,
    /// Access width in bytes.
    pub width: u64,
    /// True for stores.
    pub is_store: bool,
    /// For stores, the value previously in memory (silent-store
    /// detection); for loads, the value loaded.
    pub old_value: u64,
    /// For stores, the value written; for loads, equals `old_value`.
    pub new_value: u64,
}

impl MemOp {
    /// A store that overwrote a value with the same value
    /// ("silent store" — the common source of spurious *value*
    /// transitions, §2).
    pub fn is_silent_store(&self) -> bool {
        self.is_store && self.old_value == self.new_value
    }
}

/// Functional execution errors (all terminal).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// The PC pointed at an undecodable word.
    BadInstruction(u64),
    /// Conventionally fetched code used a DISE-only instruction or named
    /// a DISE register (the OS/controller protection of §3).
    DiseProtection(u64),
    /// `d_ret` executed with no DISE call outstanding.
    StrayDiseReturn(u64),
    /// A DISE branch left its replacement sequence.
    DiseBranchOutOfSequence(u64),
    /// Nested DISE call (DISE is disabled inside called functions;
    /// a second call cannot occur, so this flags a malformed handler).
    NestedDiseCall(u64),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BadInstruction(pc) => write!(f, "undecodable instruction at {pc:#x}"),
            ExecError::DiseProtection(pc) => {
                write!(f, "DISE-only resource used by conventional code at {pc:#x}")
            }
            ExecError::StrayDiseReturn(pc) => write!(f, "d_ret without DISE call at {pc:#x}"),
            ExecError::DiseBranchOutOfSequence(pc) => {
                write!(f, "DISE branch left its replacement sequence at {pc:#x}")
            }
            ExecError::NestedDiseCall(pc) => write!(f, "nested DISE call at {pc:#x}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The error [`Executor::fork_with_config`] returns when handed a
/// template that has already run: a mid-run machine's replacement
/// context and caches are tied to its own engine capacities and cannot
/// be re-capacitied, so sharing it cross-configuration would corrupt
/// the child. Callers that want a mid-run twin use [`Executor::fork`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ForkConfigError {
    /// Dynamic instructions the would-be template had already retired.
    pub instructions: u64,
}

impl fmt::Display for ForkConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fork_with_config shares pre-run templates only, but the parent has retired {} \
             instructions (use fork() for mid-run, same-configuration twins)",
            self.instructions
        )
    }
}

impl std::error::Error for ForkConfigError {}

/// Notable outcomes of one instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Event {
    /// `trap` (or a satisfied `ctrap`): control should pass to the
    /// debugger. The driver decides whether the transition is spurious.
    Trap,
    /// A store hit a write-protected page (virtual-memory watchpoints).
    /// The store is performed after the fault is recorded, as the
    /// debugger would re-execute it.
    ProtFault {
        /// The faulting address.
        addr: u64,
    },
    /// `halt` retired; the machine stops.
    Halted,
    /// A terminal execution error.
    Error(ExecError),
}

/// The record of one executed instruction — everything the timing model
/// and the debugger backends need to know.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Exec {
    /// PC of the instruction (for replacement instructions, the PC of
    /// their trigger).
    pub pc: u64,
    /// DISEPC: 0 for unexpanded instructions, else the 1-based index
    /// within the replacement sequence.
    pub disepc: u16,
    /// Executed inside a DISE-called function.
    pub in_dise_call: bool,
    /// The instruction.
    pub instr: Instr,
    /// True if this instruction came through fetch (consumes fetch
    /// bandwidth and I-cache); replacement instructions are generated at
    /// decode instead.
    pub fetched: bool,
    /// Control transfer, if any.
    pub branch: Option<Branch>,
    /// Memory access, if any.
    pub mem: Option<MemOp>,
    /// Pipeline flush caused by DISE mechanics, if any.
    pub flush: Option<FlushKind>,
    /// Debugger-visible event, if any.
    pub event: Option<Event>,
}

/// The fixed-capacity chunk size for slice-based `Exec` fan-out,
/// from `DISE_CHUNK` (default 64, aligned with the decoded-trace
/// block-cache boundary [`MAX_BLOCK_STEPS`]). Consumers read it once
/// per run, so a test can vary it between runs with `set_var`.
///
/// # Panics
///
/// Panics on `DISE_CHUNK=0` (a chunk must hold at least one record)
/// or an unparsable value — the loud-on-typo contract of `dise-env`.
pub fn chunk_capacity_from_env() -> usize {
    let cap: usize = dise_env::env_number("DISE_CHUNK", MAX_BLOCK_STEPS);
    assert!(cap >= 1, "DISE_CHUNK must be at least 1, got {cap}");
    cap
}

/// A cheap digest of one chunk's records, maintained incrementally by
/// [`ExecChunk::push`]: the union of store footprints (min/max byte
/// interval plus a 64-bit page-occupancy mask) and whether any record
/// carries a debugger-visible event. A consumer whose watched
/// intervals cannot intersect the summary — and sees no event flag —
/// knows without looking at a single record that no store in the chunk
/// touched anything it watches.
///
/// The summary is conservative by construction: the min/max interval
/// and the page mask both over-approximate the true footprint union,
/// so a miss proves absence while a hit only licenses a scan.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChunkSummary {
    /// Lowest byte address any store in the chunk touched
    /// (`u64::MAX` when the chunk holds no stores).
    store_lo: u64,
    /// One past the highest byte address any store touched (0 when the
    /// chunk holds no stores).
    store_hi: u64,
    /// Bloom mask of touched pages: bit `(addr / PAGE_SIZE) % 64` is
    /// set for every page some store wrote.
    page_mask: u64,
    /// Some record carries an [`Event`] (trap, protection fault, halt,
    /// or error).
    any_event: bool,
    /// Some record carries [`Event::Trap`].
    any_trap: bool,
    /// Some record carries [`Event::ProtFault`].
    any_prot_fault: bool,
}

impl ChunkSummary {
    /// The summary of zero records.
    pub fn empty() -> ChunkSummary {
        ChunkSummary {
            store_lo: u64::MAX,
            store_hi: 0,
            page_mask: 0,
            any_event: false,
            any_trap: false,
            any_prot_fault: false,
        }
    }

    /// Fold one record into the summary.
    fn note(&mut self, e: &Exec) {
        if let Some(ev) = e.event {
            self.any_event = true;
            self.any_trap |= matches!(ev, Event::Trap);
            self.any_prot_fault |= matches!(ev, Event::ProtFault { .. });
        }
        if let Some(m) = e.mem {
            if m.is_store {
                let width = m.width.max(1);
                let end = m.addr.saturating_add(width);
                self.store_lo = self.store_lo.min(m.addr);
                self.store_hi = self.store_hi.max(end);
                self.page_mask |= Self::page_bits(m.addr, width);
            }
        }
    }

    /// The page-occupancy bits of a `[addr, addr + len)` footprint. An
    /// access of at most 8 bytes spans at most two pages; long
    /// intervals (range watchpoints) walk page by page and saturate to
    /// all-ones past 64 pages.
    pub fn page_bits(addr: u64, len: u64) -> u64 {
        let len = len.max(1);
        let first = addr / dise_mem::PAGE_SIZE;
        let last = addr.saturating_add(len - 1) / dise_mem::PAGE_SIZE;
        if last - first >= 63 {
            return u64::MAX;
        }
        let mut bits = 0u64;
        for page in first..=last {
            bits |= 1 << (page & 63);
        }
        bits
    }

    /// The union of the chunk's store footprints as one conservative
    /// byte interval `[lo, hi)`, or `None` when the chunk stored
    /// nothing.
    pub fn stores(&self) -> Option<(u64, u64)> {
        (self.store_hi > 0).then_some((self.store_lo, self.store_hi))
    }

    /// The page-occupancy Bloom mask of every store in the chunk.
    pub fn page_mask(&self) -> u64 {
        self.page_mask
    }

    /// True when some record carries a debugger-visible event — chunk
    /// consumers must not skip records they would otherwise classify.
    pub fn any_event(&self) -> bool {
        self.any_event
    }

    /// True when some record carries [`Event::Trap`].
    pub fn any_trap(&self) -> bool {
        self.any_trap
    }

    /// True when some record carries [`Event::ProtFault`].
    pub fn any_prot_fault(&self) -> bool {
        self.any_prot_fault
    }

    /// Could a store in the chunk have touched `[base, base + len)`?
    /// Conservative: `false` proves no store overlapped the interval;
    /// `true` means the consumer must scan the records.
    pub fn may_touch(&self, base: u64, len: u64) -> bool {
        let len = len.max(1);
        base < self.store_hi
            && self.store_lo < base.saturating_add(len)
            && self.page_mask & Self::page_bits(base, len) != 0
    }
}

/// A fixed-capacity buffer of consecutive [`Exec`] records carrying a
/// running [`ChunkSummary`] — the unit of slice-based fan-out. One
/// chunk is allocated per run ([`ExecChunk::clear`] keeps the
/// allocation), so a replay touches no per-record heap traffic.
#[derive(Clone, Debug)]
pub struct ExecChunk {
    records: Vec<Exec>,
    cap: usize,
    summary: ChunkSummary,
}

impl ExecChunk {
    /// An empty chunk holding at most `cap` records (at least one).
    pub fn with_capacity(cap: usize) -> ExecChunk {
        let cap = cap.max(1);
        ExecChunk { records: Vec::with_capacity(cap), cap, summary: ChunkSummary::empty() }
    }

    /// The fixed record capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// True when the chunk holds `capacity` records and must be flushed
    /// before another push.
    pub fn is_full(&self) -> bool {
        self.records.len() >= self.cap
    }

    /// The buffered records, in emission order.
    pub fn records(&self) -> &[Exec] {
        &self.records
    }

    /// The running summary of the buffered records.
    pub fn summary(&self) -> &ChunkSummary {
        &self.summary
    }

    /// Append a record and fold it into the summary.
    ///
    /// # Panics
    ///
    /// Panics when the chunk is full — the caller owns the flush
    /// cadence and a silent overflow would break its capacity
    /// accounting.
    pub fn push(&mut self, e: Exec) {
        assert!(!self.is_full(), "ExecChunk::push on a full chunk (capacity {})", self.cap);
        self.summary.note(&e);
        self.records.push(e);
    }

    /// Drop the records and reset the summary, keeping the allocation —
    /// the scratch buffer is reused across the whole run.
    pub fn clear(&mut self) {
        self.records.clear();
        self.summary = ChunkSummary::empty();
    }

    /// The underlying buffer's allocated capacity in records — exposed
    /// so tests can pin that a warm buffer never grows.
    pub fn buffer_capacity(&self) -> usize {
        self.records.capacity()
    }
}

/// Saved resume point for a DISE call: the replacement sequence to
/// re-enter at `⟨trigger_pc : idx⟩`.
#[derive(Clone, Debug)]
struct CallReturn {
    trigger_pc: u64,
    seq: Vec<Instr>,
    idx: usize,
}

#[derive(Clone, Debug)]
enum Mode {
    /// Conventional fetch; DISE expansion armed.
    Normal,
    /// Inside a replacement sequence: executing `seq[idx]` for the
    /// trigger at `trigger_pc`.
    Replacing { trigger_pc: u64, seq: Vec<Instr>, idx: usize },
    /// Inside a DISE-called function: conventional fetch at `pc`, DISE
    /// expansion disabled, with the replacement context saved.
    InCall { ret: CallReturn },
}

/// Number of slots in the decoded-instruction cache (power of two).
const DECODED_SLOTS: usize = 4096;

/// Maximum decoded steps per cached block.
const MAX_BLOCK_STEPS: usize = 64;

/// Granularity of the block invalidation index (power of two). A block
/// covers at most `MAX_BLOCK_STEPS * 4` bytes, so it spans at most two
/// regions.
const BLOCK_REGION_BYTES: u64 = 512;

/// Multiply-xor hasher for the PC-keyed block maps. These maps sit on
/// the per-instruction replay path, where SipHash alone would cost more
/// than the decode it replaces; PCs are word-aligned addresses, so a
/// single multiply spreads them fine.
#[derive(Default)]
struct PcHasher(u64);

impl Hasher for PcHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _: &[u8]) {
        unreachable!("PcHasher is only used with u64 keys");
    }

    fn write_u64(&mut self, v: u64) {
        let mut h = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        self.0 = h;
    }
}

type PcMap<V> = HashMap<u64, V, BuildHasherDefault<PcHasher>>;

/// One decoded step of a cached block.
#[derive(Clone, Debug)]
enum BlockStep {
    /// A conventionally decoded instruction.
    Plain { pc: u64, instr: Instr },
    /// A DISE trigger with its instantiated replacement sequence fused
    /// in at build time (always a block's last step — a trigger is an
    /// expansion boundary).
    Fused { pc: u64, seq: Vec<Instr> },
}

impl BlockStep {
    fn pc(&self) -> u64 {
        match self {
            BlockStep::Plain { pc, .. } | BlockStep::Fused { pc, .. } => *pc,
        }
    }
}

/// A decoded straight-line trace; its entry PC is the cache key.
#[derive(Clone, Debug)]
struct Block {
    /// Exclusive end of the instruction words the block decodes
    /// (`entry .. end` is the byte range store invalidation tests
    /// against).
    end: u64,
    steps: Vec<BlockStep>,
}

/// Counters for the block-level decoded-trace cache
/// ([`Executor::block_cache_stats`]).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct BlockCacheStats {
    /// Entry-PC lookups: one per block *entered*, not per replayed step
    /// (so `hits + misses == lookups` always holds).
    pub lookups: u64,
    /// Lookups served by a cached block.
    pub hits: u64,
    /// Lookups that had to (re)build a block.
    pub misses: u64,
    /// Blocks dropped by overlapping stores, code patches, or engine
    /// reconfiguration (wholesale flushes via [`Executor::mem_mut`] or
    /// [`Executor::set_block_cache`] are not counted per block).
    pub invalidations: u64,
}

/// The functional machine: register file (GPRs + DISE registers), PC,
/// memory, the DISE engine, and the replacement-sequence context.
#[derive(Clone, Debug)]
pub struct Executor {
    regs: [u64; NUM_REGS],
    pc: u64,
    mem: Memory,
    engine: Engine,
    mode: Mode,
    halted: bool,
    instructions: u64,
    /// Decoded-instruction cache: a direct-mapped, PC-tagged store of
    /// `decode()` results, so warm fetches skip the memory read and the
    /// decoder. Entries are invalidated by stores that overlap them
    /// (self-modifying code) and the whole cache is dropped whenever a
    /// caller takes [`Executor::mem_mut`] (breakpoint patching).
    decoded: Vec<Option<(u64, Instr)>>,
    decode_hits: u64,
    decode_misses: u64,
    /// Block-level decoded-trace cache layered over `decoded`: decoded
    /// straight-line runs keyed by entry PC, with DISE expansions fused
    /// in at build time. Invalidated range-wise by overlapping stores
    /// and code patches, and flushed wholesale by [`Executor::mem_mut`]
    /// and [`Executor::engine_mut`] (production changes alter what a
    /// block would fuse). The `DISE_BLOCK_CACHE` environment knob (or
    /// [`Executor::set_block_cache`]) ablates it; the `Exec` stream is
    /// byte-identical either way.
    block_cache: bool,
    /// Block arena: live blocks in `Some` slots, invalidated slots
    /// recycled through `free_blocks`. An arena rather than a map so
    /// the cursor continuation — the per-instruction hot path — is a
    /// bounds-checked index, not a hash probe.
    blocks: Vec<Option<Block>>,
    /// Entry PC → arena slot, consulted once per block *entered*.
    block_index: PcMap<u32>,
    free_blocks: Vec<u32>,
    /// Conservative byte range covered by any block ever cached since
    /// the last flush (`lo..hi`, never shrunk by invalidation), so the
    /// common store — data, nowhere near decoded text — skips block
    /// invalidation with two compares.
    block_bounds: (u64, u64),
    /// Region base → entry PCs of blocks overlapping that region, so a
    /// store invalidates by range without scanning every block. Stale
    /// entries (blocks already dropped via another region) are cleaned
    /// lazily.
    block_regions: PcMap<Vec<u64>>,
    /// Replay position: arena slot and next step of the block being
    /// executed. Validated against slot liveness and the current PC
    /// every step, so jumps, invalidations, and rebuilds simply drop
    /// it. (The PC check alone makes validation robust to slot reuse:
    /// any live step at the current PC decodes current memory.)
    cursor: Option<(u32, usize)>,
    block_stats: BlockCacheStats,
}

impl Executor {
    /// A machine with zeroed state and an empty engine.
    pub fn new(config: CpuConfig) -> Executor {
        Executor {
            regs: [0; NUM_REGS],
            pc: 0,
            mem: Memory::new(),
            engine: Engine::new(config.engine),
            mode: Mode::Normal,
            halted: false,
            instructions: 0,
            decoded: vec![None; DECODED_SLOTS],
            decode_hits: 0,
            decode_misses: 0,
            block_cache: block_cache_from_env(),
            blocks: Vec::new(),
            block_index: PcMap::default(),
            free_blocks: Vec::new(),
            block_bounds: (u64::MAX, 0),
            block_regions: PcMap::default(),
            cursor: None,
            block_stats: BlockCacheStats::default(),
        }
    }

    /// A machine with `prog` loaded, PC at its entry, and SP at its
    /// stack top.
    pub fn from_program(prog: &Program, config: CpuConfig) -> Executor {
        let mut e = Executor::new(config);
        prog.load(&mut e.mem);
        e.pc = prog.entry;
        e.regs[Reg::SP.index()] = prog.stack_top;
        e
    }

    /// Current PC.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Set the PC (debugger "jump").
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// Read a register (the zero register reads 0).
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Write a register (writes to the zero register are discarded).
    /// The debugger uses this to load DISE registers like
    /// [`Reg::DAR`].
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// The memory (for the debugger's expression evaluation).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable memory (loading, page protection).
    ///
    /// The caller may rewrite code behind the executor's back, so the
    /// decoded-instruction cache is dropped wholesale; use
    /// [`Executor::patch_code`] for single-word code patches instead.
    pub fn mem_mut(&mut self) -> &mut Memory {
        for slot in &mut self.decoded {
            *slot = None;
        }
        self.flush_blocks();
        &mut self.mem
    }

    /// Overwrite one code word (breakpoint planting/restoring),
    /// invalidating only the decoded-cache entries it overlaps — unlike
    /// [`Executor::mem_mut`], the rest of the warm cache survives.
    pub fn patch_code(&mut self, addr: u64, word: u32) {
        self.mem.write_u(addr, 4, word as u64);
        self.invalidate_decoded(addr, 4);
    }

    /// The DISE engine (production installation).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable DISE engine.
    ///
    /// Cached blocks bake in the engine's matching and instantiation
    /// decisions, so handing out mutable engine access (production
    /// installation, activation toggles) flushes them; the
    /// per-instruction decode cache is engine-independent and survives.
    pub fn engine_mut(&mut self) -> &mut Engine {
        self.flush_blocks();
        &mut self.engine
    }

    /// True once `halt` or an error has retired.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Dynamic instructions executed (including replacement
    /// instructions).
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// `(hits, misses)` of the decoded-instruction cache since
    /// construction. Replacement instructions never touch the cache
    /// (they are generated at decode, not fetched).
    pub fn decode_cache_stats(&self) -> (u64, u64) {
        (self.decode_hits, self.decode_misses)
    }

    /// Counters of the block-level decoded-trace cache since
    /// construction. All zero when the cache is disabled.
    pub fn block_cache_stats(&self) -> BlockCacheStats {
        self.block_stats
    }

    /// Whether the block-level decoded-trace cache is enabled (the
    /// `DISE_BLOCK_CACHE` environment knob, default on).
    pub fn block_cache_enabled(&self) -> bool {
        self.block_cache
    }

    /// Enable/disable the block cache (the programmatic form of the
    /// `DISE_BLOCK_CACHE` knob), dropping any cached blocks. The `Exec`
    /// stream is byte-identical in either state; only the counters and
    /// the work per step differ.
    pub fn set_block_cache(&mut self, enabled: bool) {
        self.block_cache = enabled;
        self.flush_blocks();
    }

    /// Fork a copy-on-write twin of this machine in O(page-table) time.
    ///
    /// The child is state-identical to `self` — registers, PC, DISE
    /// engine (productions and statistics), replacement context,
    /// instruction counter, and both decode caches (they describe the
    /// identical memory image and engine, so they remain valid as-is) —
    /// except that memory pages are shared copy-on-write and unshare on
    /// first write by either side. Page protections are deep-copied:
    /// the child protecting a page never protects the parent's, and
    /// vice versa. Takes `&mut self` only to account the fork in the
    /// parent's [`dise_mem::CowStats`]; no architectural state changes.
    pub fn fork(&mut self) -> Executor {
        let mem = self.mem.fork();
        let mut child = self.clone();
        child.mem = mem;
        child
    }

    /// Fork a machine that has not started running under a different
    /// configuration: copy-on-write memory, registers and PC from
    /// `self`; a fresh DISE engine with `config`'s capacities; cold
    /// caches. This is how one loaded image is shared across grid
    /// cells that disagree on [`CpuConfig::engine`] — a warmed engine
    /// or block cache would bake in the wrong capacities.
    ///
    /// # Errors
    ///
    /// Returns [`ForkConfigError`] if `self` has already executed
    /// instructions: a mid-run machine's replacement context and caches
    /// are tied to its own engine and cannot be re-capacitied. Use
    /// [`Executor::fork`] for same-configuration forks at any point of
    /// a run. (This used to be a debug-adjacent `assert!`; it is a
    /// recoverable error so misuse fails loudly on every build.)
    pub fn fork_with_config(&mut self, config: CpuConfig) -> Result<Executor, ForkConfigError> {
        if self.instructions != 0 {
            return Err(ForkConfigError { instructions: self.instructions });
        }
        let mut child = Executor::new(config);
        child.mem = self.mem.fork();
        child.regs = self.regs;
        child.pc = self.pc;
        Ok(child)
    }

    /// Snapshot the whole machine — O(page-table), not O(resident
    /// bytes), thanks to copy-on-write pages.
    pub fn checkpoint(&self) -> ExecutorCheckpoint {
        ExecutorCheckpoint { state: self.clone() }
    }

    /// Restore the machine to a checkpoint. The restored decode and
    /// block caches are the ones captured with it — they describe the
    /// restored memory image and engine exactly, so they come back
    /// revalidated rather than flushed, and re-running from the
    /// checkpoint replays the original `Exec` stream byte for byte.
    pub fn restore(&mut self, ck: &ExecutorCheckpoint) {
        *self = ck.state.clone();
    }

    #[inline]
    fn decoded_slot(pc: u64) -> usize {
        ((pc >> 2) as usize) & (DECODED_SLOTS - 1)
    }

    /// Drop cached decodes for the (≤ 3) instruction words a
    /// `width`-byte store at `addr` overlaps, plus every cached block
    /// whose decoded range the store overlaps. Both store execution and
    /// [`Executor::patch_code`] funnel through here.
    #[inline]
    fn invalidate_decoded(&mut self, addr: u64, width: u64) {
        let mut word = addr & !(INSTR_BYTES - 1);
        let last = addr.wrapping_add(width - 1) & !(INSTR_BYTES - 1);
        for _ in 0..3 {
            let slot = Self::decoded_slot(word);
            if matches!(self.decoded[slot], Some((tag, _)) if tag == word) {
                self.decoded[slot] = None;
            }
            if word == last {
                break;
            }
            word = word.wrapping_add(INSTR_BYTES);
        }
        self.invalidate_blocks(addr, width);
    }

    /// Drop every cached block whose `entry..end` range overlaps the
    /// `width`-byte store at `addr`. A patched instruction anywhere
    /// inside a block kills the whole block — replaying the untouched
    /// prefix would be correct, but the cursor's PC validation cannot
    /// distinguish a stale suffix, so invalidation is all-or-nothing
    /// per block.
    fn invalidate_blocks(&mut self, addr: u64, width: u64) {
        let end = addr.wrapping_add(width.max(1));
        if self.block_index.is_empty() || addr >= self.block_bounds.1 || end <= self.block_bounds.0
        {
            return;
        }
        let first = addr & !(BLOCK_REGION_BYTES - 1);
        let last = end.wrapping_sub(1) & !(BLOCK_REGION_BYTES - 1);
        let mut region = first;
        loop {
            if let Some(mut entries) = self.block_regions.remove(&region) {
                entries.retain(|&entry| match self.block_index.get(&entry) {
                    // Already dropped through another region.
                    None => false,
                    Some(&slot) => {
                        let b = self.blocks[slot as usize]
                            .as_ref()
                            .expect("indexed block slot is live");
                        if entry < end && addr < b.end {
                            self.blocks[slot as usize] = None;
                            self.free_blocks.push(slot);
                            self.block_index.remove(&entry);
                            self.block_stats.invalidations += 1;
                            false
                        } else {
                            true
                        }
                    }
                });
                if !entries.is_empty() {
                    self.block_regions.insert(region, entries);
                }
            }
            if region == last {
                break;
            }
            region = region.wrapping_add(BLOCK_REGION_BYTES);
        }
    }

    /// Drop all cached blocks (memory or engine changed wholesale).
    fn flush_blocks(&mut self) {
        self.blocks.clear();
        self.block_index.clear();
        self.free_blocks.clear();
        self.block_bounds = (u64::MAX, 0);
        self.block_regions.clear();
        self.cursor = None;
    }

    /// Register a block's byte range in the region index.
    fn index_block(&mut self, entry: u64, end: u64) {
        self.block_bounds.0 = self.block_bounds.0.min(entry);
        self.block_bounds.1 = self.block_bounds.1.max(end);
        let mut region = entry & !(BLOCK_REGION_BYTES - 1);
        let last = (end - 1) & !(BLOCK_REGION_BYTES - 1);
        loop {
            let list = self.block_regions.entry(region).or_default();
            if !list.contains(&entry) {
                list.push(entry);
            }
            if region == last {
                break;
            }
            region += BLOCK_REGION_BYTES;
        }
    }

    fn halt_with(&mut self, exec: &mut Exec, err: ExecError) {
        exec.event = Some(Event::Error(err));
        self.halted = true;
    }

    /// After finishing a replacement instruction at `idx`, advance the
    /// sequence or fall back to conventional fetch at `trigger_pc + 4`.
    fn advance_replacement(&mut self, trigger_pc: u64, seq: Vec<Instr>, next_idx: usize) {
        if next_idx >= seq.len() {
            self.mode = Mode::Normal;
            self.pc = trigger_pc + INSTR_BYTES;
        } else {
            self.mode = Mode::Replacing { trigger_pc, seq, idx: next_idx };
        }
    }

    /// One block-cache step in `Normal` mode: continue the block under
    /// the cursor, or look up / build a block at `pc` and execute its
    /// first step. Returns `None` when the block machinery did not
    /// handle the fetch (the word at `pc` is undecodable) — the caller
    /// falls through to the plain fetch path with no decode counted.
    fn try_block(&mut self, pc: u64) -> Option<Exec> {
        if let Some((slot, idx)) = self.cursor.take() {
            // Continuation: valid only if the slot is still live and
            // its next step sits exactly at the current PC (branches
            // out, `set_pc`, and invalidations all fail this check).
            // One arena index covers both the check and the fetch; the
            // `Plain` case — the per-instruction hot path — copies the
            // two words straight out and skips the generic replay.
            if let Some(b) = self.blocks[slot as usize].as_ref() {
                match b.steps.get(idx) {
                    Some(&BlockStep::Plain { pc: step_pc, instr }) if step_pc == pc => {
                        if idx + 1 < b.steps.len() {
                            self.cursor = Some((slot, idx + 1));
                        }
                        self.decode_hits += 1;
                        return Some(self.execute(pc, 0, false, instr, true, None));
                    }
                    Some(s @ BlockStep::Fused { .. }) if s.pc() == pc => {
                        let step = s.clone();
                        // A fused step is always a block's last; no
                        // continuation to record.
                        return Some(self.replay(step, None, true));
                    }
                    _ => {}
                }
            }
        }
        self.block_stats.lookups += 1;
        if let Some(&slot) = self.block_index.get(&pc) {
            self.block_stats.hits += 1;
            let b = self.blocks[slot as usize].as_ref().expect("indexed block slot is live");
            let step = b.steps[0].clone();
            let next = (b.steps.len() > 1).then_some((slot, 1));
            return Some(self.replay(step, next, true));
        }
        self.block_stats.misses += 1;
        let block = self.build_block(pc)?;
        self.index_block(pc, block.end);
        let step = block.steps[0].clone();
        let next = (block.steps.len() > 1).then_some(1usize);
        let slot = match self.free_blocks.pop() {
            Some(s) => {
                self.blocks[s as usize] = Some(block);
                s
            }
            None => {
                self.blocks.push(Some(block));
                (self.blocks.len() - 1) as u32
            }
        };
        self.block_index.insert(pc, slot);
        Some(self.replay(step, next.map(|i| (slot, i)), false))
    }

    /// Decode a straight-line run starting at `entry` into a block.
    /// Each word decodes through the per-instruction cache with normal
    /// hit/miss accounting. The run ends at control transfers, `halt`,
    /// `trap`, instructions that would fault under DISE protection, the
    /// first fused DISE expansion, `MAX_BLOCK_STEPS`, or an undecodable
    /// word. Returns `None` when even the first word is undecodable
    /// (the plain fetch path reports the error, uncounted, exactly as
    /// without the block cache).
    fn build_block(&mut self, entry: u64) -> Option<Block> {
        let mut steps = Vec::new();
        let mut at = entry;
        while steps.len() < MAX_BLOCK_STEPS {
            let slot = Self::decoded_slot(at);
            let instr = match self.decoded[slot] {
                Some((tag, i)) if tag == at => {
                    self.decode_hits += 1;
                    i
                }
                _ => match decode(self.mem.read_u(at, 4) as u32) {
                    Ok(i) => {
                        self.decode_misses += 1;
                        self.decoded[slot] = Some((at, i));
                        i
                    }
                    Err(_) => break,
                },
            };
            // Mirror the uncached step order: the expansion check comes
            // before execution, so a matching trigger is fused (with
            // its instantiated sequence) and ends the block.
            if let Some(seq) = self.engine.peek_expand(at, &instr) {
                steps.push(BlockStep::Fused { pc: at, seq });
                at += INSTR_BYTES;
                break;
            }
            // DISE-protected instructions are included (executing one
            // in Normal mode faults, same as uncached) but terminate
            // the run.
            let terminal = matches!(
                instr,
                Instr::Br { .. }
                    | Instr::CondBr { .. }
                    | Instr::Jmp { .. }
                    | Instr::Halt
                    | Instr::Trap
            ) || instr.is_dise_only()
                || instr.touches_dise_regs();
            steps.push(BlockStep::Plain { pc: at, instr });
            at += INSTR_BYTES;
            if terminal {
                break;
            }
        }
        if steps.is_empty() {
            return None;
        }
        Some(Block { end: at, steps })
    }

    /// Execute an already-fetched block step, leaving the cursor at
    /// `next`. `count_fetch` is false only for the step right after a
    /// build, whose decode `build_block` already accounted; replayed
    /// steps count as decode hits (the whole point of the cache).
    fn replay(&mut self, step: BlockStep, next: Option<(u32, usize)>, count_fetch: bool) -> Exec {
        self.cursor = next;
        if count_fetch {
            self.decode_hits += 1;
        }
        match step {
            BlockStep::Plain { pc, instr } => self.execute(pc, 0, false, instr, true, None),
            BlockStep::Fused { pc, seq } => {
                // The fused sequence was instantiated statistics-free at
                // build time; account for this replay so engine stats
                // match the uncached `expand` path exactly.
                self.engine.count_expansion(seq.len() as u64);
                let i = seq[0];
                self.execute(pc, 1, false, i, true, Some((pc, seq, 0)))
            }
        }
    }

    /// Execute up to `max` instructions, buffering *clean* records into
    /// `chunk` — the bulk-emission twin of [`Executor::step`] for
    /// slice-based fan-out.
    ///
    /// `dirty` is consulted once per record, in emission order, and
    /// doubles as a per-record tee hook (trace recording rides on it).
    /// A record it claims is **not** pushed; stepping stops and the
    /// record is handed back so the caller can flush the buffered clean
    /// prefix first and then dispatch the dirty record with memory
    /// exactly as of that record. Stepping also stops when the chunk
    /// fills or the machine halts.
    ///
    /// Returns `(records stepped, dirty record if any)`; the dirty
    /// record counts toward the stepped total.
    pub fn step_chunk(
        &mut self,
        chunk: &mut ExecChunk,
        max: u64,
        mut dirty: impl FnMut(&Exec) -> bool,
    ) -> (u64, Option<Exec>) {
        let mut n = 0u64;
        while n < max && !chunk.is_full() && !self.is_halted() {
            let e = self.step();
            n += 1;
            if dirty(&e) {
                return (n, Some(e));
            }
            chunk.push(e);
        }
        (n, None)
    }

    /// Execute one instruction and report what happened.
    ///
    /// # Panics
    ///
    /// Panics if called after the machine halted.
    pub fn step(&mut self) -> Exec {
        assert!(!self.halted, "step() on a halted machine");
        self.instructions += 1;

        // Select the instruction: replacement sequence, called function,
        // or conventional fetch (with expansion check).
        #[allow(clippy::type_complexity)]
        let (pc, disepc, in_call, instr, fetched, repl): (
            u64,
            u16,
            bool,
            Instr,
            bool,
            Option<(u64, Vec<Instr>, usize)>,
        );
        match std::mem::replace(&mut self.mode, Mode::Normal) {
            Mode::Replacing { trigger_pc, seq, idx } => {
                let i = seq[idx];
                pc = trigger_pc;
                disepc = (idx + 1) as u16;
                in_call = false;
                instr = i;
                fetched = false;
                repl = Some((trigger_pc, seq, idx));
            }
            m @ (Mode::Normal | Mode::InCall { .. }) => {
                pc = self.pc;
                in_call = matches!(m, Mode::InCall { .. });
                self.mode = m;
                // The decoded-trace fast path (Normal mode only: DISE
                // expansion is disabled inside called functions, and
                // handler code is short and rarely revisited).
                if self.block_cache && !in_call {
                    if let Some(exec) = self.try_block(pc) {
                        return exec;
                    }
                }
                let slot = Self::decoded_slot(pc);
                let decoded = match self.decoded[slot] {
                    Some((tag, i)) if tag == pc => {
                        self.decode_hits += 1;
                        i
                    }
                    _ => {
                        let word = self.mem.read_u(pc, 4) as u32;
                        match decode(word) {
                            Ok(i) => {
                                self.decode_misses += 1;
                                self.decoded[slot] = Some((pc, i));
                                i
                            }
                            Err(_) => {
                                let mut exec = Exec {
                                    pc,
                                    disepc: 0,
                                    in_dise_call: in_call,
                                    instr: Instr::Nop,
                                    fetched: true,
                                    branch: None,
                                    mem: None,
                                    flush: None,
                                    event: None,
                                };
                                self.halt_with(&mut exec, ExecError::BadInstruction(pc));
                                return exec;
                            }
                        }
                    }
                };
                // DISE expansion is armed only in Normal mode.
                if !in_call {
                    if let Some(seq) = self.engine.expand(pc, &decoded) {
                        // The trigger is *replaced*: begin the sequence.
                        let i = seq[0];
                        return self.execute(pc, 1, false, i, true, Some((pc, seq, 0)));
                    }
                }
                instr = decoded;
                disepc = 0;
                fetched = true;
                repl = None;
            }
        }
        self.execute(pc, disepc, in_call, instr, fetched, repl)
    }

    /// Execute `instr` in the established context.
    #[allow(clippy::too_many_lines)]
    fn execute(
        &mut self,
        pc: u64,
        disepc: u16,
        in_call: bool,
        instr: Instr,
        fetched: bool,
        repl: Option<(u64, Vec<Instr>, usize)>,
    ) -> Exec {
        let mut exec = Exec {
            pc,
            disepc,
            in_dise_call: in_call,
            instr,
            fetched,
            branch: None,
            mem: None,
            flush: None,
            event: None,
        };
        let in_replacement = repl.is_some();

        // Protection: conventional application code may not use DISE
        // resources; DISE-called functions access DISE registers only
        // through d_mfr/d_mtr.
        if !in_replacement {
            let legal_in_call = matches!(
                instr,
                Instr::DRet | Instr::DMfr { .. } | Instr::DMtr { .. } | Instr::CTrap { .. }
            );
            let allowed = in_call && legal_in_call;
            if !allowed && (instr.is_dise_only() || instr.touches_dise_regs()) {
                self.halt_with(&mut exec, ExecError::DiseProtection(pc));
                return exec;
            }
        }

        // Helper: where conventional execution resumes if no transfer.
        // (For replacement instructions the sequence index advances
        // instead; `self.pc` is only meaningful outside replacements.)
        let next_pc = self.pc + INSTR_BYTES;

        // `advance`: what to do after a non-transfer instruction.
        macro_rules! advance {
            () => {
                match repl {
                    Some((tpc, seq, idx)) => self.advance_replacement(tpc, seq, idx + 1),
                    None => self.pc = next_pc,
                }
            };
        }

        match instr {
            Instr::Nop | Instr::Codeword(_) => advance!(),
            Instr::Halt => {
                exec.event = Some(Event::Halted);
                self.halted = true;
            }
            Instr::Trap => {
                exec.event = Some(Event::Trap);
                advance!();
            }
            Instr::CTrap { cond, rs } => {
                if cond.holds(self.reg(rs)) {
                    exec.event = Some(Event::Trap);
                }
                advance!();
            }
            Instr::Alu { op, rd, ra, rb } => {
                let b = match rb {
                    dise_isa::Operand::Reg(r) => self.reg(r),
                    dise_isa::Operand::Imm(i) => i as u64,
                };
                let v = op.apply(self.reg(ra), b);
                self.set_reg(rd, v);
                advance!();
            }
            Instr::Lda { rd, base, disp } => {
                let v = self.reg(base).wrapping_add(disp as i64 as u64);
                self.set_reg(rd, v);
                advance!();
            }
            Instr::Ldah { rd, base, disp } => {
                let v = self.reg(base).wrapping_add(((disp as i64) << 14) as u64);
                self.set_reg(rd, v);
                advance!();
            }
            Instr::Load { width, rd, base, disp } => {
                let addr = self.reg(base).wrapping_add(disp as i64 as u64);
                let w = width.bytes();
                let v = self.mem.read_u(addr, w);
                self.set_reg(rd, v);
                exec.mem =
                    Some(MemOp { addr, width: w, is_store: false, old_value: v, new_value: v });
                advance!();
            }
            Instr::Store { width, rs, base, disp } => {
                let addr = self.reg(base).wrapping_add(disp as i64 as u64);
                let w = width.bytes();
                let old = self.mem.read_u(addr, w);
                let new = self.reg(rs) & width_mask(w);
                if let Err(fault) = self.mem.write_checked(addr, w, new) {
                    exec.event = Some(Event::ProtFault { addr: fault.addr });
                    // The debugger services the fault and re-executes the
                    // store on the application's behalf.
                    self.mem.write_u(addr, w, new);
                }
                self.invalidate_decoded(addr, w);
                exec.mem =
                    Some(MemOp { addr, width: w, is_store: true, old_value: old, new_value: new });
                advance!();
            }
            Instr::Br { rd, disp } => {
                let ret = pc + INSTR_BYTES;
                let target = (pc as i64 + 4 + 4 * disp as i64) as u64;
                self.set_reg(rd, ret);
                exec.branch = Some(Branch {
                    kind: if rd.is_zero() { BranchKind::Direct } else { BranchKind::Call },
                    taken: true,
                    target,
                });
                if in_replacement {
                    exec.flush = Some(FlushKind::ReplacementBranch);
                    self.mode = Mode::Normal;
                }
                self.pc = target;
            }
            Instr::CondBr { cond, rs, disp } => {
                let taken = cond.holds(self.reg(rs));
                let target = (pc as i64 + 4 + 4 * disp as i64) as u64;
                exec.branch = Some(Branch { kind: BranchKind::Conditional, taken, target });
                if taken {
                    if in_replacement {
                        exec.flush = Some(FlushKind::ReplacementBranch);
                        self.mode = Mode::Normal;
                    }
                    self.pc = target;
                } else {
                    advance!();
                }
            }
            Instr::Jmp { rd, base } => {
                let target = self.reg(base) & !3;
                let ret = pc + INSTR_BYTES;
                let kind = if !rd.is_zero() {
                    BranchKind::Call
                } else if base == Reg::RA {
                    BranchKind::Return
                } else {
                    BranchKind::Indirect
                };
                self.set_reg(rd, ret);
                exec.branch = Some(Branch { kind, taken: true, target });
                if in_replacement {
                    exec.flush = Some(FlushKind::ReplacementBranch);
                    self.mode = Mode::Normal;
                }
                self.pc = target;
            }
            Instr::DBr { cond, rs, disp } => {
                let (tpc, seq, idx) = repl.expect("DBr only in replacement");
                if cond.holds(self.reg(rs)) {
                    exec.flush = Some(FlushKind::DiseBranch);
                    let next = idx as i64 + 1 + disp as i64;
                    if next < 0 || next as usize > seq.len() {
                        self.halt_with(&mut exec, ExecError::DiseBranchOutOfSequence(pc));
                        return exec;
                    }
                    self.advance_replacement(tpc, seq, next as usize);
                } else {
                    self.advance_replacement(tpc, seq, idx + 1);
                }
            }
            Instr::DCall { target } | Instr::DCCall { target, .. } => {
                let taken = match instr {
                    Instr::DCCall { cond, rs, .. } => cond.holds(self.reg(rs)),
                    _ => true,
                };
                let (tpc, seq, idx) = repl.expect("DISE call only in replacement");
                if taken {
                    if in_call {
                        self.halt_with(&mut exec, ExecError::NestedDiseCall(pc));
                        return exec;
                    }
                    exec.flush = Some(FlushKind::DiseCall);
                    let callee = self.reg(target);
                    self.mode =
                        Mode::InCall { ret: CallReturn { trigger_pc: tpc, seq, idx: idx + 1 } };
                    self.pc = callee;
                } else {
                    self.advance_replacement(tpc, seq, idx + 1);
                }
            }
            Instr::DRet => match std::mem::replace(&mut self.mode, Mode::Normal) {
                Mode::InCall { ret } => {
                    exec.flush = Some(FlushKind::DiseRet);
                    self.advance_replacement(ret.trigger_pc, ret.seq, ret.idx);
                }
                _ => {
                    self.halt_with(&mut exec, ExecError::StrayDiseReturn(pc));
                }
            },
            Instr::DMfr { rd, dr } => {
                let v = self.reg(dr);
                self.set_reg(rd, v);
                advance!();
            }
            Instr::DMtr { dr, rs } => {
                let v = self.reg(rs);
                self.set_reg(dr, v);
                advance!();
            }
        }
        exec
    }
}

/// The `DISE_BLOCK_CACHE` ablation knob: on by default, `0`/`false`/
/// `off` disables the block-level decoded-trace cache. Anything else is
/// a loud error, matching the repo's env-knob conventions.
/// A frozen snapshot of a whole [`Executor`] — architectural state,
/// memory (pages shared copy-on-write with the live machine), DISE
/// engine, replacement context, and decode/block caches. Taking and
/// restoring one is O(page-table); see [`Executor::checkpoint`] /
/// [`Executor::restore`].
#[derive(Clone, Debug)]
pub struct ExecutorCheckpoint {
    state: Executor,
}

impl ExecutorCheckpoint {
    /// Dynamic instructions the machine had executed when captured.
    pub fn instructions(&self) -> u64 {
        self.state.instructions
    }

    /// The captured PC.
    pub fn pc(&self) -> u64 {
        self.state.pc
    }
}

fn block_cache_from_env() -> bool {
    dise_env::env_flag("DISE_BLOCK_CACHE", true)
}

#[inline]
fn width_mask(bytes: u64) -> u64 {
    if bytes == 8 {
        u64::MAX
    } else {
        (1u64 << (8 * bytes)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_asm::{parse_asm, Layout};
    use dise_engine::{Pattern, Production, TemplateInst};
    use dise_isa::Cond;
    use dise_isa::{AluOp, OpClass, Width};

    fn machine(src: &str) -> Executor {
        let prog = parse_asm(src).unwrap().assemble(Layout::default()).unwrap();
        Executor::from_program(&prog, CpuConfig::default())
    }

    fn run(e: &mut Executor, max: u64) -> Vec<Exec> {
        let mut out = Vec::new();
        let mut n = 0;
        while !e.is_halted() {
            out.push(e.step());
            n += 1;
            assert!(n < max, "did not halt in {max} steps");
        }
        out
    }

    #[test]
    fn countdown_loop_executes() {
        let mut m = machine(
            "start: lda r1, 3(zero)
             loop:  subq r1, 1, r1
                    bgt r1, loop
                    halt",
        );
        let trace = run(&mut m, 100);
        assert_eq!(m.reg(Reg::gpr(1)), 0);
        // lda + 3*(subq+bgt) + halt
        assert_eq!(trace.len(), 1 + 6 + 1);
        assert!(matches!(trace.last().unwrap().event, Some(Event::Halted)));
    }

    /// `step_chunk` is `step` with buffering: the concatenation of the
    /// pushed prefixes and handed-back dirty records reproduces the
    /// scalar stream exactly, for every chunk capacity.
    #[test]
    fn step_chunk_reproduces_the_scalar_stream() {
        let src = "start: la r1, v
                          lda r2, 5(zero)
                   loop:  stq r2, 0(r1)
                          subq r2, 1, r2
                          bgt r2, loop
                          halt
                   .data
                   v: .quad 0";
        let mut scalar = machine(src);
        let reference = run(&mut scalar, 1000);
        for cap in [1usize, 2, 3, 64] {
            let mut m = machine(src);
            let mut chunk = ExecChunk::with_capacity(cap);
            let mut stream = Vec::new();
            // Mark every third record dirty to exercise the hand-back.
            let mut i = 0u64;
            while !m.is_halted() {
                let (stepped, dirty) = m.step_chunk(&mut chunk, u64::MAX, |_| {
                    i += 1;
                    i.is_multiple_of(3)
                });
                assert!(stepped <= cap as u64);
                stream.extend_from_slice(chunk.records());
                chunk.clear();
                stream.extend(dirty);
            }
            assert_eq!(stream, reference, "capacity {cap}");
        }
    }

    /// The chunk summary is a sound over-approximation: every store's
    /// footprint and every event is covered, and `may_touch` never
    /// returns false for a genuinely overlapped interval.
    #[test]
    fn chunk_summary_covers_all_stores_and_events() {
        let mut m = machine(
            "start: la r1, v
                    lda r2, 7(zero)
                    stq r2, 0(r1)
                    stl r2, 16(r1)
                    halt
             .data
             v: .quad 0
               .quad 0
               .quad 0",
        );
        let mut chunk = ExecChunk::with_capacity(64);
        let (_, dirty) = m.step_chunk(&mut chunk, u64::MAX, |_| false);
        assert!(dirty.is_none());
        let s = *chunk.summary();
        assert!(s.any_event(), "the halt record is an event");
        assert!(!s.any_trap());
        assert!(!s.any_prot_fault());
        let (lo, hi) = s.stores().expect("two stores buffered");
        for e in chunk.records() {
            let Some(mo) = e.mem.filter(|m| m.is_store) else { continue };
            assert!(mo.addr >= lo && mo.addr + mo.width <= hi);
            assert!(s.may_touch(mo.addr, mo.width));
            assert!(s.may_touch(mo.addr + mo.width - 1, 1), "last byte covered");
        }
        assert!(!s.may_touch(0, 1), "address zero is far from the data segment");
        assert_eq!(ChunkSummary::empty().stores(), None);
        assert!(!ChunkSummary::empty().may_touch(0, u64::MAX));
    }

    /// The scratch-buffer contract: clearing keeps the allocation, so a
    /// warm chunk never grows however many fill/clear cycles it serves.
    #[test]
    fn chunk_buffer_capacity_is_stable_after_warmup() {
        let src = "start: lda r1, 200(zero)
                   loop:  subq r1, 1, r1
                          bgt r1, loop
                          halt";
        let mut m = machine(src);
        let mut chunk = ExecChunk::with_capacity(16);
        // Warm-up: one full fill.
        m.step_chunk(&mut chunk, u64::MAX, |_| false);
        let warm = chunk.buffer_capacity();
        chunk.clear();
        while !m.is_halted() {
            m.step_chunk(&mut chunk, u64::MAX, |_| false);
            assert_eq!(chunk.buffer_capacity(), warm, "no growth after warm-up");
            chunk.clear();
        }
        assert_eq!(chunk.buffer_capacity(), warm);
    }

    #[test]
    #[should_panic(expected = "full chunk")]
    fn pushing_to_a_full_chunk_panics() {
        let mut chunk = ExecChunk::with_capacity(1);
        let e = Exec {
            pc: 0,
            disepc: 0,
            in_dise_call: false,
            instr: Instr::Nop,
            fetched: true,
            branch: None,
            mem: None,
            flush: None,
            event: None,
        };
        chunk.push(e);
        chunk.push(e);
    }

    #[test]
    fn memory_round_trip_and_memop_record() {
        let mut m = machine(
            "start: la r1, v
                    ldq r2, 0(r1)
                    addq r2, 5, r2
                    stq r2, 0(r1)
                    halt
             .data
             v: .quad 37",
        );
        let trace = run(&mut m, 100);
        let store = trace.iter().find(|e| e.mem.is_some_and(|m| m.is_store)).unwrap();
        let mo = store.mem.unwrap();
        assert_eq!(mo.old_value, 37);
        assert_eq!(mo.new_value, 42);
        assert!(!mo.is_silent_store());
        let addr = mo.addr;
        assert_eq!(m.mem().read_u(addr, 8), 42);
    }

    #[test]
    fn silent_store_detected() {
        let mut m = machine(
            "start: la r1, v
                    ldq r2, 0(r1)
                    stq r2, 0(r1)
                    halt
             .data
             v: .quad 9",
        );
        let trace = run(&mut m, 100);
        let store = trace.iter().find(|e| e.mem.is_some_and(|m| m.is_store)).unwrap();
        assert!(store.mem.unwrap().is_silent_store());
    }

    #[test]
    fn calls_and_returns() {
        let mut m = machine(
            "start: bsr ra, f
                    halt
             f:     lda r5, 7(zero)
                    ret",
        );
        let trace = run(&mut m, 100);
        assert_eq!(m.reg(Reg::gpr(5)), 7);
        let kinds: Vec<_> = trace.iter().filter_map(|e| e.branch.map(|b| b.kind)).collect();
        assert_eq!(kinds, vec![BranchKind::Call, BranchKind::Return]);
    }

    #[test]
    fn trap_event_and_resume() {
        let mut m = machine("start: trap\n lda r1, 1(zero)\n halt");
        let trace = run(&mut m, 10);
        assert!(matches!(trace[0].event, Some(Event::Trap)));
        assert_eq!(m.reg(Reg::gpr(1)), 1, "execution resumed after trap");
    }

    #[test]
    fn prot_fault_reported_and_store_lands() {
        let mut m = machine(
            "start: la r1, v
                    lda r2, 9(zero)
                    stq r2, 0(r1)
                    halt
             .data
             v: .quad 1",
        );
        let v = 0x0100_0000;
        m.mem_mut().protect_page(v, true);
        let trace = run(&mut m, 100);
        let st = trace.iter().find(|e| e.mem.is_some_and(|m| m.is_store)).unwrap();
        assert!(matches!(st.event, Some(Event::ProtFault { addr }) if addr == v));
        assert_eq!(m.mem().read_u(v, 8), 9, "store performed after fault");
    }

    #[test]
    fn app_code_cannot_touch_dise_state() {
        // `d_ret` in conventional code.
        let mut m = machine("start: d_ret\n halt");
        let trace = run(&mut m, 10);
        assert!(matches!(trace[0].event, Some(Event::Error(ExecError::DiseProtection(_)))));

        // ALU naming a DISE register in conventional code.
        let mut m = machine("start: addq dr1, 1, dr1\n halt");
        let trace = run(&mut m, 10);
        assert!(matches!(trace[0].event, Some(Event::Error(ExecError::DiseProtection(_)))));
    }

    /// Install the paper's Fig. 2a naive watchpoint production.
    fn install_fig2a(m: &mut Executor) {
        let dr1 = Reg::dise(1);
        m.engine_mut()
            .install(Production::new(
                "fig2a",
                Pattern::opclass(OpClass::Store),
                vec![
                    TemplateInst::Trigger,
                    TemplateInst::Load {
                        width: Width::Q,
                        rd: dise_engine::TReg::Lit(dr1),
                        base: dise_engine::TReg::Lit(Reg::DAR),
                        disp: dise_engine::TDisp::Lit(0),
                    },
                    TemplateInst::Alu {
                        op: AluOp::CmpEq,
                        rd: dise_engine::TReg::Lit(dr1),
                        ra: dise_engine::TReg::Lit(dr1),
                        rb: dise_engine::TOperand::Reg(dise_engine::TReg::Lit(Reg::DPV)),
                    },
                    TemplateInst::Fixed(Instr::DBr { cond: Cond::Ne, rs: dr1, disp: 1 }),
                    TemplateInst::Fixed(Instr::Trap),
                ],
            ))
            .unwrap();
    }

    #[test]
    fn fig2a_expansion_traps_on_value_change() {
        let mut m = machine(
            "start: la r1, w
                    lda r2, 5(zero)
                    stq r2, 0(r1)       # changes w: should trap
                    halt
             .data
             w: .quad 0",
        );
        let w = 0x0100_0000u64;
        install_fig2a(&mut m);
        m.set_reg(Reg::DAR, w);
        m.set_reg(Reg::DPV, 0); // previous value of w
        let trace = run(&mut m, 100);
        // Expansion: store(disepc1), ldq(2), cmpeq(3), d_bne(4) not taken, trap(5)
        let expanded: Vec<_> = trace.iter().filter(|e| e.disepc > 0).collect();
        assert_eq!(expanded.len(), 5);
        assert!(expanded.iter().all(|e| e.pc == expanded[0].pc), "same trigger PC");
        assert_eq!(expanded[0].disepc, 1);
        assert!(!expanded[1].fetched, "replacement instructions are not fetched");
        assert!(matches!(expanded[4].event, Some(Event::Trap)));
        // DISE branch not taken => no flush on it.
        assert_eq!(expanded[3].flush, None);
    }

    #[test]
    fn fig2a_dise_branch_skips_trap_when_value_unchanged() {
        let mut m = machine(
            "start: la r1, w
                    lda r2, 0(zero)
                    stq r2, 0(r1)       # silent store: w stays 0
                    halt
             .data
             w: .quad 0",
        );
        install_fig2a(&mut m);
        m.set_reg(Reg::DAR, 0x0100_0000);
        m.set_reg(Reg::DPV, 0);
        let trace = run(&mut m, 100);
        assert!(
            !trace.iter().any(|e| matches!(e.event, Some(Event::Trap))),
            "no trap for unchanged value"
        );
        // The taken DISE branch must flush.
        let dbr = trace.iter().find(|e| matches!(e.instr, Instr::DBr { .. })).unwrap();
        assert_eq!(dbr.flush, Some(FlushKind::DiseBranch));
        // 4 replacement instructions executed (trap skipped).
        assert_eq!(trace.iter().filter(|e| e.disepc > 0).count(), 4);
    }

    #[test]
    fn dise_call_runs_function_and_returns() {
        // Production: store => store; d_call (dhdlr). Handler: set r9=1,
        // d_ret. After the call, execution continues after the store.
        let mut m = machine(
            "start: la r1, v
                    lda r2, 3(zero)
                    stq r2, 0(r1)
                    lda r8, 1(zero)    # runs after the expansion finishes
                    halt
             handler:
                    lda r9, 1(zero)
                    d_ret
             .data
             v: .quad 0",
        );
        let handler = {
            // Resolve label: re-assemble to find it.
            let prog = parse_asm(
                "start: la r1, v
                    lda r2, 3(zero)
                    stq r2, 0(r1)
                    lda r8, 1(zero)
                    halt
             handler:
                    lda r9, 1(zero)
                    d_ret
             .data
             v: .quad 0",
            )
            .unwrap()
            .assemble(Layout::default())
            .unwrap();
            prog.symbol("handler").unwrap()
        };
        m.engine_mut()
            .install(Production::new(
                "call",
                Pattern::opclass(OpClass::Store),
                vec![
                    TemplateInst::Trigger,
                    TemplateInst::Fixed(Instr::DCall { target: Reg::DHDLR }),
                ],
            ))
            .unwrap();
        m.set_reg(Reg::DHDLR, handler);
        let trace = run(&mut m, 100);
        assert_eq!(m.reg(Reg::gpr(9)), 1, "handler ran");
        assert_eq!(m.reg(Reg::gpr(8)), 1, "fall-through after expansion");
        assert_eq!(m.mem().read_u(0x0100_0000, 8), 3, "store retired");
        let flushes: Vec<_> = trace.iter().filter_map(|e| e.flush).collect();
        assert_eq!(flushes, vec![FlushKind::DiseCall, FlushKind::DiseRet]);
        // Handler instructions are conventional fetches inside the call.
        let in_call: Vec<_> = trace.iter().filter(|e| e.in_dise_call).collect();
        assert_eq!(in_call.len(), 2);
        assert!(in_call.iter().all(|e| e.fetched));
    }

    #[test]
    fn dise_disabled_inside_called_function() {
        // The handler itself contains a store; it must NOT re-expand.
        let src = "start: la r1, v
                    lda r2, 3(zero)
                    stq r2, 0(r1)
                    halt
             handler:
                    stq r2, 8(r1)
                    d_ret
             .data
             v: .quad 0
                .quad 0";
        let prog = parse_asm(src).unwrap().assemble(Layout::default()).unwrap();
        let handler = prog.symbol("handler").unwrap();
        let mut m = Executor::from_program(&prog, CpuConfig::default());
        m.engine_mut()
            .install(Production::new(
                "call",
                Pattern::opclass(OpClass::Store),
                vec![
                    TemplateInst::Trigger,
                    TemplateInst::Fixed(Instr::DCall { target: Reg::DHDLR }),
                ],
            ))
            .unwrap();
        m.set_reg(Reg::DHDLR, handler);
        let trace = run(&mut m, 100);
        // Exactly one DISE call, not two.
        let calls = trace.iter().filter(|e| e.flush == Some(FlushKind::DiseCall)).count();
        assert_eq!(calls, 1);
        assert_eq!(m.mem().read_u(0x0100_0008, 8), 3, "handler store executed plainly");
    }

    #[test]
    fn ctrap_fires_conditionally() {
        // ctrap in a replacement sequence (Fig. 2b): trap iff value
        // changed (cmpeq result 0).
        let dr1 = Reg::dise(1);
        let prod = Production::new(
            "fig2b",
            Pattern::opclass(OpClass::Store),
            vec![
                TemplateInst::Trigger,
                TemplateInst::Load {
                    width: Width::Q,
                    rd: dise_engine::TReg::Lit(dr1),
                    base: dise_engine::TReg::Lit(Reg::DAR),
                    disp: dise_engine::TDisp::Lit(0),
                },
                TemplateInst::Alu {
                    op: AluOp::CmpEq,
                    rd: dise_engine::TReg::Lit(dr1),
                    ra: dise_engine::TReg::Lit(dr1),
                    rb: dise_engine::TOperand::Reg(dise_engine::TReg::Lit(Reg::DPV)),
                },
                TemplateInst::Fixed(Instr::CTrap { cond: Cond::Eq, rs: dr1 }),
            ],
        );
        let mut m = machine(
            "start: la r1, w
                    lda r2, 5(zero)
                    stq r2, 0(r1)
                    halt
             .data
             w: .quad 0",
        );
        m.engine_mut().install(prod).unwrap();
        m.set_reg(Reg::DAR, 0x0100_0000);
        m.set_reg(Reg::DPV, 0);
        let trace = run(&mut m, 100);
        let traps = trace.iter().filter(|e| matches!(e.event, Some(Event::Trap))).count();
        assert_eq!(traps, 1);
        // No flush anywhere: ctrap avoids the DISE branch.
        assert!(trace.iter().all(|e| e.flush.is_none()));
    }

    #[test]
    fn decode_cache_hits_on_warm_loop() {
        let mut m = machine(
            "start: lda r1, 50(zero)
             loop:  subq r1, 1, r1
                    bgt r1, loop
                    halt",
        );
        // With the block cache off, every fetch does exactly one
        // per-instruction lookup, so hits + misses == instructions;
        // block building breaks that identity by decoding ahead.
        m.set_block_cache(false);
        run(&mut m, 200);
        let (hits, misses) = m.decode_cache_stats();
        assert_eq!(misses, 4, "each static instruction decodes once");
        assert_eq!(hits + misses, m.instructions());
        assert_eq!(m.block_cache_stats(), BlockCacheStats::default(), "disabled cache is inert");
    }

    #[test]
    fn block_cache_hits_dominate_on_warm_loop() {
        let mut m = machine(
            "start: lda r1, 50(zero)
             loop:  subq r1, 1, r1
                    bgt r1, loop
                    halt",
        );
        m.set_block_cache(true);
        run(&mut m, 200);
        let s = m.block_cache_stats();
        assert_eq!(s.hits + s.misses, s.lookups, "every lookup is a hit or a miss");
        assert!(s.hits > s.misses, "warm loop must replay cached blocks: {s:?}");
        assert_eq!(s.invalidations, 0, "nothing writes code here");
        // The loop body replays from the block cache, so replayed
        // fetches count as decode hits and each static instruction
        // still decodes (misses) exactly once.
        let (_, misses) = m.decode_cache_stats();
        assert_eq!(misses, 4);
    }

    #[test]
    fn exec_streams_identical_with_block_cache_on_and_off() {
        // A DISE-expanding loop with a trap: the fused replay must
        // reproduce the uncached stream byte for byte, including
        // engine statistics and instruction counts.
        let src = "start: la r1, w
                    lda r9, 3(zero)
             loop:  stq r9, 0(r1)
                    subq r9, 1, r9
                    bgt r9, loop
                    halt
             .data
             w: .quad 0";
        let mk = |enabled: bool| {
            let mut m = machine(src);
            install_fig2a(&mut m);
            m.set_reg(Reg::DAR, 0x0100_0000);
            m.set_reg(Reg::DPV, 0);
            m.set_block_cache(enabled);
            m
        };
        let mut off = mk(false);
        let mut on = mk(true);
        let trace_off = run(&mut off, 200);
        let trace_on = run(&mut on, 200);
        assert_eq!(trace_off, trace_on, "Exec streams must be byte-identical");
        assert_eq!(off.engine().stats(), on.engine().stats(), "fused replays count as triggers");
        assert_eq!(off.instructions(), on.instructions());
        assert!(on.block_cache_stats().lookups > 0, "the cache actually engaged");
    }

    #[test]
    fn self_modifying_store_invalidates_decoded_cache() {
        // Pass 1 executes `slot` (caching its decode) and then patches it
        // with `lda r5, 77(zero)`; pass 2 must see the new instruction.
        let patched = dise_isa::encode(&Instr::Lda { rd: Reg::gpr(5), base: Reg::ZERO, disp: 77 });
        let mut m = machine(&format!(
            "start: la r1, slot
                    la r3, patch
                    ldl r2, 0(r3)
                    lda r9, 2(zero)
             slot:  lda r5, 111(zero)
                    subq r9, 1, r9
                    beq r9, done
                    stl r2, 0(r1)      # self-modify: overwrite slot
                    br slot
             done:  halt
             .data
             patch: .quad {patched}"
        ));
        run(&mut m, 100);
        assert_eq!(m.reg(Reg::gpr(5)), 77, "stale decode served after self-modification");
    }

    /// Regression for the store-overlap boundary audit: an unaligned
    /// 8-byte store that *starts in the word before* a cached
    /// instruction and straddles into it (and one byte beyond) must
    /// invalidate the cached decode — the invalidation walks every
    /// instruction word the store's byte range overlaps, up to three.
    #[test]
    fn straddling_store_invalidates_decoded_cache_across_word_boundaries() {
        let nop = dise_isa::encode(&Instr::Nop) as u64;
        let patched =
            dise_isa::encode(&Instr::Lda { rd: Reg::gpr(5), base: Reg::ZERO, disp: 77 }) as u64;
        // The stq at `slot - 3` rewrites: the last 3 bytes of the nop
        // word before `slot` (with their original bytes), all 4 bytes of
        // `slot`, and the first byte of the nop word after it (also with
        // its original byte). Only `slot` actually changes.
        let value = (nop >> 8) | (patched << 24) | ((nop & 0xff) << 56);
        let mut m = machine(&format!(
            "start: la r1, slot
                    la r3, patch
                    ldq r2, 0(r3)
                    lda r9, 2(zero)
             loop:  nop
             slot:  lda r5, 111(zero)
                    nop
                    subq r9, 1, r9
                    beq r9, done
                    stq r2, -3(r1)     # straddles into slot's word
                    br loop
             done:  halt
             .data
             patch: .quad {value}"
        ));
        run(&mut m, 100);
        assert_eq!(m.reg(Reg::gpr(5)), 77, "stale decode served after boundary-straddling store");
    }

    /// Block-cache counterpart of the straddling-store regression: a
    /// `patch_code` patch (the breakpoint path) landing in the *middle*
    /// of a cached block must invalidate the whole block, not just the
    /// patched word's decode slot — the block is keyed by its entry PC,
    /// which the patch does not touch.
    #[test]
    fn patch_code_invalidates_whole_cached_block() {
        let src = "start: lda r9, 4(zero)
             loop:  nop
             slot:  lda r5, 111(zero)
                    subq r9, 1, r9
                    bgt r9, loop
                    halt";
        let prog = parse_asm(src).unwrap().assemble(Layout::default()).unwrap();
        let slot = prog.symbol("slot").unwrap();
        let mut m = Executor::from_program(&prog, CpuConfig::default());
        m.set_block_cache(true);
        // Three loop iterations: the second builds a block keyed at
        // `loop` — with `slot` in its *middle* — and the third replays
        // it from cache.
        for _ in 0..13 {
            m.step();
        }
        assert!(m.block_cache_stats().hits > 0, "the `loop` block replayed from cache");
        m.patch_code(
            slot,
            dise_isa::encode(&Instr::Lda { rd: Reg::gpr(5), base: Reg::ZERO, disp: 77 }),
        );
        assert!(m.block_cache_stats().invalidations > 0, "patch dropped the enclosing block(s)");
        run(&mut m, 100);
        assert_eq!(m.reg(Reg::gpr(5)), 77, "stale block replayed after a mid-block patch");
    }

    /// Cached blocks bake in expansion decisions, so installing a
    /// production through `engine_mut` after a block is warm must drop
    /// it — the store must expand on the next pass.
    #[test]
    fn engine_changes_flush_cached_blocks() {
        let mut m = machine(
            "start: la r1, v
                    lda r9, 2(zero)
             loop:  stq r9, 0(r1)
                    subq r9, 1, r9
                    bgt r9, loop
                    halt
             .data
             v: .quad 0",
        );
        m.set_block_cache(true);
        // First iteration: the store's block caches it as a plain step
        // (no productions installed yet).
        for _ in 0..5 {
            m.step();
        }
        m.engine_mut()
            .install(Production::new(
                "pad",
                Pattern::opclass(OpClass::Store),
                vec![TemplateInst::Trigger, TemplateInst::Fixed(Instr::Nop)],
            ))
            .unwrap();
        let trace = run(&mut m, 100);
        assert!(
            trace.iter().any(|e| e.disepc > 0),
            "second pass must expand the store after the engine changed"
        );
    }

    #[test]
    fn mem_mut_drops_decoded_cache() {
        let mut m = machine(
            "start: lda r5, 1(zero)
                    halt",
        );
        let first = m.step();
        assert_eq!(first.instr, Instr::Lda { rd: Reg::gpr(5), base: Reg::ZERO, disp: 1 });
        // Patch the next word (the halt) behind the executor's back, as
        // the breakpoint backend does, then re-point the PC at it.
        let pc = m.pc();
        m.mem_mut().write_u(pc, 4, dise_isa::encode(&Instr::Nop) as u64);
        let e = m.step();
        assert_eq!(e.instr, Instr::Nop, "patched word must be re-decoded");
    }

    #[test]
    fn zero_register_discards_writes() {
        let mut m = machine("start: lda r31, 5(zero)\n halt");
        run(&mut m, 10);
        assert_eq!(m.reg(Reg::ZERO), 0);
    }

    #[test]
    fn alu_immediate_and_register_forms() {
        let mut m = machine(
            "start: lda r1, 10(zero)
                    addq r1, 5, r2
                    addq r2, r2, r3
                    halt",
        );
        run(&mut m, 10);
        assert_eq!(m.reg(Reg::gpr(2)), 15);
        assert_eq!(m.reg(Reg::gpr(3)), 30);
    }

    #[test]
    fn instruction_count_includes_expansions() {
        let mut m = machine(
            "start: la r1, v
                    stq r2, 0(r1)
                    halt
             .data
             v: .quad 0",
        );
        m.engine_mut()
            .install(Production::new(
                "pad",
                Pattern::opclass(OpClass::Store),
                vec![TemplateInst::Trigger, TemplateInst::Fixed(Instr::Nop)],
            ))
            .unwrap();
        run(&mut m, 100);
        // la(2) + store-expansion(2) + halt(1)
        assert_eq!(m.instructions(), 5);
    }

    /// A self-modifying countdown: each iteration stores a changing
    /// value over data *and* patches its own loop body — the worst case
    /// for anything sharing pages or cached decodes across a fork.
    fn self_modifying_src() -> &'static str {
        "start: lda r1, 6(zero)
                la r2, v
                la r3, patch
                ldq r4, 0(r3)
         loop:  stq r1, 0(r2)
         patch: addq r1, 0, r5
                stq r4, 0(r3)      # rewrite the addq with itself... or not
                addq r4, 1, r4     # drift the stored word (stays decodable: imm grows)
                subq r1, 1, r1
                bgt r1, loop
                halt
         .data
         v: .quad 0"
    }

    /// Forked continuation == fresh continuation, byte for byte — even
    /// with self-modifying stores landing on still-shared pages.
    #[test]
    fn fork_is_invisible_mid_run() {
        let src = self_modifying_src();
        let reference = {
            let mut m = machine(src);
            run(&mut m, 1000)
        };
        for fork_at in [0usize, 1, 7, 13, 26] {
            let mut parent = machine(src);
            for _ in 0..fork_at.min(reference.len()) {
                parent.step();
            }
            let mut child = parent.fork();
            assert_eq!(child.pc(), parent.pc());
            assert_eq!(child.instructions(), parent.instructions());
            // The child continues exactly as the unforked run did...
            let tail = run(&mut child, 1000);
            assert_eq!(tail, reference[fork_at.min(reference.len())..], "fork at {fork_at}");
            // ...and so does the parent, whose pages the child wrote.
            let parent_tail = run(&mut parent, 1000);
            assert_eq!(parent_tail, tail, "parent diverged after fork at {fork_at}");
        }
    }

    /// The fork shares pages instead of copying them, and the parent's
    /// memory is untouched by child stores.
    #[test]
    fn fork_shares_memory_copy_on_write() {
        let mut parent = machine(self_modifying_src());
        let resident = parent.mem().resident_pages();
        let mut child = parent.fork();
        assert_eq!(parent.mem().cow_stats().forks, 1);
        assert_eq!(child.mem().cow_stats().pages_shared, resident as u64);
        assert_eq!(child.mem().shared_pages(), resident);
        run(&mut child, 1000);
        let cs = child.mem().cow_stats();
        assert!(cs.pages_copied >= 1, "child stores must unshare pages");
        assert!(cs.pages_copied <= cs.pages_shared, "only shared pages can be copied");
        assert_eq!(
            cs.pages_copied + child.mem().shared_pages() as u64,
            cs.pages_shared,
            "copied + still-shared == shared-at-fork while the parent is idle"
        );
        assert_eq!(parent.mem().cow_stats().pages_copied, 0, "parent never wrote");
    }

    /// Checkpoint → run → restore → run replays the identical stream,
    /// with the warm caches revalidated rather than rebuilt.
    #[test]
    fn checkpoint_restore_replays_identically() {
        let mut m = machine(self_modifying_src());
        for _ in 0..9 {
            m.step();
        }
        let ck = m.checkpoint();
        assert_eq!(ck.instructions(), 9);
        assert_eq!(ck.pc(), m.pc());
        let first = run(&mut m, 1000);
        let stats_first = (m.decode_cache_stats(), m.block_cache_stats(), m.engine().stats());
        m.restore(&ck);
        assert_eq!(m.instructions(), 9);
        let second = run(&mut m, 1000);
        assert_eq!(second, first, "restored run must replay the stream byte for byte");
        let stats_second = (m.decode_cache_stats(), m.block_cache_stats(), m.engine().stats());
        assert_eq!(
            stats_second, stats_first,
            "counters rewind with the machine and re-accumulate identically"
        );
    }

    /// Cross-configuration forks share the loaded image but get fresh
    /// engine capacities, and refuse mid-run templates.
    #[test]
    fn fork_with_config_shares_image_with_fresh_engine() {
        let mut template = machine(
            "start: la r1, v
                    stq r2, 0(r1)
                    halt
             .data
             v: .quad 0",
        );
        let mut small = CpuConfig::default();
        small.engine.replacement_entries = 2;
        let mut child = template.fork_with_config(small).expect("pre-run template forks");
        assert_eq!(child.pc(), template.pc());
        assert_eq!(child.reg(Reg::SP), template.reg(Reg::SP));
        assert_eq!(child.mem().read_u(child.pc(), 4), template.mem().read_u(template.pc(), 4));
        assert_eq!(child.engine().config().replacement_entries, 2);
        let err = Production::new(
            "pad",
            Pattern::opclass(OpClass::Store),
            vec![
                TemplateInst::Trigger,
                TemplateInst::Fixed(Instr::Nop),
                TemplateInst::Fixed(Instr::Nop),
            ],
        );
        assert!(child.engine_mut().install(err).is_err(), "small capacity is really in force");
        run(&mut child, 100);

        // Regression: a mid-run template is refused with a recoverable
        // error naming how far the parent had run, not a debug assert.
        template.step();
        let err = template.fork_with_config(small).unwrap_err();
        assert_eq!(err, ForkConfigError { instructions: 1 });
        assert!(err.to_string().contains("retired 1 instructions"), "{err}");
    }
}
