//! Hybrid branch predictor, branch target buffer, return-address stack.

/// Predictor geometry. Defaults are the paper's: an 8K-entry hybrid
/// predictor and a 2K-entry BTB (plus a conventional 16-deep RAS).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BpredConfig {
    /// Entries in the bimodal table.
    pub bimodal_entries: usize,
    /// Entries in the gshare table.
    pub gshare_entries: usize,
    /// Entries in the chooser table.
    pub chooser_entries: usize,
    /// Global-history bits used by gshare.
    pub history_bits: u32,
    /// BTB entries (direct-mapped, tagged).
    pub btb_entries: usize,
    /// Return-address stack depth.
    pub ras_depth: usize,
}

impl Default for BpredConfig {
    fn default() -> BpredConfig {
        BpredConfig {
            bimodal_entries: 8192,
            gshare_entries: 8192,
            chooser_entries: 8192,
            history_bits: 12,
            btb_entries: 2048,
            ras_depth: 16,
        }
    }
}

/// Outcome counters: 2-bit saturating, initialised weakly not-taken.
#[inline]
fn bump(counter: &mut u8, taken: bool) {
    if taken {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

/// A hybrid (bimodal + gshare with a chooser) direction predictor, a
/// tagged direct-mapped BTB for indirect targets, and a return-address
/// stack.
#[derive(Clone, Debug)]
pub struct Predictor {
    config: BpredConfig,
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    chooser: Vec<u8>,
    history: u64,
    btb: Vec<Option<(u64, u64)>>, // (tag=pc, target)
    ras: Vec<u64>,
    /// Direction predictions made / direction mispredicts.
    pub dir_predictions: u64,
    /// Direction mispredicts.
    pub dir_mispredicts: u64,
}

impl Predictor {
    /// Build an empty predictor.
    pub fn new(config: BpredConfig) -> Predictor {
        Predictor {
            config,
            bimodal: vec![1; config.bimodal_entries],
            gshare: vec![1; config.gshare_entries],
            chooser: vec![2; config.chooser_entries],
            history: 0,
            btb: vec![None; config.btb_entries],
            ras: Vec::with_capacity(config.ras_depth),
            dir_predictions: 0,
            dir_mispredicts: 0,
        }
    }

    #[inline]
    fn bimodal_idx(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) % self.config.bimodal_entries
    }

    #[inline]
    fn gshare_idx(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) as usize) % self.config.gshare_entries
    }

    #[inline]
    fn chooser_idx(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) % self.config.chooser_entries
    }

    /// Predict the direction of the conditional branch at `pc`, then
    /// update all tables with the actual outcome. Returns `true` when the
    /// prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        self.dir_predictions += 1;
        let bi = self.bimodal_idx(pc);
        let gi = self.gshare_idx(pc);
        let ci = self.chooser_idx(pc);
        let bim_pred = self.bimodal[bi] >= 2;
        let gsh_pred = self.gshare[gi] >= 2;
        let use_gshare = self.chooser[ci] >= 2;
        let pred = if use_gshare { gsh_pred } else { bim_pred };

        // Chooser trains toward the component that was right when they
        // disagree.
        if bim_pred != gsh_pred {
            bump(&mut self.chooser[ci], gsh_pred == taken);
        }
        bump(&mut self.bimodal[bi], taken);
        bump(&mut self.gshare[gi], taken);
        self.history =
            ((self.history << 1) | u64::from(taken)) & ((1 << self.config.history_bits) - 1);

        let correct = pred == taken;
        if !correct {
            self.dir_mispredicts += 1;
        }
        correct
    }

    /// Predict the target of the indirect jump at `pc`, then install the
    /// actual target. Returns `true` when the predicted target matched.
    pub fn predict_indirect(&mut self, pc: u64, actual: u64) -> bool {
        let idx = ((pc >> 2) as usize) % self.config.btb_entries;
        let hit = matches!(self.btb[idx], Some((tag, t)) if tag == pc && t == actual);
        self.btb[idx] = Some((pc, actual));
        hit
    }

    /// Record a call: push the return address.
    pub fn push_return(&mut self, return_addr: u64) {
        if self.ras.len() == self.config.ras_depth {
            self.ras.remove(0);
        }
        self.ras.push(return_addr);
    }

    /// Predict a return: pop and compare. Returns `true` on a correct
    /// prediction.
    pub fn predict_return(&mut self, actual: u64) -> bool {
        self.ras.pop() == Some(actual)
    }

    /// Direction-misprediction rate over the run.
    pub fn mispredict_rate(&self) -> f64 {
        if self.dir_predictions == 0 {
            0.0
        } else {
            self.dir_mispredicts as f64 / self.dir_predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut p = Predictor::new(BpredConfig::default());
        let pc = 0x1000;
        // Initial counters are weakly not-taken: first prediction wrong.
        assert!(!p.predict_and_update(pc, true));
        // After training, always correct.
        for _ in 0..8 {
            p.predict_and_update(pc, true);
        }
        assert!(p.predict_and_update(pc, true));
        assert!(p.mispredict_rate() < 0.5);
    }

    #[test]
    fn learns_alternating_pattern_via_gshare() {
        let mut p = Predictor::new(BpredConfig::default());
        let pc = 0x2000;
        let mut correct = 0;
        for i in 0..200u32 {
            if p.predict_and_update(pc, i % 2 == 0) {
                correct += 1;
            }
        }
        // History-based component should capture the period-2 pattern.
        assert!(correct > 150, "only {correct}/200 correct");
    }

    #[test]
    fn btb_learns_stable_indirect_target() {
        let mut p = Predictor::new(BpredConfig::default());
        assert!(!p.predict_indirect(0x3000, 0x4000), "cold miss");
        assert!(p.predict_indirect(0x3000, 0x4000));
        assert!(!p.predict_indirect(0x3000, 0x5000), "target changed");
        assert!(p.predict_indirect(0x3000, 0x5000));
    }

    #[test]
    fn ras_matches_call_return_nesting() {
        let mut p = Predictor::new(BpredConfig::default());
        p.push_return(0x100);
        p.push_return(0x200);
        assert!(p.predict_return(0x200));
        assert!(p.predict_return(0x100));
        assert!(!p.predict_return(0x300), "empty stack mispredicts");
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let cfg = BpredConfig { ras_depth: 2, ..BpredConfig::default() };
        let mut p = Predictor::new(cfg);
        p.push_return(1);
        p.push_return(2);
        p.push_return(3); // evicts 1
        assert!(p.predict_return(3));
        assert!(p.predict_return(2));
        assert!(!p.predict_return(1));
    }
}
