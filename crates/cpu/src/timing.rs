//! The cycle-accounting half of the machine.
//!
//! [`Timing`] consumes [`Exec`](crate::Exec) records in program order and
//! computes the commit cycle of each instruction under the modeled
//! resources:
//!
//! * front end: `width` instructions per cycle; instruction-cache and
//!   ITLB latency charged per line; fetch groups end at predicted-taken
//!   branches; **replacement instructions bypass fetch entirely** and
//!   consume decode/dispatch bandwidth only;
//! * window: reorder-buffer and reservation-station occupancy stall
//!   dispatch when full;
//! * issue: `width` instructions per cycle, `mem_ports` memory
//!   operations per cycle, operand-ready times tracked per register,
//!   store→load memory dependences tracked per quadword ("intelligent
//!   load speculation" — no false dependences, no mis-speculation);
//! * execute: ALU latencies from the ISA; data-cache/DTLB latency for
//!   memory operations at issue time;
//! * commit: in order, `commit_width` per cycle;
//! * redirects: branch mispredicts (modeled with a real hybrid
//!   predictor/BTB/RAS), taken DISE branches, DISE calls and returns,
//!   and conventional branches inside replacement sequences all refill
//!   the front end; debugger transitions stall it for
//!   [`CpuConfig::debugger_transition_cost`] cycles.

use std::collections::{HashMap, VecDeque};

use dise_isa::Instr;
use dise_mem::MemSystem;

use crate::exec::{BranchKind, Exec, FlushKind};
use crate::{CpuConfig, Predictor};

/// Aggregate results of a timed run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RunStats {
    /// Total cycles (cycle of the last commit).
    pub cycles: u64,
    /// Dynamic instructions committed (including replacement
    /// instructions).
    pub instructions: u64,
    /// Instructions that came through fetch (excludes DISE replacement
    /// instructions).
    pub fetched_instructions: u64,
    /// Conditional-branch direction mispredicts.
    pub mispredicts: u64,
    /// Pipeline flushes caused by DISE control transfers.
    pub dise_flushes: u64,
    /// Debugger-transition stalls charged.
    pub debugger_stalls: u64,
    /// Cycles spent in debugger-transition stalls.
    pub debugger_stall_cycles: u64,
}

impl RunStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// The timing model. Feed it every [`Exec`] in order via
/// [`Timing::consume`]; charge debugger transitions with
/// [`Timing::debugger_stall`]; read the final count with
/// [`Timing::finish`].
#[derive(Clone, Debug)]
pub struct Timing {
    cfg: CpuConfig,
    mem: MemSystem,
    pred: Predictor,

    /// Cycle the front end is currently delivering into.
    front_cycle: u64,
    /// Slots remaining in the current front-end cycle.
    front_slots: u64,
    /// Current instruction-cache line address (fetch locality).
    cur_line: u64,

    /// Per-register ready cycle (latest in-flight definition).
    reg_ready: [u64; crate::NUM_REGS],
    /// Per-quadword ready cycle of the latest store (memory dependence).
    store_ready: HashMap<u64, u64>,

    /// Commit cycles of in-flight instructions (ROB occupancy).
    rob: VecDeque<u64>,
    /// Issue cycles of in-flight instructions (RS occupancy).
    rs: VecDeque<u64>,

    /// Issue-port usage per cycle.
    issue_use: HashMap<u64, u64>,
    /// Memory-port usage per cycle.
    mem_use: HashMap<u64, u64>,

    /// In-order commit frontier.
    commit_cycle: u64,
    commit_slots: u64,
    last_commit: u64,

    stats: RunStats,
    prune_mark: u64,
}

impl Timing {
    /// A fresh timing model with cold caches and predictor.
    pub fn new(cfg: CpuConfig) -> Timing {
        Timing {
            cfg,
            mem: MemSystem::new(cfg.mem),
            pred: Predictor::new(cfg.bpred),
            front_cycle: 0,
            front_slots: cfg.width,
            cur_line: u64::MAX,
            reg_ready: [0; crate::NUM_REGS],
            store_ready: HashMap::new(),
            rob: VecDeque::new(),
            rs: VecDeque::new(),
            issue_use: HashMap::new(),
            mem_use: HashMap::new(),
            commit_cycle: 0,
            commit_slots: cfg.commit_width,
            last_commit: 0,
            stats: RunStats::default(),
            prune_mark: 0,
        }
    }

    /// The memory hierarchy (for inspecting cache statistics).
    pub fn mem_system(&self) -> &MemSystem {
        &self.mem
    }

    /// The branch predictor (for inspecting misprediction rates).
    pub fn predictor(&self) -> &Predictor {
        &self.pred
    }

    /// Cycles elapsed so far (commit frontier).
    pub fn cycles(&self) -> u64 {
        self.last_commit
    }

    fn redirect(&mut self, resume_at: u64) {
        self.front_cycle = self.front_cycle.max(resume_at);
        self.front_slots = self.cfg.width;
        self.cur_line = u64::MAX; // refetch charges the I-cache
    }

    /// Find the earliest cycle ≥ `ready` with a free slot in `table`
    /// (capacity `cap` per cycle) and reserve it.
    fn reserve(table: &mut HashMap<u64, u64>, cap: u64, ready: u64) -> u64 {
        let mut c = ready;
        loop {
            let used = table.entry(c).or_insert(0);
            if *used < cap {
                *used += 1;
                return c;
            }
            c += 1;
        }
    }

    /// Account one instruction; returns its commit cycle.
    pub fn consume(&mut self, e: &Exec) -> u64 {
        self.stats.instructions += 1;

        // ---- Front end --------------------------------------------------
        if e.fetched {
            self.stats.fetched_instructions += 1;
            let line = e.pc / self.cfg.mem.l1i.line;
            if line != self.cur_line {
                self.cur_line = line;
                let lat = self.mem.inst_fetch(e.pc);
                if lat > 1 {
                    // Fetch stalls for the miss; the group restarts.
                    self.front_cycle += lat - 1;
                    self.front_slots = self.cfg.width;
                }
            }
        }
        if self.front_slots == 0 {
            self.front_cycle += 1;
            self.front_slots = self.cfg.width;
        }
        self.front_slots -= 1;
        let mut dispatch = self.front_cycle;

        // ---- Window occupancy -------------------------------------------
        while self.rob.len() >= self.cfg.rob_entries {
            let freed = self.rob.pop_front().expect("rob nonempty");
            dispatch = dispatch.max(freed);
        }
        while self.rs.len() >= self.cfg.rs_entries {
            let freed = self.rs.pop_front().expect("rs nonempty");
            dispatch = dispatch.max(freed);
        }
        // Retire bookkeeping entries that are already done.
        while self.rob.front().is_some_and(|&c| c < dispatch) {
            self.rob.pop_front();
        }
        while self.rs.front().is_some_and(|&c| c < dispatch) {
            self.rs.pop_front();
        }
        self.front_cycle = self.front_cycle.max(dispatch);

        // ---- Operand readiness ------------------------------------------
        let mut ready = dispatch + 1;
        for src in e.instr.sources().iter().flatten() {
            ready = ready.max(self.reg_ready[src.index()]);
        }
        if let Some(m) = e.mem {
            if !m.is_store {
                for q in (m.addr / 8)..=((m.addr + m.width - 1) / 8) {
                    if let Some(&r) = self.store_ready.get(&q) {
                        ready = ready.max(r);
                    }
                }
            }
        }

        // ---- Issue -------------------------------------------------------
        let issue = {
            let c = Self::reserve(&mut self.issue_use, self.cfg.width, ready);
            if e.mem.is_some() {
                Self::reserve(&mut self.mem_use, self.cfg.mem_ports, c)
            } else {
                c
            }
        };
        self.rs.push_back(issue);

        // ---- Execute -----------------------------------------------------
        let latency = match (&e.instr, e.mem) {
            (_, Some(m)) => self.mem.data_access(m.addr, m.is_store),
            (Instr::Alu { op, .. }, None) => op.latency(),
            _ => 1,
        };
        let done = issue + latency;
        if let Some(d) = e.instr.dest() {
            self.reg_ready[d.index()] = done;
        }
        if let Some(m) = e.mem {
            if m.is_store {
                for q in (m.addr / 8)..=((m.addr + m.width - 1) / 8) {
                    self.store_ready.insert(q, done);
                }
            }
        }

        // ---- Commit (in order) --------------------------------------------
        let mut commit = done.max(self.commit_cycle);
        if commit > self.commit_cycle {
            self.commit_cycle = commit;
            self.commit_slots = self.cfg.commit_width;
        }
        if self.commit_slots == 0 {
            self.commit_cycle += 1;
            self.commit_slots = self.cfg.commit_width;
            commit = self.commit_cycle;
        }
        self.commit_slots -= 1;
        self.last_commit = commit;
        self.rob.push_back(commit);

        // ---- Redirects -----------------------------------------------------
        if let Some(b) = e.branch {
            if e.fetched {
                let mispredict = match b.kind {
                    BranchKind::Conditional => !self.pred.predict_and_update(e.pc, b.taken),
                    BranchKind::Direct => false,
                    BranchKind::Indirect => !self.pred.predict_indirect(e.pc, b.target),
                    BranchKind::Call => {
                        self.pred.push_return(e.pc + 4);
                        match e.instr {
                            Instr::Jmp { .. } => !self.pred.predict_indirect(e.pc, b.target),
                            _ => false,
                        }
                    }
                    BranchKind::Return => !self.pred.predict_return(b.target),
                };
                if mispredict {
                    self.stats.mispredicts += 1;
                    self.redirect(done + self.cfg.mispredict_penalty);
                } else if b.taken {
                    // Predicted-taken branch ends the fetch group.
                    self.front_cycle += 1;
                    self.front_slots = self.cfg.width;
                    self.cur_line = u64::MAX;
                }
            }
        }
        if let Some(kind) = e.flush {
            let suppressed = self.cfg.multithreaded_dise_calls
                && matches!(kind, FlushKind::DiseCall | FlushKind::DiseRet);
            if !suppressed {
                self.stats.dise_flushes += 1;
                self.redirect(done + self.cfg.dise_flush_penalty);
            }
        }

        // ---- Housekeeping ---------------------------------------------------
        if self.stats.instructions.is_multiple_of(65_536) {
            let keep = self.prune_mark;
            self.issue_use.retain(|&c, _| c >= keep);
            self.mem_use.retain(|&c, _| c >= keep);
            self.prune_mark = self.last_commit;
        }

        commit
    }

    /// Charge a debugger transition: the pipeline is flushed and the
    /// application stalls for `cost` cycles (use
    /// [`CpuConfig::debugger_transition_cost`] for spurious transitions;
    /// masked transitions are free per the paper's methodology).
    pub fn debugger_stall(&mut self, cost: u64) {
        self.stats.debugger_stalls += 1;
        self.stats.debugger_stall_cycles += cost;
        let resume = self.last_commit + cost;
        self.commit_cycle = self.commit_cycle.max(resume);
        self.redirect(resume);
    }

    /// Close out the run and return the statistics.
    pub fn finish(&mut self) -> RunStats {
        self.stats.cycles = self.last_commit;
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Branch, Event, MemOp};
    use dise_isa::{AluOp, Operand, Reg};

    fn cfg() -> CpuConfig {
        CpuConfig::default()
    }

    fn plain_alu(pc: u64, rd: u8, ra: u8) -> Exec {
        Exec {
            pc,
            disepc: 0,
            in_dise_call: false,
            instr: Instr::Alu {
                op: AluOp::Add,
                rd: Reg::gpr(rd),
                ra: Reg::gpr(ra),
                rb: Operand::Imm(1),
            },
            fetched: true,
            branch: None,
            mem: None,
            flush: None,
            event: None,
        }
    }

    #[test]
    fn independent_alus_reach_full_width() {
        let mut t = Timing::new(cfg());
        // 4000 independent single-cycle ALU ops: IPC should approach 4.
        for i in 0..4000u64 {
            let e = plain_alu(0x10_0000 + (i % 16) * 4, (i % 8) as u8, 20);
            t.consume(&e);
        }
        let s = t.finish();
        assert!(s.ipc() > 3.0, "ipc = {}", s.ipc());
    }

    #[test]
    fn dependent_chain_limits_to_one_ipc() {
        let mut t = Timing::new(cfg());
        for i in 0..2000u64 {
            // r1 = r1 + 1 repeatedly: serial dependence.
            let e = plain_alu(0x10_0000 + (i % 16) * 4, 1, 1);
            t.consume(&e);
        }
        let s = t.finish();
        assert!(s.ipc() < 1.2, "ipc = {}", s.ipc());
        assert!(s.ipc() > 0.8, "ipc = {}", s.ipc());
    }

    #[test]
    fn dise_flush_costs_cycles() {
        let base = {
            let mut t = Timing::new(cfg());
            for i in 0..1000u64 {
                t.consume(&plain_alu(0x10_0000 + (i % 16) * 4, (i % 8) as u8, 20));
            }
            t.finish().cycles
        };
        let flushed = {
            let mut t = Timing::new(cfg());
            for i in 0..1000u64 {
                let mut e = plain_alu(0x10_0000 + (i % 16) * 4, (i % 8) as u8, 20);
                if i % 10 == 0 {
                    e.flush = Some(FlushKind::DiseBranch);
                    e.fetched = false;
                    e.disepc = 1;
                }
                t.consume(&e);
            }
            t.finish().cycles
        };
        assert!(
            flushed > base + 500,
            "flushes should add ≈100×10 cycles: base {base}, flushed {flushed}"
        );
    }

    #[test]
    fn multithreading_suppresses_call_flushes() {
        let run = |mt: bool| {
            let mut c = cfg();
            c.multithreaded_dise_calls = mt;
            let mut t = Timing::new(c);
            for i in 0..1000u64 {
                let mut e = plain_alu(0x10_0000 + (i % 16) * 4, (i % 8) as u8, 20);
                if i % 10 == 0 {
                    e.flush = Some(FlushKind::DiseCall);
                }
                if i % 10 == 5 {
                    e.flush = Some(FlushKind::DiseRet);
                }
                t.consume(&e);
            }
            t.finish()
        };
        let without = run(false);
        let with = run(true);
        assert!(with.cycles < without.cycles);
        assert_eq!(with.dise_flushes, 0);
        assert!(without.dise_flushes > 0);
    }

    #[test]
    fn debugger_stall_dominates() {
        let mut t = Timing::new(cfg());
        t.consume(&plain_alu(0x10_0000, 1, 2));
        t.debugger_stall(100_000);
        t.consume(&plain_alu(0x10_0004, 3, 4));
        let s = t.finish();
        assert!(s.cycles >= 100_000);
        assert_eq!(s.debugger_stalls, 1);
        assert_eq!(s.debugger_stall_cycles, 100_000);
    }

    #[test]
    fn load_dependence_on_store_address() {
        // A load that reads the quad a prior store wrote must wait.
        let mut t = Timing::new(cfg());
        let mut store = plain_alu(0x10_0000, 1, 2);
        store.instr =
            Instr::Store { width: dise_isa::Width::Q, rs: Reg::gpr(1), base: Reg::gpr(2), disp: 0 };
        store.mem =
            Some(MemOp { addr: 0x100, width: 8, is_store: true, old_value: 0, new_value: 1 });
        let sc = t.consume(&store);

        let mut load = plain_alu(0x10_0004, 3, 4);
        load.instr =
            Instr::Load { width: dise_isa::Width::Q, rd: Reg::gpr(3), base: Reg::gpr(4), disp: 0 };
        load.mem =
            Some(MemOp { addr: 0x100, width: 8, is_store: false, old_value: 1, new_value: 1 });
        let lc = t.consume(&load);
        assert!(lc >= sc, "load commits no earlier than the store it depends on");
    }

    #[test]
    fn mispredicted_branches_add_bubbles() {
        // Random directions on one PC: predictor can't learn, frequent
        // mispredicts, low IPC.
        let run = |pattern: &dyn Fn(u64) -> bool| {
            let mut t = Timing::new(cfg());
            for i in 0..2000u64 {
                let taken = pattern(i);
                let mut e = plain_alu(0x10_0000, (i % 8) as u8, 20);
                e.instr = Instr::CondBr { cond: dise_isa::Cond::Eq, rs: Reg::gpr(20), disp: 4 };
                e.branch = Some(Branch { kind: BranchKind::Conditional, taken, target: 0x10_0040 });
                t.consume(&e);
                // a few straight-line instructions between branches
                for j in 0..3 {
                    t.consume(&plain_alu(0x10_0044 + j * 4, ((i + j) % 8) as u8, 21));
                }
            }
            t.finish()
        };
        let steady = run(&|_| true);
        // LFSR-ish pseudo-random pattern the 12-bit-history gshare cannot
        // fully capture.
        let chaotic = run(&|i| ((i * 2654435761u64) >> 13) & 1 == 1);
        assert!(chaotic.mispredicts > steady.mispredicts * 2);
        assert!(chaotic.cycles > steady.cycles);
    }

    #[test]
    fn icache_miss_slows_cold_code() {
        // Walk a large code footprint twice: first pass cold, second warm.
        let mut t = Timing::new(cfg());
        for i in 0..2000u64 {
            t.consume(&plain_alu(0x10_0000 + i * 4, (i % 8) as u8, 20));
        }
        let cold = t.finish().cycles;
        let mut t2 = Timing::new(cfg());
        // Prime.
        for i in 0..2000u64 {
            t2.consume(&plain_alu(0x10_0000 + i * 4, (i % 8) as u8, 20));
        }
        let primed = t2.finish().cycles;
        assert_eq!(cold, primed, "determinism");
        // Same loop within one line: no further misses.
        let mut t3 = Timing::new(cfg());
        for i in 0..2000u64 {
            t3.consume(&plain_alu(0x10_0000 + (i % 16) * 4, (i % 8) as u8, 20));
        }
        assert!(t3.finish().cycles < cold);
    }

    #[test]
    fn unfetched_instructions_skip_icache() {
        // Replacement instructions spanning many "lines" must not touch
        // the I-cache.
        let mut t = Timing::new(cfg());
        for i in 0..100u64 {
            let mut e = plain_alu(0x10_0000 + i * 256, (i % 8) as u8, 20);
            e.fetched = false;
            e.disepc = 1;
            t.consume(&e);
        }
        let (l1i, ..) = t.mem_system().stats();
        assert_eq!(l1i.accesses, 0);
    }

    #[test]
    fn trap_event_field_is_inert_in_timing() {
        // Timing treats events as data; only debugger_stall charges cost.
        let mut t = Timing::new(cfg());
        let mut e = plain_alu(0x10_0000, 1, 2);
        e.event = Some(Event::Trap);
        t.consume(&e);
        let s = t.finish();
        assert_eq!(s.debugger_stalls, 0);
        assert!(s.cycles < 500, "only cold-miss latency, no stall: {}", s.cycles);
    }
}
