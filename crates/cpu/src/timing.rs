//! The cycle-accounting half of the machine.
//!
//! [`Timing`] consumes [`Exec`](crate::Exec) records in program order and
//! computes the commit cycle of each instruction under the modeled
//! resources:
//!
//! * front end: `width` instructions per cycle; instruction-cache and
//!   ITLB latency charged per line; fetch groups end at predicted-taken
//!   branches; **replacement instructions bypass fetch entirely** and
//!   consume decode/dispatch bandwidth only;
//! * window: reorder-buffer and reservation-station occupancy stall
//!   dispatch when full;
//! * issue: `width` instructions per cycle, `mem_ports` memory
//!   operations per cycle, operand-ready times tracked per register,
//!   store→load memory dependences tracked per quadword ("intelligent
//!   load speculation" — no false dependences, no mis-speculation);
//! * execute: ALU latencies from the ISA; data-cache/DTLB latency for
//!   memory operations at issue time;
//! * commit: in order, `commit_width` per cycle;
//! * redirects: branch mispredicts (modeled with a real hybrid
//!   predictor/BTB/RAS), taken DISE branches, DISE calls and returns,
//!   and conventional branches inside replacement sequences all refill
//!   the front end; debugger transitions stall it for
//!   [`CpuConfig::debugger_transition_cost`] cycles.

use std::collections::{HashMap, VecDeque};
use std::hash::BuildHasherDefault;

use dise_isa::Instr;
use dise_mem::{AddrHasher, MemSystem};

use crate::exec::{BranchKind, Exec, FlushKind};
use crate::{CpuConfig, Predictor};

/// Store-dependence map keyed by quadword address, with `dise-mem`'s
/// multiply-fold hasher — SipHash shows up at the top of session
/// profiles and simulator addresses need spread, not DoS resistance.
type AddrMap = HashMap<u64, u64, BuildHasherDefault<AddrHasher>>;

/// Slots in a [`UseTable`] window. Must exceed the widest possible span
/// between the front end's current cycle and the farthest-out
/// reservation, which is bounded by the in-flight window (ROB entries ×
/// worst-case memory latency ≈ 13K cycles); 128K slots leave an order
/// of magnitude of slack, enforced by an assert on slot reuse.
const USE_SLOTS: usize = 1 << 17;

/// Per-cycle resource-usage counters, held in a direct-mapped,
/// cycle-tagged sliding window instead of a `HashMap` — `reserve` is
/// executed once or twice per instruction and dominated session
/// profiles under hashing.
///
/// A slot whose tag differs from the probed cycle belongs to a cycle
/// the pipeline has already drained past (every future probe starts at
/// or after the front end's cycle, which only advances), so it is
/// reclaimed by overwriting.
#[derive(Clone, Debug)]
struct UseTable {
    /// Cycle owning each slot (`u64::MAX` = never used).
    tags: Vec<u64>,
    /// Reservations taken in the owning cycle.
    counts: Vec<u64>,
}

impl UseTable {
    fn new() -> UseTable {
        UseTable { tags: vec![u64::MAX; USE_SLOTS], counts: vec![0; USE_SLOTS] }
    }

    /// Find the earliest cycle ≥ `ready` with a free slot (capacity
    /// `cap` per cycle) and reserve it. `live_floor` is a lower bound on
    /// every future `ready`; reclaiming a slot tagged at or above it
    /// would corrupt a reservation that can still be probed.
    #[inline]
    fn reserve(&mut self, cap: u64, ready: u64, live_floor: u64) -> u64 {
        let mut c = ready;
        loop {
            let slot = (c as usize) & (USE_SLOTS - 1);
            if self.tags[slot] == c {
                if self.counts[slot] < cap {
                    self.counts[slot] += 1;
                    return c;
                }
                c += 1;
                continue;
            }
            assert!(
                self.tags[slot] == u64::MAX || self.tags[slot] < live_floor,
                "usage window wrapped onto a live cycle: slot cycle {} vs floor {live_floor}",
                self.tags[slot],
            );
            self.tags[slot] = c;
            self.counts[slot] = 1;
            return c;
        }
    }
}

/// Aggregate results of a timed run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RunStats {
    /// Total cycles (cycle of the last commit).
    pub cycles: u64,
    /// Dynamic instructions committed (including replacement
    /// instructions).
    pub instructions: u64,
    /// Instructions that came through fetch (excludes DISE replacement
    /// instructions).
    pub fetched_instructions: u64,
    /// Conditional-branch direction mispredicts.
    pub mispredicts: u64,
    /// Pipeline flushes caused by DISE control transfers.
    pub dise_flushes: u64,
    /// Debugger-transition stalls charged.
    pub debugger_stalls: u64,
    /// Cycles spent in debugger-transition stalls.
    pub debugger_stall_cycles: u64,
}

impl RunStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// The timing model. Feed it every [`Exec`] in order via
/// [`Timing::consume`]; charge debugger transitions with
/// [`Timing::debugger_stall`]; read the final count with
/// [`Timing::finish`].
#[derive(Clone, Debug)]
pub struct Timing {
    cfg: CpuConfig,
    mem: MemSystem,
    pred: Predictor,

    /// Cycle the front end is currently delivering into.
    front_cycle: u64,
    /// Slots remaining in the current front-end cycle.
    front_slots: u64,
    /// Current instruction-cache line address (fetch locality).
    cur_line: u64,

    /// Per-register ready cycle (latest in-flight definition).
    reg_ready: [u64; crate::NUM_REGS],
    /// Per-quadword ready cycle of the latest store (memory dependence).
    store_ready: AddrMap,

    /// Commit cycles of in-flight instructions (ROB occupancy).
    rob: VecDeque<u64>,
    /// Issue cycles of in-flight instructions (RS occupancy).
    rs: VecDeque<u64>,

    /// Issue-port usage per cycle.
    issue_use: UseTable,
    /// Memory-port usage per cycle.
    mem_use: UseTable,

    /// In-order commit frontier.
    commit_cycle: u64,
    commit_slots: u64,
    last_commit: u64,

    stats: RunStats,
}

impl Timing {
    /// A fresh timing model with cold caches and predictor.
    pub fn new(cfg: CpuConfig) -> Timing {
        Timing {
            cfg,
            mem: MemSystem::new(cfg.mem),
            pred: Predictor::new(cfg.bpred),
            front_cycle: 0,
            front_slots: cfg.width,
            cur_line: u64::MAX,
            reg_ready: [0; crate::NUM_REGS],
            store_ready: AddrMap::default(),
            rob: VecDeque::new(),
            rs: VecDeque::new(),
            issue_use: UseTable::new(),
            mem_use: UseTable::new(),
            commit_cycle: 0,
            commit_slots: cfg.commit_width,
            last_commit: 0,
            stats: RunStats::default(),
        }
    }

    /// The memory hierarchy (for inspecting cache statistics).
    pub fn mem_system(&self) -> &MemSystem {
        &self.mem
    }

    /// The branch predictor (for inspecting misprediction rates).
    pub fn predictor(&self) -> &Predictor {
        &self.pred
    }

    /// Cycles elapsed so far (commit frontier).
    pub fn cycles(&self) -> u64 {
        self.last_commit
    }

    fn redirect(&mut self, resume_at: u64) {
        self.front_cycle = self.front_cycle.max(resume_at);
        self.front_slots = self.cfg.width;
        self.cur_line = u64::MAX; // refetch charges the I-cache
    }

    /// Account one instruction; returns its commit cycle.
    pub fn consume(&mut self, e: &Exec) -> u64 {
        self.stats.instructions += 1;

        // ---- Front end --------------------------------------------------
        if e.fetched {
            self.stats.fetched_instructions += 1;
            let line = e.pc / self.cfg.mem.l1i.line;
            if line != self.cur_line {
                self.cur_line = line;
                let lat = self.mem.inst_fetch(e.pc);
                if lat > 1 {
                    // Fetch stalls for the miss; the group restarts.
                    self.front_cycle += lat - 1;
                    self.front_slots = self.cfg.width;
                }
            }
        }
        if self.front_slots == 0 {
            self.front_cycle += 1;
            self.front_slots = self.cfg.width;
        }
        self.front_slots -= 1;
        let mut dispatch = self.front_cycle;

        // ---- Window occupancy -------------------------------------------
        while self.rob.len() >= self.cfg.rob_entries {
            let freed = self.rob.pop_front().expect("rob nonempty");
            dispatch = dispatch.max(freed);
        }
        while self.rs.len() >= self.cfg.rs_entries {
            let freed = self.rs.pop_front().expect("rs nonempty");
            dispatch = dispatch.max(freed);
        }
        // Retire bookkeeping entries that are already done.
        while self.rob.front().is_some_and(|&c| c < dispatch) {
            self.rob.pop_front();
        }
        while self.rs.front().is_some_and(|&c| c < dispatch) {
            self.rs.pop_front();
        }
        self.front_cycle = self.front_cycle.max(dispatch);

        // ---- Operand readiness ------------------------------------------
        let mut ready = dispatch + 1;
        for src in e.instr.sources().iter().flatten() {
            ready = ready.max(self.reg_ready[src.index()]);
        }
        if let Some(m) = e.mem {
            if !m.is_store {
                for q in (m.addr / 8)..=((m.addr + m.width - 1) / 8) {
                    if let Some(&r) = self.store_ready.get(&q) {
                        ready = ready.max(r);
                    }
                }
            }
        }

        // ---- Issue -------------------------------------------------------
        // `ready > front_cycle` here, and the front only advances, so
        // `front_cycle + 1` lower-bounds every future probe: slots tagged
        // below it are reclaimable.
        let live_floor = self.front_cycle + 1;
        let issue = {
            let c = self.issue_use.reserve(self.cfg.width, ready, live_floor);
            if e.mem.is_some() {
                self.mem_use.reserve(self.cfg.mem_ports, c, live_floor)
            } else {
                c
            }
        };
        self.rs.push_back(issue);

        // ---- Execute -----------------------------------------------------
        let latency = match (&e.instr, e.mem) {
            (_, Some(m)) => self.mem.data_access(m.addr, m.is_store),
            (Instr::Alu { op, .. }, None) => op.latency(),
            _ => 1,
        };
        let done = issue + latency;
        if let Some(d) = e.instr.dest() {
            self.reg_ready[d.index()] = done;
        }
        if let Some(m) = e.mem {
            if m.is_store {
                for q in (m.addr / 8)..=((m.addr + m.width - 1) / 8) {
                    self.store_ready.insert(q, done);
                }
            }
        }

        // ---- Commit (in order) --------------------------------------------
        let mut commit = done.max(self.commit_cycle);
        if commit > self.commit_cycle {
            self.commit_cycle = commit;
            self.commit_slots = self.cfg.commit_width;
        }
        if self.commit_slots == 0 {
            self.commit_cycle += 1;
            self.commit_slots = self.cfg.commit_width;
            commit = self.commit_cycle;
        }
        self.commit_slots -= 1;
        self.last_commit = commit;
        self.rob.push_back(commit);

        // ---- Redirects -----------------------------------------------------
        if let Some(b) = e.branch {
            if e.fetched {
                let mispredict = match b.kind {
                    BranchKind::Conditional => !self.pred.predict_and_update(e.pc, b.taken),
                    BranchKind::Direct => false,
                    BranchKind::Indirect => !self.pred.predict_indirect(e.pc, b.target),
                    BranchKind::Call => {
                        self.pred.push_return(e.pc + 4);
                        match e.instr {
                            Instr::Jmp { .. } => !self.pred.predict_indirect(e.pc, b.target),
                            _ => false,
                        }
                    }
                    BranchKind::Return => !self.pred.predict_return(b.target),
                };
                if mispredict {
                    self.stats.mispredicts += 1;
                    self.redirect(done + self.cfg.mispredict_penalty);
                } else if b.taken {
                    // Predicted-taken branch ends the fetch group.
                    self.front_cycle += 1;
                    self.front_slots = self.cfg.width;
                    self.cur_line = u64::MAX;
                }
            }
        }
        if let Some(kind) = e.flush {
            let suppressed = self.cfg.multithreaded_dise_calls
                && matches!(kind, FlushKind::DiseCall | FlushKind::DiseRet);
            if !suppressed {
                self.stats.dise_flushes += 1;
                self.redirect(done + self.cfg.dise_flush_penalty);
            }
        }

        commit
    }

    /// Charge a debugger transition: the pipeline is flushed and the
    /// application stalls for `cost` cycles (use
    /// [`CpuConfig::debugger_transition_cost`] for spurious transitions;
    /// masked transitions are free per the paper's methodology).
    pub fn debugger_stall(&mut self, cost: u64) {
        self.stats.debugger_stalls += 1;
        self.stats.debugger_stall_cycles += cost;
        let resume = self.last_commit + cost;
        self.commit_cycle = self.commit_cycle.max(resume);
        self.redirect(resume);
    }

    /// Close out the run and return the statistics.
    pub fn finish(&mut self) -> RunStats {
        self.stats.cycles = self.last_commit;
        self.stats
    }
}

/// A batch of timing models replaying one functional record stream —
/// the single-pass multi-config engine behind the sensitivity sweeps:
/// the [`Executor`](crate::Executor) produces its program-order
/// [`Exec`] stream once, and every model in the batch accounts it under
/// its own [`CpuConfig`].
///
/// Per-model state (memory hierarchy, branch predictor, windows) is
/// fully isolated; only the *functional* stream is shared, so a batch
/// of one is cycle-identical to driving a lone [`Timing`].
#[derive(Clone, Debug)]
pub struct TimingBatch {
    models: Vec<Timing>,
}

impl TimingBatch {
    /// One fresh model per configuration, in the given order.
    pub fn new(cfgs: &[CpuConfig]) -> TimingBatch {
        TimingBatch { models: cfgs.iter().map(|c| Timing::new(*c)).collect() }
    }

    /// Number of models in the batch.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when the batch holds no models.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The models, in construction order.
    pub fn models(&self) -> &[Timing] {
        &self.models
    }

    /// Account one instruction in every model.
    pub fn consume(&mut self, e: &Exec) {
        for t in &mut self.models {
            t.consume(e);
        }
    }

    /// Account a whole slice of consecutive instructions in every
    /// model, models-outer / records-inner: each model walks the slice
    /// while its own state is hot, eliminating the per-record batch
    /// dispatch. Per-model state is fully isolated, so this is
    /// cycle-identical to calling [`TimingBatch::consume`] once per
    /// record — valid only while no per-record side channel (a debugger
    /// stall) interleaves with the slice.
    pub fn consume_slice(&mut self, slice: &[Exec]) {
        for t in &mut self.models {
            for e in slice {
                t.consume(e);
            }
        }
    }

    /// Charge every model a spurious debugger transition at its own
    /// configured [`CpuConfig::debugger_transition_cost`].
    pub fn debugger_stall(&mut self) {
        for t in &mut self.models {
            t.debugger_stall(t.cfg.debugger_transition_cost);
        }
    }

    /// Close out the run: per-model statistics in construction order.
    pub fn finish(mut self) -> Vec<RunStats> {
        self.models.iter_mut().map(Timing::finish).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Branch, Event, MemOp};
    use dise_isa::{AluOp, Operand, Reg};

    fn cfg() -> CpuConfig {
        CpuConfig::default()
    }

    fn plain_alu(pc: u64, rd: u8, ra: u8) -> Exec {
        Exec {
            pc,
            disepc: 0,
            in_dise_call: false,
            instr: Instr::Alu {
                op: AluOp::Add,
                rd: Reg::gpr(rd),
                ra: Reg::gpr(ra),
                rb: Operand::Imm(1),
            },
            fetched: true,
            branch: None,
            mem: None,
            flush: None,
            event: None,
        }
    }

    #[test]
    fn independent_alus_reach_full_width() {
        let mut t = Timing::new(cfg());
        // 4000 independent single-cycle ALU ops: IPC should approach 4.
        for i in 0..4000u64 {
            let e = plain_alu(0x10_0000 + (i % 16) * 4, (i % 8) as u8, 20);
            t.consume(&e);
        }
        let s = t.finish();
        assert!(s.ipc() > 3.0, "ipc = {}", s.ipc());
    }

    #[test]
    fn dependent_chain_limits_to_one_ipc() {
        let mut t = Timing::new(cfg());
        for i in 0..2000u64 {
            // r1 = r1 + 1 repeatedly: serial dependence.
            let e = plain_alu(0x10_0000 + (i % 16) * 4, 1, 1);
            t.consume(&e);
        }
        let s = t.finish();
        assert!(s.ipc() < 1.2, "ipc = {}", s.ipc());
        assert!(s.ipc() > 0.8, "ipc = {}", s.ipc());
    }

    #[test]
    fn dise_flush_costs_cycles() {
        let base = {
            let mut t = Timing::new(cfg());
            for i in 0..1000u64 {
                t.consume(&plain_alu(0x10_0000 + (i % 16) * 4, (i % 8) as u8, 20));
            }
            t.finish().cycles
        };
        let flushed = {
            let mut t = Timing::new(cfg());
            for i in 0..1000u64 {
                let mut e = plain_alu(0x10_0000 + (i % 16) * 4, (i % 8) as u8, 20);
                if i % 10 == 0 {
                    e.flush = Some(FlushKind::DiseBranch);
                    e.fetched = false;
                    e.disepc = 1;
                }
                t.consume(&e);
            }
            t.finish().cycles
        };
        assert!(
            flushed > base + 500,
            "flushes should add ≈100×10 cycles: base {base}, flushed {flushed}"
        );
    }

    #[test]
    fn multithreading_suppresses_call_flushes() {
        let run = |mt: bool| {
            let mut c = cfg();
            c.multithreaded_dise_calls = mt;
            let mut t = Timing::new(c);
            for i in 0..1000u64 {
                let mut e = plain_alu(0x10_0000 + (i % 16) * 4, (i % 8) as u8, 20);
                if i % 10 == 0 {
                    e.flush = Some(FlushKind::DiseCall);
                }
                if i % 10 == 5 {
                    e.flush = Some(FlushKind::DiseRet);
                }
                t.consume(&e);
            }
            t.finish()
        };
        let without = run(false);
        let with = run(true);
        assert!(with.cycles < without.cycles);
        assert_eq!(with.dise_flushes, 0);
        assert!(without.dise_flushes > 0);
    }

    #[test]
    fn debugger_stall_dominates() {
        let mut t = Timing::new(cfg());
        t.consume(&plain_alu(0x10_0000, 1, 2));
        t.debugger_stall(100_000);
        t.consume(&plain_alu(0x10_0004, 3, 4));
        let s = t.finish();
        assert!(s.cycles >= 100_000);
        assert_eq!(s.debugger_stalls, 1);
        assert_eq!(s.debugger_stall_cycles, 100_000);
    }

    #[test]
    fn load_dependence_on_store_address() {
        // A load that reads the quad a prior store wrote must wait.
        let mut t = Timing::new(cfg());
        let mut store = plain_alu(0x10_0000, 1, 2);
        store.instr =
            Instr::Store { width: dise_isa::Width::Q, rs: Reg::gpr(1), base: Reg::gpr(2), disp: 0 };
        store.mem =
            Some(MemOp { addr: 0x100, width: 8, is_store: true, old_value: 0, new_value: 1 });
        let sc = t.consume(&store);

        let mut load = plain_alu(0x10_0004, 3, 4);
        load.instr =
            Instr::Load { width: dise_isa::Width::Q, rd: Reg::gpr(3), base: Reg::gpr(4), disp: 0 };
        load.mem =
            Some(MemOp { addr: 0x100, width: 8, is_store: false, old_value: 1, new_value: 1 });
        let lc = t.consume(&load);
        assert!(lc >= sc, "load commits no earlier than the store it depends on");
    }

    #[test]
    fn mispredicted_branches_add_bubbles() {
        // Random directions on one PC: predictor can't learn, frequent
        // mispredicts, low IPC.
        let run = |pattern: &dyn Fn(u64) -> bool| {
            let mut t = Timing::new(cfg());
            for i in 0..2000u64 {
                let taken = pattern(i);
                let mut e = plain_alu(0x10_0000, (i % 8) as u8, 20);
                e.instr = Instr::CondBr { cond: dise_isa::Cond::Eq, rs: Reg::gpr(20), disp: 4 };
                e.branch = Some(Branch { kind: BranchKind::Conditional, taken, target: 0x10_0040 });
                t.consume(&e);
                // a few straight-line instructions between branches
                for j in 0..3 {
                    t.consume(&plain_alu(0x10_0044 + j * 4, ((i + j) % 8) as u8, 21));
                }
            }
            t.finish()
        };
        let steady = run(&|_| true);
        // LFSR-ish pseudo-random pattern the 12-bit-history gshare cannot
        // fully capture.
        let chaotic = run(&|i| ((i * 2654435761u64) >> 13) & 1 == 1);
        assert!(chaotic.mispredicts > steady.mispredicts * 2);
        assert!(chaotic.cycles > steady.cycles);
    }

    #[test]
    fn icache_miss_slows_cold_code() {
        // Walk a large code footprint twice: first pass cold, second warm.
        let mut t = Timing::new(cfg());
        for i in 0..2000u64 {
            t.consume(&plain_alu(0x10_0000 + i * 4, (i % 8) as u8, 20));
        }
        let cold = t.finish().cycles;
        let mut t2 = Timing::new(cfg());
        // Prime.
        for i in 0..2000u64 {
            t2.consume(&plain_alu(0x10_0000 + i * 4, (i % 8) as u8, 20));
        }
        let primed = t2.finish().cycles;
        assert_eq!(cold, primed, "determinism");
        // Same loop within one line: no further misses.
        let mut t3 = Timing::new(cfg());
        for i in 0..2000u64 {
            t3.consume(&plain_alu(0x10_0000 + (i % 16) * 4, (i % 8) as u8, 20));
        }
        assert!(t3.finish().cycles < cold);
    }

    #[test]
    fn unfetched_instructions_skip_icache() {
        // Replacement instructions spanning many "lines" must not touch
        // the I-cache.
        let mut t = Timing::new(cfg());
        for i in 0..100u64 {
            let mut e = plain_alu(0x10_0000 + i * 256, (i % 8) as u8, 20);
            e.fetched = false;
            e.disepc = 1;
            t.consume(&e);
        }
        let (l1i, ..) = t.mem_system().stats();
        assert_eq!(l1i.accesses, 0);
    }

    /// The sliding-window reservation tables must reproduce the sparse
    /// map they replaced: same earliest-free-cycle answers under a
    /// pseudo-random mix of ready cycles, capacities and frontier jumps.
    #[test]
    fn use_table_matches_sparse_reference() {
        use std::collections::HashMap;
        fn reference(table: &mut HashMap<u64, u64>, cap: u64, ready: u64) -> u64 {
            let mut c = ready;
            loop {
                let used = table.entry(c).or_insert(0);
                if *used < cap {
                    *used += 1;
                    return c;
                }
                c += 1;
            }
        }
        let mut fast = UseTable::new();
        let mut slow = HashMap::new();
        let mut frontier = 0u64;
        let mut lcg = 1u64;
        for i in 0..200_000u64 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Mostly near-frontier readies; occasional operand stalls up
            // to ~200 cycles out; rare 100K debugger-stall jumps.
            let jump = if lcg.is_multiple_of(997) { 100_000 } else { i % 3 };
            frontier += jump;
            let ready = frontier + 1 + (lcg >> 32) % 200;
            let cap = 1 + lcg % 4;
            assert_eq!(
                fast.reserve(cap, ready, frontier + 1),
                reference(&mut slow, cap, ready),
                "diverged at step {i}"
            );
        }
    }

    #[test]
    fn batch_of_one_is_cycle_identical_to_lone_model() {
        let stream: Vec<Exec> = (0..3000u64)
            .map(|i| {
                let mut e = plain_alu(0x10_0000 + (i % 64) * 4, (i % 8) as u8, (i % 3) as u8);
                if i % 50 == 0 {
                    e.flush = Some(FlushKind::DiseBranch);
                }
                e
            })
            .collect();
        let mut lone = Timing::new(cfg());
        let mut batch = TimingBatch::new(&[cfg()]);
        for (i, e) in stream.iter().enumerate() {
            lone.consume(e);
            batch.consume(e);
            if i % 100 == 0 {
                lone.debugger_stall(cfg().debugger_transition_cost);
                batch.debugger_stall();
            }
        }
        assert_eq!(batch.finish(), vec![lone.finish()]);
    }

    #[test]
    fn batch_models_are_isolated_and_pay_their_own_costs() {
        let mut cheap = cfg();
        cheap.debugger_transition_cost = 1_000;
        let mut slow_mem = cfg();
        slow_mem.mem.mem_latency = 400;
        // [default, cheap-transition, slow-memory, default]: the two
        // default models must agree exactly (no cross-model leakage
        // through predictor, caches or windows), and the odd ones must
        // differ in the expected direction.
        let mut batch = TimingBatch::new(&[cfg(), cheap, slow_mem, cfg()]);
        let mut lone = Timing::new(cfg());
        for i in 0..2000u64 {
            let mut e = plain_alu(0x10_0000 + i * 4, (i % 8) as u8, 20);
            if i % 7 == 0 {
                e.instr = Instr::Load {
                    width: dise_isa::Width::Q,
                    rd: Reg::gpr((i % 8) as u8),
                    base: Reg::gpr(20),
                    disp: 0,
                };
                e.mem = Some(MemOp {
                    addr: 0x2000 + (i % 512) * 8,
                    width: 8,
                    is_store: false,
                    old_value: 0,
                    new_value: 0,
                });
            }
            lone.consume(&e);
            batch.consume(&e);
            if i % 400 == 0 {
                lone.debugger_stall(cfg().debugger_transition_cost);
                batch.debugger_stall();
            }
        }
        let lone = lone.finish();
        let all = batch.finish();
        assert_eq!(all[0], lone, "first default model matches the lone run");
        assert_eq!(all[3], lone, "second default model is untouched by its neighbours");
        assert!(all[1].cycles < all[0].cycles, "cheaper transitions finish sooner");
        assert_eq!(all[1].debugger_stall_cycles, 1_000 * all[1].debugger_stalls);
        assert!(all[2].cycles > all[0].cycles, "slower memory finishes later");
    }

    #[test]
    fn trap_event_field_is_inert_in_timing() {
        // Timing treats events as data; only debugger_stall charges cost.
        let mut t = Timing::new(cfg());
        let mut e = plain_alu(0x10_0000, 1, 2);
        e.event = Some(Event::Trap);
        t.consume(&e);
        let s = t.finish();
        assert_eq!(s.debugger_stalls, 0);
        assert!(s.cycles < 500, "only cold-miss latency, no stall: {}", s.cycles);
    }

    /// The invariant observer batching (`dise-debug`'s `ObserverBatch`)
    /// rests on: two streams identical except for their `event` fields
    /// cost exactly the same cycles. A protected virtual-memory run and
    /// the shared unprotected pass differ only in `ProtFault`
    /// annotations, so their timing must be bit-identical — debugger
    /// cost enters exclusively through [`Timing::debugger_stall`].
    /// Since the batch composes one independent [`TimingBatch`] per
    /// member — each member carrying its own watchpoint set — this is
    /// also what lets one pass serve members whose *watchpoints*
    /// differ: watchpoints only change which stalls a member charges,
    /// never what the shared stream costs.
    #[test]
    fn event_annotations_never_change_cycle_accounting() {
        let run = |annotate: bool| {
            let mut t = Timing::new(cfg());
            for i in 0..2000u64 {
                let mut e = plain_alu(0x10_0000 + (i % 64) * 4, (i % 8) as u8, 20);
                if i % 7 == 0 {
                    e.instr = Instr::Store {
                        width: dise_isa::Width::Q,
                        rs: Reg::gpr(1),
                        base: Reg::gpr(20),
                        disp: 0,
                    };
                    e.mem = Some(MemOp {
                        addr: 0x2000 + (i % 128) * 8,
                        width: 8,
                        is_store: true,
                        old_value: 0,
                        new_value: 1,
                    });
                    if annotate {
                        e.event = Some(Event::ProtFault { addr: 0x2000 });
                    }
                } else if annotate && i % 11 == 0 {
                    e.event = Some(Event::Trap);
                }
                t.consume(&e);
            }
            t.finish()
        };
        assert_eq!(run(false), run(true), "events are functional annotations, not costs");
    }
}
