//! Core configuration.

use dise_engine::EngineConfig;
use dise_mem::MemConfig;

use crate::predictor::BpredConfig;

/// Parameters of the simulated core.
///
/// Defaults reproduce the paper's machine (§5 "Simulator"): 4-way
/// dynamically scheduled, 12-stage pipeline, 128-entry ROB, 80
/// reservation stations, 8K hybrid predictor, 2K BTB, the `dise-mem`
/// hierarchy, a modestly configured DISE engine, and the 100,000-cycle
/// spurious-debugger-transition cost used throughout the evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CpuConfig {
    /// Instructions fetched/decoded/dispatched per cycle.
    pub width: u64,
    /// Instructions committed per cycle.
    pub commit_width: u64,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Reservation-station entries (window of dispatched, un-issued
    /// instructions).
    pub rs_entries: usize,
    /// Data-cache ports shared by loads and stores per cycle.
    pub mem_ports: u64,
    /// Front-end refill penalty of a branch mispredict (≈ pipeline
    /// depth before execute on the 12-stage pipe).
    pub mispredict_penalty: u64,
    /// Penalty of a DISE-internal redirect (taken DISE branch, DISE
    /// call/return, conventional taken branch inside a replacement
    /// sequence) — implemented with the mis-prediction recovery
    /// mechanism, so the same refill cost.
    pub dise_flush_penalty: u64,
    /// Stall charged for a *spurious* debugger transition
    /// (application→debugger→application round trip that does not reach
    /// the user). The paper measures 290K (gdb) and 513K (Visual Studio)
    /// cycles and conservatively models 100,000.
    pub debugger_transition_cost: u64,
    /// Execute the body of DISE-called functions on a second thread
    /// context, eliminating the call/return flushes (§4
    /// "Multithreading DISE function calls", evaluated in Fig. 8).
    pub multithreaded_dise_calls: bool,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// Branch predictor parameters.
    pub bpred: BpredConfig,
    /// DISE engine capacities.
    pub engine: EngineConfig,
}

impl Default for CpuConfig {
    fn default() -> CpuConfig {
        CpuConfig {
            width: 4,
            commit_width: 4,
            rob_entries: 128,
            rs_entries: 80,
            mem_ports: 2,
            mispredict_penalty: 10,
            dise_flush_penalty: 10,
            debugger_transition_cost: 100_000,
            multithreaded_dise_calls: false,
            mem: MemConfig::default(),
            bpred: BpredConfig::default(),
            engine: EngineConfig::PAPER,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CpuConfig::default();
        assert_eq!(c.width, 4);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.rs_entries, 80);
        assert_eq!(c.debugger_transition_cost, 100_000);
        assert_eq!(c.mem.mem_latency, 100);
        assert_eq!(c.engine.pattern_entries, 32);
        assert_eq!(c.engine.replacement_entries, 512);
        assert!(!c.multithreaded_dise_calls);
    }
}
