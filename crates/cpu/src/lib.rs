//! # dise-cpu — the cycle-level simulated machine
//!
//! This crate is the reproduction's stand-in for the paper's
//! SimpleScalar-based simulator: a dynamically scheduled 4-way
//! superscalar core with a 12-stage pipeline, 128-entry reorder buffer,
//! 80 reservation stations, an 8K-entry hybrid branch predictor with a
//! 2K-entry BTB, intelligent load speculation, and the `dise-mem`
//! hierarchy — plus, crucially, a **DISE expansion hook at decode**.
//!
//! The simulator is split into two cooperating halves:
//!
//! * [`Executor`] — the *functional* half. It owns the architectural
//!   state (48-register file including the DISE bank, PC, memory, the
//!   DISE [`Engine`](dise_engine::Engine) and its DISEPC/replacement
//!   context) and produces the exact dynamic instruction stream,
//!   one [`Exec`] record per instruction, annotated with branch
//!   outcomes, memory effects, DISE flush causes and debugger events.
//! * [`Timing`] — the *cycle-accounting* half. It consumes [`Exec`]
//!   records in program order and models fetch grouping, I-cache and
//!   D-cache latency, branch prediction, window occupancy, issue and
//!   memory ports, in-order commit, and every flavour of pipeline flush
//!   (mispredicts; taken DISE branches; DISE call/return; debugger
//!   transitions).
//!
//! Replacement-sequence instructions are **not fetched**: they consume
//!   decode/dispatch bandwidth but no I-cache capacity and are never
//!   predicted, exactly the paper's cost model for DISE.
//!
//! ```
//! use dise_asm::{parse_asm, Layout};
//! use dise_cpu::Machine;
//!
//! let prog = parse_asm("
//!     start:  lda r1, 100(zero)
//!     loop:   subq r1, 1, r1
//!             bgt r1, loop
//!             halt
//! ").unwrap().assemble(Layout::default()).unwrap();
//!
//! let mut m = Machine::from_program(&prog);
//! let stats = m.run();
//! assert_eq!(stats.instructions, 1 + 100 * 2 + 1);
//! assert!(stats.cycles > 0);
//! ```

mod config;
mod exec;
mod predictor;
mod timing;
mod trace;

pub use config::CpuConfig;
pub use exec::{
    chunk_capacity_from_env, BlockCacheStats, Branch, BranchKind, ChunkSummary, Event, Exec,
    ExecChunk, ExecError, Executor, ExecutorCheckpoint, FlushKind, ForkConfigError, MemOp,
    NUM_REGS,
};
pub use predictor::{BpredConfig, Predictor};
pub use timing::{RunStats, Timing, TimingBatch};
pub use trace::{
    program_fingerprint, replay_timing, ExecDecoder, ExecEncoder, TraceReader, TraceStats,
    TraceWriter,
};

use dise_asm::Program;

/// Convenience bundle: an [`Executor`] and a [`Timing`] model driven
/// together, for undebugged runs and simple experiments. Debugger
/// backends in `dise-debug` drive the two halves manually instead.
#[derive(Clone, Debug)]
pub struct Machine {
    /// The functional half.
    pub exec: Executor,
    /// The timing half.
    pub timing: Timing,
}

impl Machine {
    /// Build a machine with the paper's default configuration, load the
    /// program, and point the PC at its entry.
    pub fn from_program(prog: &Program) -> Machine {
        Machine::with_config(prog, CpuConfig::default())
    }

    /// Build a machine with an explicit configuration.
    pub fn with_config(prog: &Program, config: CpuConfig) -> Machine {
        Machine { exec: Executor::from_program(prog, config), timing: Timing::new(config) }
    }

    /// Run until `halt` (or an execution error), returning the final
    /// statistics. Traps are charged nothing here — an undebugged
    /// application never traps; debugger drivers implement their own
    /// loops.
    pub fn run(&mut self) -> RunStats {
        self.run_limit(u64::MAX)
    }

    /// Run at most `max_instructions`.
    pub fn run_limit(&mut self, max_instructions: u64) -> RunStats {
        let mut n = 0;
        while !self.exec.is_halted() && n < max_instructions {
            let e = self.exec.step();
            self.timing.consume(&e);
            n += 1;
        }
        self.timing.finish()
    }
}
