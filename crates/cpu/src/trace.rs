//! Persistent `Exec` streams: the record codec plus [`TraceWriter`] /
//! [`TraceReader`] over the `dise-trace` container.
//!
//! ## The codec
//!
//! An `Exec` record is large in memory (~100 bytes) but carries almost
//! no information most of the time: kernel inner loops re-execute the
//! same few instructions with the PC advancing predictably and only
//! memory-operand values changing. The codec exploits that with three
//! token kinds over a small amount of shared state (`prev`, the last
//! record emitted, and `last`, the most recent record seen at each
//! `(pc, disepc)` position):
//!
//! - `RUN n` — the next `n` records are each *exactly* the remembered
//!   record at the position sequential flow predicts from its
//!   predecessor (fall-through, taken-branch target, or the next
//!   replacement-sequence slot). Straight-line re-execution — the
//!   overwhelmingly common case — costs amortised fractions of a byte
//!   per record.
//! - `SAME` — the record equals the remembered record at its position,
//!   but control arrived there unpredictably; costs a PC delta.
//! - `FULL` — anything else: field-by-field delta encoding against the
//!   remembered record at this position, with presence flags so absent
//!   options cost nothing.
//!
//! The decoder maintains the same state machine, so both sides agree on
//! every prediction without any side channel; round-trips are
//! bit-identical by construction and the conformance suite pins it.
//!
//! ## Fingerprints
//!
//! A trace is only replayable against the exact program image that
//! produced it. [`program_fingerprint`] hashes everything that
//! determines the functional stream (text, data, entry, stack top);
//! the writer stamps it into the container header and
//! [`TraceReader::open`] rejects a mismatch loudly
//! ([`TraceError::FingerprintMismatch`]) — a stale trace must never
//! silently replay wrong.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use dise_asm::Program;
use dise_isa::{decode as decode_instr, encode as encode_instr, INSTR_BYTES};
use dise_trace::wire::{apply_delta, delta, read_uvarint, write_uvarint};
use dise_trace::{read_chunk_file, ring, ChunkWriter, Consumer, TraceError};

use crate::exec::{Branch, BranchKind, Event, Exec, ExecChunk, ExecError, FlushKind, MemOp};
use crate::{chunk_capacity_from_env, CpuConfig, RunStats, TimingBatch};

/// In-flight capacity of the producer→writer ring: large enough that
/// the session thread almost never stalls on the encoder, small enough
/// (~1.6 MiB of `Exec`) to stay a rounding error next to the simulated
/// memory image.
const RING_CAPACITY: usize = 16 * 1024;

/// Target size of one compressed data chunk. Chunking is pure byte
/// segmentation — the codec state runs straight across chunk seams —
/// so this only bounds the blast radius of a CRC failure.
const CHUNK_BYTES: usize = 64 * 1024;

const OP_RUN: u8 = 0;
const OP_SAME: u8 = 1;
const OP_FULL: u8 = 2;

/// Fingerprint of everything that determines a program's functional
/// `Exec` stream: text placement and words, data placement and bytes,
/// entry point, and initial stack top. (Symbols and statement markers
/// are debugger-side metadata and deliberately excluded.) FNV-1a, 64
/// bits.
pub fn program_fingerprint(prog: &Program) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    };
    eat(&prog.text_base.to_le_bytes());
    for w in &prog.text {
        eat(&w.to_le_bytes());
    }
    eat(&prog.data_base.to_le_bytes());
    eat(&prog.data);
    eat(&prog.entry.to_le_bytes());
    eat(&prog.stack_top.to_le_bytes());
    h
}

/// The position sequential flow predicts after `e`: the taken-branch
/// target, the next slot of an in-progress replacement sequence, or
/// plain fall-through. Both codec sides compute this identically.
fn predicted_next(e: &Exec) -> (u64, u16) {
    if let Some(b) = e.branch {
        if b.taken {
            return (b.target, 0);
        }
    }
    if e.disepc > 0 {
        (e.pc, e.disepc.wrapping_add(1))
    } else {
        (e.pc.wrapping_add(INSTR_BYTES), 0)
    }
}

fn branch_kind_code(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Direct => 1,
        BranchKind::Indirect => 2,
        BranchKind::Call => 3,
        BranchKind::Return => 4,
    }
}

fn branch_kind_from(code: u8) -> Result<BranchKind, String> {
    Ok(match code {
        0 => BranchKind::Conditional,
        1 => BranchKind::Direct,
        2 => BranchKind::Indirect,
        3 => BranchKind::Call,
        4 => BranchKind::Return,
        other => return Err(format!("unknown branch kind {other}")),
    })
}

fn flush_code(kind: FlushKind) -> u8 {
    match kind {
        FlushKind::DiseBranch => 0,
        FlushKind::DiseCall => 1,
        FlushKind::DiseRet => 2,
        FlushKind::ReplacementBranch => 3,
    }
}

fn flush_from(code: u8) -> Result<FlushKind, String> {
    Ok(match code {
        0 => FlushKind::DiseBranch,
        1 => FlushKind::DiseCall,
        2 => FlushKind::DiseRet,
        3 => FlushKind::ReplacementBranch,
        other => return Err(format!("unknown flush kind {other}")),
    })
}

fn exec_error_parts(e: ExecError) -> (u8, u64) {
    match e {
        ExecError::BadInstruction(pc) => (0, pc),
        ExecError::DiseProtection(pc) => (1, pc),
        ExecError::StrayDiseReturn(pc) => (2, pc),
        ExecError::DiseBranchOutOfSequence(pc) => (3, pc),
        ExecError::NestedDiseCall(pc) => (4, pc),
    }
}

fn exec_error_from(code: u8, pc: u64) -> Result<ExecError, String> {
    Ok(match code {
        0 => ExecError::BadInstruction(pc),
        1 => ExecError::DiseProtection(pc),
        2 => ExecError::StrayDiseReturn(pc),
        3 => ExecError::DiseBranchOutOfSequence(pc),
        4 => ExecError::NestedDiseCall(pc),
        other => return Err(format!("unknown exec error {other}")),
    })
}

/// Codec state shared (by construction, not by channel) between the
/// encoder and the decoder.
#[derive(Default)]
struct CodecState {
    /// The last record coded, for PC deltas and run prediction.
    prev: Option<Exec>,
    /// The most recent record seen at each `(pc, disepc)` position.
    last: HashMap<(u64, u16), Exec>,
}

/// Streaming `Exec` → bytes encoder. Feed records with
/// [`ExecEncoder::encode`]; call [`ExecEncoder::finish`] once at end of
/// stream to flush a pending run token.
#[derive(Default)]
pub struct ExecEncoder {
    state: CodecState,
    run: u64,
}

impl ExecEncoder {
    /// A fresh encoder at stream start.
    pub fn new() -> ExecEncoder {
        ExecEncoder::default()
    }

    /// Append the encoding of `e` to `out` (possibly zero bytes now:
    /// run tokens are emitted lazily when the run breaks or the stream
    /// finishes).
    pub fn encode(&mut self, e: &Exec, out: &mut Vec<u8>) {
        let key = (e.pc, e.disepc);
        let predicted = self.state.prev.as_ref().map(predicted_next);
        let same = self.state.last.get(&key) == Some(e);
        if same && predicted == Some(key) {
            self.run += 1;
        } else {
            self.flush_run(out);
            let prev_pc = self.state.prev.map_or(0, |p| p.pc);
            if same {
                out.push(OP_SAME);
                write_uvarint(out, delta(prev_pc, e.pc));
                write_uvarint(out, u64::from(e.disepc));
            } else {
                self.encode_full(e, prev_pc, out);
            }
        }
        self.state.last.insert(key, *e);
        self.state.prev = Some(*e);
    }

    /// Flush the pending run token at end of stream.
    pub fn finish(&mut self, out: &mut Vec<u8>) {
        self.flush_run(out);
    }

    fn flush_run(&mut self, out: &mut Vec<u8>) {
        if self.run > 0 {
            out.push(OP_RUN);
            write_uvarint(out, self.run);
            self.run = 0;
        }
    }

    fn encode_full(&self, e: &Exec, prev_pc: u64, out: &mut Vec<u8>) {
        let base = self.state.last.get(&(e.pc, e.disepc));
        let instr_same = base.is_some_and(|b| b.instr == e.instr);
        let mut flags = 0u8;
        flags |= u8::from(e.fetched);
        flags |= u8::from(e.in_dise_call) << 1;
        flags |= u8::from(e.branch.is_some()) << 2;
        flags |= u8::from(e.mem.is_some()) << 3;
        flags |= u8::from(e.flush.is_some()) << 4;
        flags |= u8::from(e.event.is_some()) << 5;
        flags |= u8::from(instr_same) << 6;
        out.push(OP_FULL);
        out.push(flags);
        write_uvarint(out, delta(prev_pc, e.pc));
        write_uvarint(out, u64::from(e.disepc));
        if !instr_same {
            out.extend_from_slice(&encode_instr(&e.instr).to_le_bytes());
        }
        if let Some(b) = e.branch {
            out.push(branch_kind_code(b.kind) | (u8::from(b.taken) << 3));
            write_uvarint(out, delta(e.pc, b.target));
        }
        if let Some(m) = e.mem {
            out.push(u8::from(m.is_store));
            write_uvarint(out, m.width);
            // Memory operands delta against the previous access at the
            // same position: array walks and counters become one byte.
            if let Some(lm) = base.and_then(|b| b.mem) {
                write_uvarint(out, delta(lm.addr, m.addr));
                write_uvarint(out, delta(lm.old_value, m.old_value));
                write_uvarint(out, delta(lm.new_value, m.new_value));
            } else {
                write_uvarint(out, m.addr);
                write_uvarint(out, m.old_value);
                write_uvarint(out, m.new_value);
            }
        }
        if let Some(fl) = e.flush {
            out.push(flush_code(fl));
        }
        if let Some(ev) = e.event {
            match ev {
                Event::Trap => out.push(0),
                Event::ProtFault { addr } => {
                    out.push(1);
                    write_uvarint(out, addr);
                }
                Event::Halted => out.push(2),
                Event::Error(err) => {
                    out.push(3);
                    let (code, pc) = exec_error_parts(err);
                    out.push(code);
                    write_uvarint(out, pc);
                }
            }
        }
    }
}

/// Streaming bytes → `Exec` decoder — the exact mirror of
/// [`ExecEncoder`]. Errors are returned as human-readable reasons; the
/// caller wraps them in [`TraceError::Malformed`] with the file path.
#[derive(Default)]
pub struct ExecDecoder {
    state: CodecState,
    run: u64,
}

impl ExecDecoder {
    /// A fresh decoder at stream start.
    pub fn new() -> ExecDecoder {
        ExecDecoder::default()
    }

    /// Decode the next record from `buf` at `*pos`, or `Ok(None)` at
    /// end of stream.
    ///
    /// # Errors
    ///
    /// A description of the inconsistency when the byte stream does not
    /// decode — possible only for hand-damaged input, since CRC
    /// validation happens before decoding.
    pub fn next(&mut self, buf: &[u8], pos: &mut usize) -> Result<Option<Exec>, String> {
        if self.run > 0 {
            self.run -= 1;
            return self.replay_predicted().map(Some);
        }
        if *pos >= buf.len() {
            return Ok(None);
        }
        let op = buf[*pos];
        *pos += 1;
        match op {
            OP_RUN => {
                let n = read_uvarint(buf, pos).ok_or("truncated run token")?;
                if n == 0 {
                    return Err("empty run token".to_string());
                }
                self.run = n - 1;
                self.replay_predicted().map(Some)
            }
            OP_SAME => {
                let prev_pc = self.state.prev.map_or(0, |p| p.pc);
                let pc = apply_delta(prev_pc, read_uvarint(buf, pos).ok_or("truncated SAME pc")?);
                let disepc = read_uvarint(buf, pos).ok_or("truncated SAME disepc")?;
                let disepc =
                    u16::try_from(disepc).map_err(|_| format!("disepc {disepc} out of range"))?;
                let e = *self
                    .state
                    .last
                    .get(&(pc, disepc))
                    .ok_or("SAME token for a position never seen")?;
                self.state.prev = Some(e);
                Ok(Some(e))
            }
            OP_FULL => self.decode_full(buf, pos).map(Some),
            other => Err(format!("unknown opcode {other}")),
        }
    }

    fn replay_predicted(&mut self) -> Result<Exec, String> {
        let prev = self.state.prev.as_ref().ok_or("run token before any record")?;
        let key = predicted_next(prev);
        let e = *self.state.last.get(&key).ok_or("run token reached a position never seen")?;
        self.state.prev = Some(e);
        Ok(e)
    }

    #[allow(clippy::too_many_lines)]
    fn decode_full(&mut self, buf: &[u8], pos: &mut usize) -> Result<Exec, String> {
        let flags = *buf.get(*pos).ok_or("truncated FULL flags")?;
        *pos += 1;
        let prev_pc = self.state.prev.map_or(0, |p| p.pc);
        let pc = apply_delta(prev_pc, read_uvarint(buf, pos).ok_or("truncated FULL pc")?);
        let disepc = read_uvarint(buf, pos).ok_or("truncated FULL disepc")?;
        let disepc = u16::try_from(disepc).map_err(|_| format!("disepc {disepc} out of range"))?;
        let base = self.state.last.get(&(pc, disepc)).copied();
        let instr = if flags & (1 << 6) != 0 {
            base.ok_or("instr-same flag for a position never seen")?.instr
        } else {
            if buf.len() - *pos < 4 {
                return Err("truncated FULL instruction word".to_string());
            }
            let word = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().expect("4 bytes"));
            *pos += 4;
            decode_instr(word).map_err(|e| format!("undecodable instruction word: {e:?}"))?
        };
        let branch = if flags & (1 << 2) != 0 {
            let b = *buf.get(*pos).ok_or("truncated branch byte")?;
            *pos += 1;
            let target = apply_delta(pc, read_uvarint(buf, pos).ok_or("truncated branch target")?);
            Some(Branch { kind: branch_kind_from(b & 0x7)?, taken: b & (1 << 3) != 0, target })
        } else {
            None
        };
        let mem = if flags & (1 << 3) != 0 {
            let m = *buf.get(*pos).ok_or("truncated mem byte")?;
            *pos += 1;
            let width = read_uvarint(buf, pos).ok_or("truncated mem width")?;
            let (addr, old_value, new_value) = if let Some(lm) = base.and_then(|b| b.mem) {
                (
                    apply_delta(lm.addr, read_uvarint(buf, pos).ok_or("truncated mem addr")?),
                    apply_delta(
                        lm.old_value,
                        read_uvarint(buf, pos).ok_or("truncated mem old value")?,
                    ),
                    apply_delta(
                        lm.new_value,
                        read_uvarint(buf, pos).ok_or("truncated mem new value")?,
                    ),
                )
            } else {
                (
                    read_uvarint(buf, pos).ok_or("truncated mem addr")?,
                    read_uvarint(buf, pos).ok_or("truncated mem old value")?,
                    read_uvarint(buf, pos).ok_or("truncated mem new value")?,
                )
            };
            Some(MemOp { addr, width, is_store: m & 1 != 0, old_value, new_value })
        } else {
            None
        };
        let flush = if flags & (1 << 4) != 0 {
            let fl = *buf.get(*pos).ok_or("truncated flush byte")?;
            *pos += 1;
            Some(flush_from(fl)?)
        } else {
            None
        };
        let event = if flags & (1 << 5) != 0 {
            let tag = *buf.get(*pos).ok_or("truncated event tag")?;
            *pos += 1;
            Some(match tag {
                0 => Event::Trap,
                1 => Event::ProtFault {
                    addr: read_uvarint(buf, pos).ok_or("truncated fault address")?,
                },
                2 => Event::Halted,
                3 => {
                    let code = *buf.get(*pos).ok_or("truncated error code")?;
                    *pos += 1;
                    let pc = read_uvarint(buf, pos).ok_or("truncated error pc")?;
                    Event::Error(exec_error_from(code, pc)?)
                }
                other => return Err(format!("unknown event tag {other}")),
            })
        } else {
            None
        };
        let e = Exec {
            pc,
            disepc,
            in_dise_call: flags & (1 << 1) != 0,
            instr,
            fetched: flags & 1 != 0,
            branch,
            mem,
            flush,
            event,
        };
        self.state.last.insert((pc, disepc), e);
        self.state.prev = Some(e);
        Ok(e)
    }
}

/// Size and throughput accounting for one recorded (or opened) trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceStats {
    /// Records in the stream.
    pub records: u64,
    /// What the stream would occupy uncompressed, at
    /// `size_of::<Exec>()` per record.
    pub raw_bytes: u64,
    /// Actual on-disk file size, container overhead included.
    pub file_bytes: u64,
}

impl TraceStats {
    /// Compression ratio versus the in-memory record size.
    pub fn compression(&self) -> f64 {
        if self.file_bytes == 0 {
            return 0.0;
        }
        self.raw_bytes as f64 / self.file_bytes as f64
    }
}

fn raw_bytes(records: u64) -> u64 {
    records * std::mem::size_of::<Exec>() as u64
}

struct WriterOut {
    records: u64,
    file_bytes: u64,
}

/// Records an `Exec` stream to a trace file.
///
/// The session thread calls [`TraceWriter::record`] per step; records
/// cross a bounded SPSC ring to a dedicated writer thread that encodes
/// and persists them, so the producer only ever waits when it is more
/// than a full ring ahead of the disk (back-pressure, not unbounded
/// buffering). Until [`TraceWriter::finish`] renames it into place the
/// trace exists only as a staged temporary, so an abandoned or crashed
/// recording publishes nothing.
pub struct TraceWriter {
    producer: Option<dise_trace::Producer<Exec>>,
    worker: Option<JoinHandle<Result<WriterOut, TraceError>>>,
    completed: Arc<AtomicBool>,
    records: u64,
    path: PathBuf,
}

impl TraceWriter {
    /// Open the staged file (surfacing an unwritable trace directory
    /// immediately, before any simulation work) and start the writer
    /// thread.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the staged file or the thread cannot be
    /// created.
    pub fn create(path: &Path, fingerprint: u64) -> Result<TraceWriter, TraceError> {
        let store = ChunkWriter::create(path, fingerprint)?;
        let (producer, consumer) = ring::<Exec>(RING_CAPACITY);
        let completed = Arc::new(AtomicBool::new(false));
        let completed_for_worker = Arc::clone(&completed);
        let worker = std::thread::Builder::new()
            .name("dise-trace-writer".to_string())
            .spawn(move || write_stream(store, consumer, &completed_for_worker))
            .map_err(|e| TraceError::Io {
                path: path.display().to_string(),
                error: format!("spawning writer thread: {e}"),
            })?;
        Ok(TraceWriter {
            producer: Some(producer),
            worker: Some(worker),
            completed,
            records: 0,
            path: path.to_path_buf(),
        })
    }

    /// Enqueue one record for the writer thread.
    ///
    /// # Panics
    ///
    /// Panics — loudly, with the writer thread's error — if that thread
    /// died (e.g. the disk filled mid-recording). A recording the
    /// caller asked for must never silently become a non-recording.
    pub fn record(&mut self, e: &Exec) {
        self.records += 1;
        let producer = self.producer.as_mut().expect("record() before finish()");
        if producer.push(*e).is_err() {
            let reason = match self.worker.take().map(JoinHandle::join) {
                Some(Ok(Err(err))) => err.to_string(),
                Some(Err(panic)) => std::panic::resume_unwind(panic),
                _ => "writer thread exited unexpectedly".to_string(),
            };
            panic!("trace recording to {} failed: {reason}", self.path.display());
        }
    }

    /// Seal the stream: drain the ring, write the terminal chunk, and
    /// rename the staged file into place.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when encoding or persisting failed; the
    /// staged file is discarded and nothing is published.
    pub fn finish(mut self) -> Result<TraceStats, TraceError> {
        // Mark completion *before* hanging up, so the writer thread can
        // distinguish a sealed stream from an abandoned one.
        self.completed.store(true, Ordering::Release);
        drop(self.producer.take());
        let out = match self.worker.take().expect("finish() runs once").join() {
            Ok(res) => res?,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        debug_assert_eq!(out.records, self.records, "ring must deliver every record");
        Ok(TraceStats {
            records: out.records,
            raw_bytes: raw_bytes(out.records),
            file_bytes: out.file_bytes,
        })
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        // Abandonment path (a recording task dropped mid-run): hang up
        // without marking completion; the writer thread discards the
        // staged file, so no truncated trace is ever published.
        drop(self.producer.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn write_stream(
    mut store: ChunkWriter,
    mut consumer: Consumer<Exec>,
    completed: &AtomicBool,
) -> Result<WriterOut, TraceError> {
    let mut encoder = ExecEncoder::new();
    let mut out = Vec::with_capacity(2 * CHUNK_BYTES);
    let mut records = 0u64;
    while let Some(e) = consumer.pop() {
        encoder.encode(&e, &mut out);
        records += 1;
        if out.len() >= CHUNK_BYTES {
            store.chunk(&out)?;
            out.clear();
        }
    }
    if !completed.load(Ordering::Acquire) {
        // Producer hung up without sealing: abandoned recording.
        // Dropping `store` discards the staged file.
        return Err(TraceError::Io {
            path: "(unpublished)".to_string(),
            error: "recording abandoned before completion".to_string(),
        });
    }
    encoder.finish(&mut out);
    if !out.is_empty() {
        store.chunk(&out)?;
    }
    let file_bytes = store.finish(records)?;
    Ok(WriterOut { records, file_bytes })
}

/// Replays an `Exec` stream from a trace file.
///
/// [`TraceReader::open`] validates everything eagerly — magic, version,
/// kernel fingerprint, every chunk CRC, terminal record count — so a
/// damaged or stale trace is rejected before a single record is
/// delivered; [`TraceReader::next`] then decodes lazily.
pub struct TraceReader {
    path: String,
    payload: Vec<u8>,
    pos: usize,
    decoder: ExecDecoder,
    delivered: u64,
    records: u64,
    fingerprint: u64,
    file_bytes: u64,
}

impl TraceReader {
    /// Open and validate `path`. Pass the fingerprint of the program
    /// about to be replayed to reject stale traces; `None` skips that
    /// check (inspection tools only — replayers must pass it).
    ///
    /// # Errors
    ///
    /// Every [`TraceError`] variant, per its documentation; notably
    /// [`TraceError::FingerprintMismatch`] for a well-formed trace of
    /// the wrong kernel.
    pub fn open(path: &Path, expected_fingerprint: Option<u64>) -> Result<TraceReader, TraceError> {
        let file = read_chunk_file(path)?;
        if let Some(expected) = expected_fingerprint {
            if expected != file.fingerprint {
                return Err(TraceError::FingerprintMismatch {
                    path: path.display().to_string(),
                    expected,
                    found: file.fingerprint,
                });
            }
        }
        Ok(TraceReader {
            path: path.display().to_string(),
            payload: file.payload,
            pos: 0,
            decoder: ExecDecoder::new(),
            delivered: 0,
            records: file.record_count,
            fingerprint: file.fingerprint,
            file_bytes: file.file_bytes,
        })
    }

    /// Decode the next record, or `Ok(None)` at end of stream.
    ///
    /// # Errors
    ///
    /// [`TraceError::Malformed`] when the (CRC-clean) bytes do not
    /// decode or the stream length disagrees with the terminal record
    /// count.
    // Not `Iterator`: decoding is fallible, and callers must not be
    // able to skip a mid-stream error and keep iterating.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Exec>, TraceError> {
        let malformed = |reason: String| TraceError::Malformed { path: self.path.clone(), reason };
        match self.decoder.next(&self.payload, &mut self.pos) {
            Ok(Some(e)) => {
                self.delivered += 1;
                if self.delivered > self.records {
                    return Err(malformed(format!(
                        "stream holds more than the {} records its end chunk declares",
                        self.records
                    )));
                }
                Ok(Some(e))
            }
            Ok(None) => {
                if self.delivered != self.records {
                    return Err(malformed(format!(
                        "stream ended after {} of {} declared records",
                        self.delivered, self.records
                    )));
                }
                Ok(None)
            }
            Err(reason) => Err(malformed(reason)),
        }
    }

    /// Decode up to `max` records into `chunk` — the bulk-decode twin
    /// of [`TraceReader::next`] for slice-based fan-out. The chunk is a
    /// caller-owned scratch buffer reused across the whole replay, so
    /// decoding a stream costs no per-record heap traffic.
    ///
    /// `dirty` is consulted once per record, in decode order, and
    /// doubles as a per-record tee hook (the replay shadow memory rides
    /// on it). A record it claims is **not** pushed; decoding stops and
    /// the record is handed back so the caller can flush the buffered
    /// clean prefix first. Decoding also stops when the chunk fills or
    /// the stream ends — end of stream is the `(0, None)` return with
    /// an empty pushed prefix, and like [`TraceReader::next`] it is
    /// idempotent.
    ///
    /// Returns `(records decoded, dirty record if any)`; the dirty
    /// record counts toward the decoded total.
    ///
    /// # Errors
    ///
    /// [`TraceError::Malformed`], per [`TraceReader::next`].
    pub fn next_chunk(
        &mut self,
        chunk: &mut ExecChunk,
        max: u64,
        mut dirty: impl FnMut(&Exec) -> bool,
    ) -> Result<(u64, Option<Exec>), TraceError> {
        let mut n = 0u64;
        while n < max && !chunk.is_full() {
            let Some(e) = self.next()? else { break };
            n += 1;
            if dirty(&e) {
                return Ok((n, Some(e)));
            }
            chunk.push(e);
        }
        Ok((n, None))
    }

    /// Total records the trace declares.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The kernel fingerprint stamped in the header.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Size accounting for the opened trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            records: self.records,
            raw_bytes: raw_bytes(self.records),
            file_bytes: self.file_bytes,
        }
    }
}

/// Run a [`TimingBatch`] entirely from a stored trace: one stream read,
/// one [`RunStats`] per configuration, no functional execution at all.
///
/// # Errors
///
/// [`TraceError`] when the stream fails mid-decode (see
/// [`TraceReader::next`]).
pub fn replay_timing(
    reader: &mut TraceReader,
    cpus: &[CpuConfig],
) -> Result<Vec<RunStats>, TraceError> {
    let mut batch = TimingBatch::new(cpus);
    // Pure timing replay has no observers, so every record is clean:
    // decode whole chunks into one scratch buffer and account each as a
    // slice, models-outer / records-inner.
    let mut chunk = ExecChunk::with_capacity(chunk_capacity_from_env());
    loop {
        let (read, dirty) = reader.next_chunk(&mut chunk, u64::MAX, |_| false)?;
        debug_assert!(dirty.is_none(), "the never-dirty closure returned a record");
        batch.consume_slice(chunk.records());
        chunk.clear();
        if read == 0 {
            break;
        }
    }
    Ok(batch.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_isa::{Instr, Reg, Width};

    fn nop(pc: u64) -> Exec {
        Exec {
            pc,
            disepc: 0,
            in_dise_call: false,
            instr: Instr::Nop,
            fetched: true,
            branch: None,
            mem: None,
            flush: None,
            event: None,
        }
    }

    fn roundtrip(stream: &[Exec]) -> Vec<u8> {
        let mut enc = ExecEncoder::new();
        let mut out = Vec::new();
        for e in stream {
            enc.encode(e, &mut out);
        }
        enc.finish(&mut out);
        let mut dec = ExecDecoder::new();
        let mut pos = 0;
        for (i, e) in stream.iter().enumerate() {
            assert_eq!(dec.next(&out, &mut pos).expect("decodes"), Some(*e), "record {i}");
        }
        assert_eq!(dec.next(&out, &mut pos).expect("clean end"), None);
        assert_eq!(pos, out.len(), "every byte must be consumed");
        out
    }

    #[test]
    fn codec_round_trips_every_field_shape() {
        let mut stream = vec![nop(0x1000)];
        // A branch of every kind, taken and not.
        for (i, kind) in [
            BranchKind::Conditional,
            BranchKind::Direct,
            BranchKind::Indirect,
            BranchKind::Call,
            BranchKind::Return,
        ]
        .into_iter()
        .enumerate()
        {
            let mut e = nop(0x1000 + 4 * (i as u64 + 1));
            e.branch =
                Some(Branch { kind, taken: i % 2 == 0, target: 0x1000 + 4 * (i as u64 + 2) });
            stream.push(e);
        }
        // Memory ops: load, store, silent store; replacement sequence
        // positions; DISE-called code; every flush kind; every event.
        let mut e = nop(0x2000);
        e.mem = Some(MemOp { addr: 0x8000, width: 8, is_store: false, old_value: 7, new_value: 7 });
        stream.push(e);
        let mut e = nop(0x2000);
        e.mem = Some(MemOp { addr: 0x8008, width: 4, is_store: true, old_value: 7, new_value: 9 });
        stream.push(e);
        for (i, flush) in [
            FlushKind::DiseBranch,
            FlushKind::DiseCall,
            FlushKind::DiseRet,
            FlushKind::ReplacementBranch,
        ]
        .into_iter()
        .enumerate()
        {
            let mut e = nop(0x3000);
            e.disepc = i as u16 + 1;
            e.fetched = false;
            e.in_dise_call = i % 2 == 1;
            e.flush = Some(flush);
            stream.push(e);
        }
        for event in [
            Event::Trap,
            Event::ProtFault { addr: 0x9990 },
            Event::Halted,
            Event::Error(ExecError::BadInstruction(0x4000)),
            Event::Error(ExecError::DiseProtection(0x4004)),
            Event::Error(ExecError::StrayDiseReturn(0x4008)),
            Event::Error(ExecError::DiseBranchOutOfSequence(0x400c)),
            Event::Error(ExecError::NestedDiseCall(0x4010)),
        ] {
            let mut e = nop(0x4000);
            e.event = Some(event);
            stream.push(e);
        }
        roundtrip(&stream);
    }

    #[test]
    fn straight_line_reexecution_collapses_to_run_tokens() {
        // A two-instruction loop body repeated: after the first
        // iteration teaches the codec the loop, every later iteration
        // should cost only run-token bytes.
        let mut body = Vec::new();
        let mut e = nop(0x1000);
        e.branch = None;
        body.push(e);
        let mut e = nop(0x1004);
        e.branch = Some(Branch { kind: BranchKind::Conditional, taken: true, target: 0x1000 });
        body.push(e);
        let mut stream = Vec::new();
        for _ in 0..1000 {
            stream.extend_from_slice(&body);
        }
        let out = roundtrip(&stream);
        assert!(
            out.len() < 32,
            "1000 identical iterations must collapse to a handful of bytes, got {}",
            out.len()
        );
    }

    #[test]
    fn same_position_different_values_delta_cheaply() {
        // A store loop whose stored value changes every iteration: the
        // store record can never join a run, but its FULL encoding must
        // stay small via per-position deltas.
        let mut stream = Vec::new();
        for i in 0..1000u64 {
            let mut st = nop(0x1000);
            st.instr =
                Instr::Store { width: Width::Q, rs: Reg::gpr(1), base: Reg::gpr(2), disp: 0 };
            st.mem = Some(MemOp {
                addr: 0x8000,
                width: 8,
                is_store: true,
                old_value: 1000 - i,
                new_value: 1000 - i - 1,
            });
            stream.push(st);
            let mut br = nop(0x1004);
            br.branch = Some(Branch { kind: BranchKind::Conditional, taken: true, target: 0x1000 });
            stream.push(br);
        }
        let out = roundtrip(&stream);
        let per_iteration = out.len() as f64 / 1000.0;
        assert!(
            per_iteration < 12.0,
            "a counting store loop must cost ~order-10 bytes/iteration, got {per_iteration}"
        );
    }

    #[test]
    fn fingerprint_distinguishes_programs_and_is_stable() {
        use dise_asm::{parse_asm, Layout};
        let assemble = |src: &str| {
            parse_asm(src).expect("parses").assemble(Layout::default()).expect("assembles")
        };
        let a = assemble("start: halt\n");
        let b = assemble("start: nop\n halt\n");
        assert_eq!(program_fingerprint(&a), program_fingerprint(&a));
        assert_ne!(program_fingerprint(&a), program_fingerprint(&b));
    }
}
