//! The production store: bounded tables, matching, instantiation.

use std::fmt;

use dise_isa::{Instr, OpClass};

use crate::Production;

/// Capacity of the physical DISE controller.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EngineConfig {
    /// Maximum number of installed patterns.
    pub pattern_entries: usize,
    /// Total replacement-table capacity in instructions.
    pub replacement_entries: usize,
}

impl EngineConfig {
    /// The paper's "modestly configured" engine: a 32-entry pattern table
    /// and a 512-instruction replacement table.
    pub const PAPER: EngineConfig = EngineConfig { pattern_entries: 32, replacement_entries: 512 };
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig::PAPER
    }
}

/// Handle to an installed production.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ProductionId(usize);

/// Errors from [`Engine::install`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// The pattern table is full.
    PatternTableFull {
        /// Its capacity.
        capacity: usize,
    },
    /// The replacement table cannot hold the production's sequence.
    ReplacementTableFull {
        /// Its capacity.
        capacity: usize,
        /// Entries already in use.
        used: usize,
        /// Entries requested.
        requested: usize,
    },
    /// A template directive is incompatible with the production's own
    /// pattern (e.g. `T.IMM` under a pattern that matches non-memory
    /// instructions), which would fault at decode time.
    IncompatibleTemplate {
        /// Description of the mismatch.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::PatternTableFull { capacity } => {
                write!(f, "pattern table full ({capacity} entries)")
            }
            EngineError::ReplacementTableFull { capacity, used, requested } => {
                write!(f, "replacement table full ({used}/{capacity} used, {requested} requested)")
            }
            EngineError::IncompatibleTemplate { reason } => {
                write!(f, "template incompatible with pattern: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The DISE engine: a bounded store of [`Production`]s plus the
/// match/instantiate operation performed at decode.
///
/// The engine itself is architectural state only; the pipeline in
/// `dise-cpu` owns the DISE register file, the DISEPC, and the
/// expansion-disable flag used inside DISE-called functions.
#[derive(Clone, Debug, Default)]
pub struct Engine {
    config: EngineConfig,
    productions: Vec<Production>,
    /// Dynamic count of instructions produced by expansion.
    expanded_instructions: u64,
    /// Dynamic count of triggers matched.
    triggers: u64,
}

impl Engine {
    /// An engine with the given capacities.
    pub fn new(config: EngineConfig) -> Engine {
        Engine { config, ..Engine::default() }
    }

    /// An engine with the paper's capacities.
    pub fn with_paper_config() -> Engine {
        Engine::new(EngineConfig::PAPER)
    }

    /// The configured capacities.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Replacement-table entries currently in use.
    pub fn replacement_used(&self) -> usize {
        self.productions.iter().map(Production::replacement_len).sum()
    }

    /// Install a production.
    ///
    /// # Errors
    ///
    /// Fails when either table is full, or when a template directive can
    /// fault against instructions the pattern admits (checked up front so
    /// decode never faults).
    pub fn install(&mut self, production: Production) -> Result<ProductionId, EngineError> {
        if self.productions.len() == self.config.pattern_entries {
            return Err(EngineError::PatternTableFull { capacity: self.config.pattern_entries });
        }
        let used = self.replacement_used();
        let requested = production.replacement_len();
        if used + requested > self.config.replacement_entries {
            return Err(EngineError::ReplacementTableFull {
                capacity: self.config.replacement_entries,
                used,
                requested,
            });
        }
        // A pattern restricted to loads/stores guarantees memory-trigger
        // directives resolve; PC/codeword/unrestricted patterns do not.
        let memory_only =
            matches!(production.pattern().opclass, Some(OpClass::Load) | Some(OpClass::Store));
        if !memory_only {
            if let Some(t) = production.replacement().iter().find(|t| t.needs_memory_trigger()) {
                return Err(EngineError::IncompatibleTemplate {
                    reason: format!("{t:?} requires memory triggers but the pattern admits others"),
                });
            }
        }
        self.productions.push(production);
        Ok(ProductionId(self.productions.len() - 1))
    }

    /// Access an installed production.
    pub fn production(&self, id: ProductionId) -> Option<&Production> {
        self.productions.get(id.0)
    }

    /// Activate/deactivate a production (the debugger's fast
    /// enable/disable path — no code modification).
    pub fn set_active(&mut self, id: ProductionId, active: bool) {
        if let Some(p) = self.productions.get_mut(id.0) {
            p.set_active(active);
        }
    }

    /// Remove every production.
    pub fn clear(&mut self) {
        self.productions.clear();
    }

    /// Number of installed productions.
    pub fn len(&self) -> usize {
        self.productions.len()
    }

    /// True when no productions are installed.
    pub fn is_empty(&self) -> bool {
        self.productions.is_empty()
    }

    /// Find the matching production for the instruction at `pc`, if any;
    /// the most specific active pattern wins ties by installation order.
    pub fn matching(&self, pc: u64, instr: &Instr) -> Option<&Production> {
        self.productions
            .iter()
            .filter(|p| p.is_active() && p.pattern().matches(pc, instr))
            .max_by_key(|p| p.pattern().specificity())
    }

    /// Decode-stage expansion: returns the instantiated replacement
    /// sequence for a matching trigger, or `None` for unmatched
    /// instructions (which pass through unmodified).
    ///
    /// Statistics ([`Engine::stats`]) are updated on matches.
    pub fn expand(&mut self, pc: u64, instr: &Instr) -> Option<Vec<Instr>> {
        let seq = self.peek_expand(pc, instr)?;
        self.count_expansion(seq.len() as u64);
        Some(seq)
    }

    /// [`Engine::expand`] without the statistics update: instantiate the
    /// replacement for a matching trigger, touching no dynamic counters.
    ///
    /// The decoded-trace cache in `dise-cpu` uses this to fuse an
    /// expansion into a cached block once at build time; each *replay*
    /// of the fused step then accounts through
    /// [`Engine::count_expansion`], so [`Engine::stats`] reports the
    /// same dynamic counts whether a trigger was expanded at fetch or
    /// served from a block.
    pub fn peek_expand(&self, pc: u64, instr: &Instr) -> Option<Vec<Instr>> {
        let p = self.matching(pc, instr)?;
        // Install-time validation makes instantiation errors
        // unreachable; treat a residual mismatch as no-match rather
        // than corrupting the stream.
        p.instantiate(instr).ok()
    }

    /// Record one trigger match that emitted `instructions` replacement
    /// instructions (the dynamic-count half of [`Engine::expand`], for
    /// replays of sequences instantiated via [`Engine::peek_expand`]).
    pub fn count_expansion(&mut self, instructions: u64) {
        self.triggers += 1;
        self.expanded_instructions += instructions;
    }

    /// `(triggers_matched, instructions_emitted)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.triggers, self.expanded_instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pattern, TDisp, TOperand, TReg, TemplateInst};
    use dise_isa::{AluOp, Reg, Width};

    fn store() -> Instr {
        Instr::Store { width: Width::Q, rs: Reg::gpr(1), base: Reg::gpr(2), disp: 8 }
    }

    fn trigger_only(name: &str, pattern: Pattern) -> Production {
        Production::new(name, pattern, vec![TemplateInst::Trigger])
    }

    #[test]
    fn unmatched_passes_through() {
        let mut e = Engine::with_paper_config();
        assert_eq!(e.expand(0, &Instr::Nop), None);
        e.install(trigger_only("stores", Pattern::opclass(OpClass::Store))).unwrap();
        assert_eq!(e.expand(0, &Instr::Nop), None);
        assert_eq!(e.expand(0, &store()), Some(vec![store()]));
        assert_eq!(e.stats(), (1, 1));
    }

    #[test]
    fn peek_expand_leaves_statistics_untouched() {
        let mut e = Engine::with_paper_config();
        e.install(Production::new(
            "watch",
            Pattern::opclass(OpClass::Store),
            vec![TemplateInst::Trigger, TemplateInst::Fixed(Instr::Nop)],
        ))
        .unwrap();
        let seq = e.peek_expand(0, &store()).unwrap();
        assert_eq!(seq.len(), 2);
        assert_eq!(e.stats(), (0, 0), "peek must not count");
        assert_eq!(e.peek_expand(0, &store()), e.expand(0, &store()), "same instantiation");
        e.count_expansion(seq.len() as u64);
        assert_eq!(e.stats(), (2, 4), "one expand + one replayed expansion");
    }

    #[test]
    fn most_specific_pattern_wins() {
        // The paper's stack-store specialisation: general store pattern
        // expands to the watchpoint sequence, sp-based stores expand to
        // just themselves.
        let mut e = Engine::with_paper_config();
        e.install(Production::new(
            "watch",
            Pattern::opclass(OpClass::Store),
            vec![TemplateInst::Trigger, TemplateInst::Fixed(Instr::Nop)],
        ))
        .unwrap();
        e.install(trigger_only(
            "stack-passthrough",
            Pattern::opclass(OpClass::Store).with_base_reg(Reg::SP),
        ))
        .unwrap();

        let heap_store = store();
        let stack_store = Instr::Store { width: Width::Q, rs: Reg::gpr(1), base: Reg::SP, disp: 8 };
        assert_eq!(e.expand(0, &heap_store).unwrap().len(), 2);
        assert_eq!(e.expand(0, &stack_store).unwrap().len(), 1);
    }

    #[test]
    fn inactive_productions_skipped() {
        let mut e = Engine::with_paper_config();
        let id = e
            .install(Production::new(
                "watch",
                Pattern::opclass(OpClass::Store),
                vec![TemplateInst::Trigger, TemplateInst::Fixed(Instr::Trap)],
            ))
            .unwrap();
        assert!(e.expand(0, &store()).is_some());
        e.set_active(id, false);
        assert_eq!(e.expand(0, &store()), None);
        e.set_active(id, true);
        assert!(e.expand(0, &store()).is_some());
    }

    #[test]
    fn pattern_table_capacity() {
        let mut e = Engine::new(EngineConfig { pattern_entries: 2, replacement_entries: 512 });
        e.install(trigger_only("a", Pattern::at_pc(0))).unwrap();
        e.install(trigger_only("b", Pattern::at_pc(4))).unwrap();
        let err = e.install(trigger_only("c", Pattern::at_pc(8))).unwrap_err();
        assert_eq!(err, EngineError::PatternTableFull { capacity: 2 });
    }

    #[test]
    fn replacement_table_capacity() {
        let mut e = Engine::new(EngineConfig { pattern_entries: 32, replacement_entries: 3 });
        e.install(Production::new(
            "two",
            Pattern::at_pc(0),
            vec![TemplateInst::Trigger, TemplateInst::Fixed(Instr::Nop)],
        ))
        .unwrap();
        let err = e
            .install(Production::new(
                "two-more",
                Pattern::at_pc(4),
                vec![TemplateInst::Trigger, TemplateInst::Fixed(Instr::Nop)],
            ))
            .unwrap_err();
        assert_eq!(err, EngineError::ReplacementTableFull { capacity: 3, used: 2, requested: 2 });
    }

    #[test]
    fn incompatible_template_rejected() {
        let mut e = Engine::with_paper_config();
        // T.IMM under an any-instruction pattern could fault at decode.
        let err = e
            .install(Production::new(
                "bad",
                Pattern::default(),
                vec![TemplateInst::Lda {
                    rd: TReg::Lit(Reg::dise(1)),
                    base: TReg::Rs1,
                    disp: TDisp::Imm,
                }],
            ))
            .unwrap_err();
        assert!(matches!(err, EngineError::IncompatibleTemplate { .. }));

        // The same template under a store-only pattern is fine.
        e.install(Production::new(
            "good",
            Pattern::opclass(OpClass::Store),
            vec![
                TemplateInst::Trigger,
                TemplateInst::Lda {
                    rd: TReg::Lit(Reg::dise(1)),
                    base: TReg::Rs1,
                    disp: TDisp::Imm,
                },
                TemplateInst::Alu {
                    op: AluOp::CmpEq,
                    rd: TReg::Lit(Reg::dise(1)),
                    ra: TReg::Lit(Reg::dise(1)),
                    rb: TOperand::Reg(TReg::Lit(Reg::DAR)),
                },
            ],
        ))
        .unwrap();
        assert_eq!(e.replacement_used(), 3);
    }

    #[test]
    fn paper_fig2d_production_expands() {
        // Match-Address + conditional call (Fig. 2d), the paper's default.
        let dr1 = Reg::dise(1);
        let mut e = Engine::with_paper_config();
        e.install(Production::new(
            "watch-fig2d",
            Pattern::opclass(OpClass::Store),
            vec![
                TemplateInst::Trigger,
                TemplateInst::Lda { rd: TReg::Lit(dr1), base: TReg::Rs1, disp: TDisp::Imm },
                TemplateInst::Alu {
                    op: AluOp::Bic,
                    rd: TReg::Lit(dr1),
                    ra: TReg::Lit(dr1),
                    rb: TOperand::Imm(7),
                },
                TemplateInst::Alu {
                    op: AluOp::CmpEq,
                    rd: TReg::Lit(dr1),
                    ra: TReg::Lit(dr1),
                    rb: TOperand::Reg(TReg::Lit(Reg::DAR)),
                },
                TemplateInst::Fixed(Instr::DCCall {
                    cond: dise_isa::Cond::Ne,
                    rs: dr1,
                    target: Reg::DHDLR,
                }),
            ],
        ))
        .unwrap();

        let seq = e.expand(0x100, &store()).unwrap();
        assert_eq!(seq.len(), 5);
        assert_eq!(seq[0], store());
        assert_eq!(seq[1], Instr::Lda { rd: dr1, base: Reg::gpr(2), disp: 8 });
        match seq[4] {
            Instr::DCCall { target, .. } => assert_eq!(target, Reg::DHDLR),
            other => panic!("{other:?}"),
        }
    }
}
