//! # dise-engine — Dynamic Instruction Stream Editing
//!
//! The DISE facility of Corliss, Lewis & Roth: a decode-stage macro
//! engine that pattern-matches each fetched instruction and, on a match,
//! feeds the execution engine a parameterised *replacement sequence*
//! instead. This crate implements the engine's architectural content:
//!
//! * [`Pattern`] — single-instruction predicates over opclass, opcode
//!   kind, PC, codeword index, and base register, with
//!   *most-specific-wins* arbitration exactly as the paper specifies for
//!   overlapping patterns;
//! * [`TemplateInst`] — replacement-sequence instructions whose fields
//!   may be literal or instantiated from the matched *trigger*
//!   (`T.INST`, `T.OP`, `T.RD`, `T.RS1`, `T.IMM` directives);
//! * [`Production`] — a pattern plus replacement sequence;
//! * [`Engine`] — the production store, bounded like the paper's
//!   "modestly configured" engine (32-entry pattern table, 512-entry
//!   replacement table), performing match + instantiation.
//!
//! Execution-time state (the DISE register file, DISEPC, the
//! expansion-disable flag inside DISE-called functions, and the flush
//! costs of DISE control transfers) lives in the `dise-cpu` pipeline,
//! which queries this engine at decode.
//!
//! ```
//! use dise_engine::{Engine, Pattern, Production, TemplateInst};
//! use dise_isa::{Instr, OpClass, Reg, Width};
//!
//! let mut engine = Engine::with_paper_config();
//! engine.install(Production::new(
//!     "count-stores",
//!     Pattern::opclass(OpClass::Store),
//!     vec![TemplateInst::Trigger, TemplateInst::Fixed(Instr::Nop)],
//! ))?;
//!
//! let store = Instr::Store { width: Width::Q, rs: Reg::gpr(1), base: Reg::SP, disp: 0 };
//! let seq = engine.expand(0x1000, &store).expect("store matches");
//! assert_eq!(seq, vec![store, Instr::Nop]);
//! # Ok::<(), dise_engine::EngineError>(())
//! ```

mod engine;
mod pattern;
mod production;
mod template;

pub use engine::{Engine, EngineConfig, EngineError, ProductionId};
pub use pattern::Pattern;
pub use production::Production;
pub use template::{ExpandError, TDisp, TOperand, TReg, TemplateInst};
