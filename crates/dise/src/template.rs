//! Parameterised replacement-sequence instructions.
//!
//! Replacement sequences are "templates in which some instruction fields
//! are literal and others are instantiated using fields from the replaced
//! trigger". The `T…` types below are the template directives: [`TReg`]
//! corresponds to `T.RD`/`T.RS1`, [`TDisp`] to `T.IMM`, and
//! [`TemplateInst::Trigger`] to `T.INST`.

use std::fmt;

use dise_isa::{AluOp, Instr, Reg, Width};

/// A register field of a template: literal or taken from the trigger.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TReg {
    /// A literal register (typically a DISE register).
    Lit(Reg),
    /// The trigger's destination/data register (`T.RD`).
    Rd,
    /// The trigger's first source register (`T.RS1`): the base register
    /// of a memory trigger, else its first source.
    Rs1,
}

/// A displacement field of a template.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TDisp {
    /// A literal displacement.
    Lit(i16),
    /// The trigger's immediate/displacement (`T.IMM`).
    Imm,
}

/// A register-or-immediate ALU operand of a template.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TOperand {
    /// A register field.
    Reg(TReg),
    /// A literal 8-bit immediate.
    Imm(u8),
}

/// One instruction of a replacement sequence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TemplateInst {
    /// `T.INST` — the trigger instruction itself, verbatim.
    Trigger,
    /// An all-literal instruction.
    Fixed(Instr),
    /// A load with templated fields.
    Load {
        /// Access width.
        width: Width,
        /// Destination.
        rd: TReg,
        /// Base register field.
        base: TReg,
        /// Displacement field.
        disp: TDisp,
    },
    /// A store with templated fields.
    Store {
        /// Access width.
        width: Width,
        /// Data register field.
        rs: TReg,
        /// Base register field.
        base: TReg,
        /// Displacement field.
        disp: TDisp,
    },
    /// `lda` with templated fields — `lda dr1, T.IMM(T.RS1)` is how the
    /// paper's productions reconstruct a store's effective address.
    Lda {
        /// Destination.
        rd: TReg,
        /// Base register field.
        base: TReg,
        /// Displacement field.
        disp: TDisp,
    },
    /// An ALU operation with templated fields.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: TReg,
        /// First source field.
        ra: TReg,
        /// Second operand field.
        rb: TOperand,
    },
    /// `T.OP T.RD, disp(base)` — the trigger's own memory opcode with
    /// substituted address fields (Fig. 1's redirected load).
    TriggerOpWith {
        /// Base register field.
        base: TReg,
        /// Displacement field.
        disp: TDisp,
    },
}

/// Instantiation failure: a directive referenced a trigger field the
/// trigger does not have.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExpandError {
    /// `T.RD` on a trigger without a destination/data register.
    NoRd,
    /// `T.RS1` on a trigger without a source register.
    NoRs1,
    /// `T.IMM` on a trigger without a displacement.
    NoImm,
    /// [`TemplateInst::TriggerOpWith`] on a non-memory trigger.
    NotMemory,
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandError::NoRd => write!(f, "trigger has no destination register for T.RD"),
            ExpandError::NoRs1 => write!(f, "trigger has no source register for T.RS1"),
            ExpandError::NoImm => write!(f, "trigger has no immediate for T.IMM"),
            ExpandError::NotMemory => write!(f, "T.OP substitution requires a memory trigger"),
        }
    }
}

impl std::error::Error for ExpandError {}

/// The trigger's data register: store source, load/lda destination,
/// else the instruction's destination.
fn trigger_rd(t: &Instr) -> Result<Reg, ExpandError> {
    match *t {
        Instr::Store { rs, .. } => Ok(rs),
        Instr::Load { rd, .. } | Instr::Lda { rd, .. } | Instr::Ldah { rd, .. } => Ok(rd),
        _ => t.dest().ok_or(ExpandError::NoRd),
    }
}

/// The trigger's first source: base register of memory ops, else the
/// first source register.
fn trigger_rs1(t: &Instr) -> Result<Reg, ExpandError> {
    if let Some((base, _, _)) = t.mem_access() {
        return Ok(base);
    }
    match *t {
        Instr::Lda { base, .. } | Instr::Ldah { base, .. } => Ok(base),
        _ => t.sources()[0].ok_or(ExpandError::NoRs1),
    }
}

/// The trigger's displacement/immediate.
fn trigger_imm(t: &Instr) -> Result<i16, ExpandError> {
    match *t {
        Instr::Load { disp, .. }
        | Instr::Store { disp, .. }
        | Instr::Lda { disp, .. }
        | Instr::Ldah { disp, .. } => Ok(disp),
        _ => Err(ExpandError::NoImm),
    }
}

impl TReg {
    fn resolve(self, trigger: &Instr) -> Result<Reg, ExpandError> {
        match self {
            TReg::Lit(r) => Ok(r),
            TReg::Rd => trigger_rd(trigger),
            TReg::Rs1 => trigger_rs1(trigger),
        }
    }
}

impl TDisp {
    fn resolve(self, trigger: &Instr) -> Result<i16, ExpandError> {
        match self {
            TDisp::Lit(d) => Ok(d),
            TDisp::Imm => trigger_imm(trigger),
        }
    }
}

impl TemplateInst {
    /// Instantiate this template against a trigger instruction.
    ///
    /// # Errors
    ///
    /// Returns an [`ExpandError`] when a directive references a field the
    /// trigger lacks (the engine validates productions against their
    /// pattern at install time, so a well-formed production never fails
    /// here at runtime).
    pub fn instantiate(&self, trigger: &Instr) -> Result<Instr, ExpandError> {
        Ok(match self {
            TemplateInst::Trigger => *trigger,
            TemplateInst::Fixed(i) => *i,
            TemplateInst::Load { width, rd, base, disp } => Instr::Load {
                width: *width,
                rd: rd.resolve(trigger)?,
                base: base.resolve(trigger)?,
                disp: disp.resolve(trigger)?,
            },
            TemplateInst::Store { width, rs, base, disp } => Instr::Store {
                width: *width,
                rs: rs.resolve(trigger)?,
                base: base.resolve(trigger)?,
                disp: disp.resolve(trigger)?,
            },
            TemplateInst::Lda { rd, base, disp } => Instr::Lda {
                rd: rd.resolve(trigger)?,
                base: base.resolve(trigger)?,
                disp: disp.resolve(trigger)?,
            },
            TemplateInst::Alu { op, rd, ra, rb } => Instr::Alu {
                op: *op,
                rd: rd.resolve(trigger)?,
                ra: ra.resolve(trigger)?,
                rb: match rb {
                    TOperand::Reg(r) => dise_isa::Operand::Reg(r.resolve(trigger)?),
                    TOperand::Imm(i) => dise_isa::Operand::Imm(*i),
                },
            },
            TemplateInst::TriggerOpWith { base, disp } => {
                let b = base.resolve(trigger)?;
                let d = disp.resolve(trigger)?;
                match *trigger {
                    Instr::Load { width, rd, .. } => Instr::Load { width, rd, base: b, disp: d },
                    Instr::Store { width, rs, .. } => Instr::Store { width, rs, base: b, disp: d },
                    _ => return Err(ExpandError::NotMemory),
                }
            }
        })
    }

    /// Whether instantiation against *any* trigger matched by a pattern
    /// with the given properties can fail. Used for install-time checks.
    pub fn needs_memory_trigger(&self) -> bool {
        match self {
            TemplateInst::TriggerOpWith { .. } => true,
            TemplateInst::Load { rd, base, disp, .. } => {
                uses_imm(disp) || [rd, base].iter().any(|r| uses_mem_field(r))
            }
            TemplateInst::Store { rs, base, disp, .. } => {
                uses_imm(disp) || [rs, base].iter().any(|r| uses_mem_field(r))
            }
            TemplateInst::Lda { rd, base, disp } => {
                uses_imm(disp) || [rd, base].iter().any(|r| uses_mem_field(r))
            }
            TemplateInst::Alu { .. } | TemplateInst::Trigger | TemplateInst::Fixed(_) => false,
        }
    }
}

fn uses_imm(d: &TDisp) -> bool {
    matches!(d, TDisp::Imm)
}

fn uses_mem_field(r: &TReg) -> bool {
    matches!(r, TReg::Rs1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_isa::Operand;

    fn store() -> Instr {
        Instr::Store { width: Width::Q, rs: Reg::gpr(9), base: Reg::gpr(5), disp: 24 }
    }

    #[test]
    fn trigger_verbatim() {
        assert_eq!(TemplateInst::Trigger.instantiate(&store()), Ok(store()));
    }

    #[test]
    fn effective_address_reconstruction() {
        // lda dr1, T.IMM(T.RS1) — the heart of Fig. 2c/d.
        let t =
            TemplateInst::Lda { rd: TReg::Lit(Reg::dise(1)), base: TReg::Rs1, disp: TDisp::Imm };
        assert_eq!(
            t.instantiate(&store()),
            Ok(Instr::Lda { rd: Reg::dise(1), base: Reg::gpr(5), disp: 24 })
        );
    }

    #[test]
    fn fig1_redirected_load() {
        // T.OP T.RD, T.IMM(dr0): the paper's Fig. 1 expansion.
        let ld = Instr::Load { width: Width::Q, rd: Reg::gpr(4), base: Reg::SP, disp: 32 };
        let t = TemplateInst::TriggerOpWith { base: TReg::Lit(Reg::dise(0)), disp: TDisp::Imm };
        assert_eq!(
            t.instantiate(&ld),
            Ok(Instr::Load { width: Width::Q, rd: Reg::gpr(4), base: Reg::dise(0), disp: 32 })
        );
    }

    #[test]
    fn alu_with_trigger_fields() {
        // addq T.RS1, 8, dr0 from Fig. 1.
        let ld = Instr::Load { width: Width::Q, rd: Reg::gpr(4), base: Reg::SP, disp: 32 };
        let t = TemplateInst::Alu {
            op: AluOp::Add,
            rd: TReg::Lit(Reg::dise(0)),
            ra: TReg::Rs1,
            rb: TOperand::Imm(8),
        };
        assert_eq!(
            t.instantiate(&ld),
            Ok(Instr::Alu { op: AluOp::Add, rd: Reg::dise(0), ra: Reg::SP, rb: Operand::Imm(8) })
        );
    }

    #[test]
    fn rd_of_store_is_data_register() {
        let t = TemplateInst::Alu {
            op: AluOp::Or,
            rd: TReg::Lit(Reg::dise(2)),
            ra: TReg::Rd,
            rb: TOperand::Reg(TReg::Rd),
        };
        match t.instantiate(&store()).unwrap() {
            Instr::Alu { ra, .. } => assert_eq!(ra, Reg::gpr(9)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn directive_errors() {
        let t =
            TemplateInst::Lda { rd: TReg::Lit(Reg::dise(1)), base: TReg::Rs1, disp: TDisp::Imm };
        assert_eq!(t.instantiate(&Instr::Nop), Err(ExpandError::NoRs1));
        let t = TemplateInst::TriggerOpWith { base: TReg::Lit(Reg::dise(0)), disp: TDisp::Lit(0) };
        assert_eq!(t.instantiate(&Instr::Trap), Err(ExpandError::NotMemory));
    }

    #[test]
    fn needs_memory_trigger_analysis() {
        assert!(!TemplateInst::Trigger.needs_memory_trigger());
        assert!(!TemplateInst::Fixed(Instr::Nop).needs_memory_trigger());
        let t =
            TemplateInst::Lda { rd: TReg::Lit(Reg::dise(1)), base: TReg::Rs1, disp: TDisp::Imm };
        assert!(t.needs_memory_trigger());
        let t = TemplateInst::TriggerOpWith { base: TReg::Lit(Reg::dise(0)), disp: TDisp::Lit(0) };
        assert!(t.needs_memory_trigger());
    }
}
