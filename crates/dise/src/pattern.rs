//! Single-instruction match patterns.

use dise_isa::{Instr, OpClass, Reg};

/// A DISE pattern: a conjunction of predicates over one instruction.
///
/// "A pattern may specify any aspect of a single instruction: PC, opcode,
/// register, etc." — we expose the aspects the paper's productions use.
/// An empty pattern matches everything; when several installed patterns
/// match the same instruction the most *specific* one (most predicates)
/// wins, which is how the paper's stack-store specialisation works
/// (§4.2, "Pattern matching optimizations").
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Pattern {
    /// Require this opclass (`T.OPCLASS==store`).
    pub opclass: Option<OpClass>,
    /// Require this trigger PC (breakpoint-register style).
    pub pc: Option<u64>,
    /// Require a DISE codeword with this index.
    pub codeword: Option<u16>,
    /// Require this base register on a memory trigger (`T.RS==sp`).
    pub base_reg: Option<Reg>,
}

impl Pattern {
    /// Match any instruction of `class`.
    pub fn opclass(class: OpClass) -> Pattern {
        Pattern { opclass: Some(class), ..Pattern::default() }
    }

    /// Match the instruction at `pc` (hardware-breakpoint style).
    pub fn at_pc(pc: u64) -> Pattern {
        Pattern { pc: Some(pc), ..Pattern::default() }
    }

    /// Match the DISE codeword with index `idx`.
    pub fn codeword(idx: u16) -> Pattern {
        Pattern { codeword: Some(idx), ..Pattern::default() }
    }

    /// Further require the trigger's base register (builder style).
    pub fn with_base_reg(mut self, base: Reg) -> Pattern {
        self.base_reg = Some(base);
        self
    }

    /// Number of predicates; higher wins arbitration.
    pub fn specificity(&self) -> u32 {
        u32::from(self.opclass.is_some())
            + u32::from(self.pc.is_some())
            + u32::from(self.codeword.is_some())
            + u32::from(self.base_reg.is_some())
    }

    /// Does the instruction at `pc` match?
    pub fn matches(&self, pc: u64, instr: &Instr) -> bool {
        if let Some(class) = self.opclass {
            if instr.opclass() != class {
                return false;
            }
        }
        if let Some(p) = self.pc {
            if pc != p {
                return false;
            }
        }
        if let Some(idx) = self.codeword {
            match instr {
                Instr::Codeword(i) if *i == idx => {}
                _ => return false,
            }
        }
        if let Some(base) = self.base_reg {
            match instr.mem_access() {
                Some((b, _, _)) if b == base => {}
                _ => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_isa::Width;

    fn store(base: Reg) -> Instr {
        Instr::Store { width: Width::Q, rs: Reg::gpr(1), base, disp: 0 }
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let p = Pattern::default();
        assert!(p.matches(0, &Instr::Nop));
        assert!(p.matches(4, &store(Reg::SP)));
        assert_eq!(p.specificity(), 0);
    }

    #[test]
    fn opclass_pattern() {
        let p = Pattern::opclass(OpClass::Store);
        assert!(p.matches(0, &store(Reg::SP)));
        assert!(!p.matches(0, &Instr::Nop));
        assert!(!p
            .matches(0, &Instr::Load { width: Width::Q, rd: Reg::gpr(1), base: Reg::SP, disp: 0 }));
    }

    #[test]
    fn pc_pattern() {
        let p = Pattern::at_pc(0x400);
        assert!(p.matches(0x400, &Instr::Nop));
        assert!(!p.matches(0x404, &Instr::Nop));
    }

    #[test]
    fn codeword_pattern() {
        let p = Pattern::codeword(7);
        assert!(p.matches(0, &Instr::Codeword(7)));
        assert!(!p.matches(0, &Instr::Codeword(8)));
        assert!(!p.matches(0, &Instr::Nop));
    }

    #[test]
    fn base_reg_narrowing() {
        // The paper's example: all loads whose base is the stack pointer.
        let p = Pattern::opclass(OpClass::Store).with_base_reg(Reg::SP);
        assert!(p.matches(0, &store(Reg::SP)));
        assert!(!p.matches(0, &store(Reg::gpr(4))));
        assert_eq!(p.specificity(), 2);
    }

    #[test]
    fn specificity_ordering() {
        let general = Pattern::opclass(OpClass::Store);
        let specific = Pattern::opclass(OpClass::Store).with_base_reg(Reg::SP);
        assert!(specific.specificity() > general.specificity());
    }
}
