//! Focused engine-level tests: most-specific-wins arbitration across
//! overlapping patterns, and template instantiation producing
//! well-formed (encodable, trigger-faithful) replacement sequences.

use dise_engine::{Engine, Pattern, Production, TDisp, TOperand, TReg, TemplateInst};
use dise_isa::{decode, encode, AluOp, Cond, Instr, OpClass, Operand, Reg, Width};

fn store(base: Reg, disp: i16) -> Instr {
    Instr::Store { width: Width::Q, rs: Reg::gpr(1), base, disp }
}

fn tagged(name: &str, pattern: Pattern, tag: u8) -> Production {
    // Each production is identified by a distinct trailing ALU immediate,
    // so tests can tell which production expanded a trigger.
    Production::new(
        name,
        pattern,
        vec![
            TemplateInst::Trigger,
            TemplateInst::Alu {
                op: AluOp::Add,
                rd: TReg::Lit(Reg::dise(2)),
                ra: TReg::Lit(Reg::dise(2)),
                rb: TOperand::Imm(tag),
            },
        ],
    )
}

fn tag_of(seq: &[Instr]) -> u8 {
    match seq.last() {
        Some(Instr::Alu { rb: Operand::Imm(tag), .. }) => *tag,
        other => panic!("expected tagged ALU terminator, got {other:?}"),
    }
}

/// Three overlapping patterns at increasing specificity: the match-all
/// pattern loses to the store pattern, which loses to the store+base
/// pattern — regardless of installation order.
#[test]
fn arbitration_picks_most_specific_of_three_overlapping() {
    // Install most-specific first to rule out "last installed wins by
    // accident" as the mechanism.
    let orders: [&[(&str, u8)]; 2] = [
        &[("store-sp", 3), ("store", 2), ("all", 1)],
        &[("all", 1), ("store", 2), ("store-sp", 3)],
    ];
    for order in orders {
        let mut e = Engine::with_paper_config();
        for &(name, tag) in order {
            let pattern = match name {
                "all" => Pattern::default(),
                "store" => Pattern::opclass(OpClass::Store),
                "store-sp" => Pattern::opclass(OpClass::Store).with_base_reg(Reg::SP),
                _ => unreachable!(),
            };
            e.install(tagged(name, pattern, tag)).unwrap();
        }

        // A non-store matches only the empty pattern.
        assert_eq!(tag_of(&e.expand(0, &Instr::Nop).unwrap()), 1);
        // A heap store overlaps "all" and "store": "store" is more specific.
        assert_eq!(tag_of(&e.expand(0, &store(Reg::gpr(7), 8)).unwrap()), 2);
        // A stack store overlaps all three: two predicates beat one and zero.
        assert_eq!(tag_of(&e.expand(0, &store(Reg::SP, 8)).unwrap()), 3);
    }
}

/// PC patterns and opclass+base patterns overlap at the watched PC; the
/// two-predicate pattern still wins over the one-predicate PC pattern.
#[test]
fn arbitration_weighs_predicate_count_not_kind() {
    let mut e = Engine::with_paper_config();
    e.install(tagged("at-pc", Pattern::at_pc(0x400), 1)).unwrap();
    e.install(tagged("store-sp", Pattern::opclass(OpClass::Store).with_base_reg(Reg::SP), 2))
        .unwrap();

    // At 0x400 a stack store matches both; specificity 2 beats 1.
    assert_eq!(tag_of(&e.expand(0x400, &store(Reg::SP, 0)).unwrap()), 2);
    // A non-store at 0x400 falls back to the PC pattern.
    assert_eq!(tag_of(&e.expand(0x400, &Instr::Nop).unwrap()), 1);
    // Elsewhere, only the store pattern can match.
    assert_eq!(tag_of(&e.expand(0x800, &store(Reg::SP, 0)).unwrap()), 2);
    assert_eq!(e.expand(0x800, &Instr::Nop), None);
}

/// Deactivating the most specific production exposes the next most
/// specific one instead of disabling expansion outright — the fast
/// enable/disable path a debugger relies on.
#[test]
fn arbitration_falls_back_when_specific_production_deactivated() {
    let mut e = Engine::with_paper_config();
    e.install(tagged("store", Pattern::opclass(OpClass::Store), 1)).unwrap();
    let specific = e
        .install(tagged("store-sp", Pattern::opclass(OpClass::Store).with_base_reg(Reg::SP), 2))
        .unwrap();

    let sp_store = store(Reg::SP, 16);
    assert_eq!(tag_of(&e.expand(0, &sp_store).unwrap()), 2);
    e.set_active(specific, false);
    assert_eq!(tag_of(&e.expand(0, &sp_store).unwrap()), 1, "falls back to general pattern");
    e.set_active(specific, true);
    assert_eq!(tag_of(&e.expand(0, &sp_store).unwrap()), 2);
}

/// Equal-specificity overlapping patterns resolve deterministically to
/// the most recently installed production, so re-installing a
/// same-shape production overrides its predecessor.
#[test]
fn arbitration_tie_goes_to_latest_install() {
    let mut e = Engine::with_paper_config();
    e.install(tagged("v1", Pattern::opclass(OpClass::Store), 1)).unwrap();
    e.install(tagged("v2", Pattern::opclass(OpClass::Store), 2)).unwrap();
    assert_eq!(tag_of(&e.expand(0, &store(Reg::gpr(3), 0)).unwrap()), 2);
}

/// The paper's Fig. 2d watchpoint production, instantiated against a
/// spread of trigger shapes: every emitted sequence starts with the
/// verbatim trigger, has the template's length, references only
/// registers the template names (trigger fields resolve to the trigger's
/// own registers), and every instruction survives a binary
/// encode/decode round trip — i.e. the sequence is well-formed machine
/// code, not just plausible IR.
#[test]
fn instantiation_emits_well_formed_sequences() {
    let dr1 = Reg::dise(1);
    let template = vec![
        TemplateInst::Trigger,
        TemplateInst::Lda { rd: TReg::Lit(dr1), base: TReg::Rs1, disp: TDisp::Imm },
        TemplateInst::Alu {
            op: AluOp::Bic,
            rd: TReg::Lit(dr1),
            ra: TReg::Lit(dr1),
            rb: TOperand::Imm(7),
        },
        TemplateInst::Alu {
            op: AluOp::CmpEq,
            rd: TReg::Lit(dr1),
            ra: TReg::Lit(dr1),
            rb: TOperand::Reg(TReg::Lit(Reg::DAR)),
        },
        TemplateInst::Fixed(Instr::DCCall { cond: Cond::Ne, rs: dr1, target: Reg::DHDLR }),
    ];
    let mut e = Engine::with_paper_config();
    e.install(Production::new("fig2d", Pattern::opclass(OpClass::Store), template.clone()))
        .unwrap();

    let mut triggers = Vec::new();
    for (i, width) in [Width::B, Width::W, Width::L, Width::Q].iter().enumerate() {
        for disp in [-8192i16, -1, 0, 17, 8191] {
            triggers.push(Instr::Store {
                width: *width,
                rs: Reg::gpr(i as u8 + 1),
                base: Reg::gpr(30 - i as u8),
                disp,
            });
        }
    }

    for trigger in triggers {
        let seq = e.expand(0x1000, &trigger).unwrap();
        assert_eq!(seq.len(), template.len(), "length preserved for {trigger}");
        assert_eq!(seq[0], trigger, "trigger passes through verbatim");
        match seq[1] {
            Instr::Lda { rd, base, disp } => {
                assert_eq!(rd, dr1);
                match trigger {
                    Instr::Store { base: tbase, disp: tdisp, .. } => {
                        assert_eq!(base, tbase, "T.RS1 resolves to the trigger's base");
                        assert_eq!(disp, tdisp, "T.IMM resolves to the trigger's displacement");
                    }
                    _ => unreachable!(),
                }
            }
            other => panic!("expected effective-address lda, got {other:?}"),
        }
        for inst in &seq {
            assert_eq!(
                decode(encode(inst)),
                Ok(*inst),
                "instantiated instruction must be encodable: {inst}"
            );
        }
    }
}

/// Engine statistics track arbitration results: only matched triggers
/// and the instructions they actually emitted are counted.
#[test]
fn stats_count_only_matched_triggers() {
    let mut e = Engine::with_paper_config();
    e.install(tagged("store", Pattern::opclass(OpClass::Store), 1)).unwrap();
    e.expand(0, &Instr::Nop);
    e.expand(0, &store(Reg::gpr(4), 0));
    e.expand(4, &store(Reg::gpr(4), 8));
    let (triggers, emitted) = e.stats();
    assert_eq!(triggers, 2);
    assert_eq!(emitted, 4, "two instructions per expansion");
}
