//! # dise-asm — assembler and program images
//!
//! The paper's workloads are Alpha binaries; ours are programs in the
//! `dise-isa` instruction set, built either programmatically with the
//! [`Asm`] builder or from assembly text with [`parse_asm`], and laid out
//! into loadable [`Program`] images.
//!
//! Three features exist specifically for the debugging experiments:
//!
//! * **statement markers** ([`Asm::stmt`], `.stmt` in text) record
//!   source-statement boundaries; the single-stepping debugger backend
//!   transitions at each marked PC, like a debugger stepping statements;
//! * **image appendices** ([`Program::append_text`],
//!   [`Program::append_data`]) let the debugger add its dynamically
//!   generated expression-evaluation function and data region to the
//!   application image, exactly as §4.2 of the paper describes;
//! * the pre-layout item list stays available (via [`Asm::text_items`])
//!   so the **static binary rewriting** backend can splice check code
//!   around every store and re-assemble, branch retargeting included.
//!
//! ```
//! use dise_asm::{Asm, Layout};
//! use dise_isa::{Instr, Reg, AluOp, Operand, Cond};
//!
//! let mut a = Asm::new();
//! a.label("loop");
//! a.inst(Instr::Alu { op: AluOp::Sub, rd: Reg::gpr(1), ra: Reg::gpr(1), rb: Operand::Imm(1) });
//! a.cond_br(Cond::Gt, Reg::gpr(1), "loop");
//! a.inst(Instr::Halt);
//! let prog = a.assemble(Layout::default())?;
//! assert_eq!(prog.entry, Layout::default().text_base);
//! # Ok::<(), dise_asm::AsmError>(())
//! ```

mod builder;
mod parse;
mod program;

pub use builder::{Asm, DataItem, TextItem};
pub use parse::{parse_asm, ParseError};
pub use program::{AsmError, Layout, Program};
