//! Layout, assembly (two-pass), and loadable program images.

use std::collections::{HashMap, HashSet};
use std::fmt;

use dise_isa::{decode, encode, Instr, Reg, INSTR_BYTES, MEM_DISP_MAX, MEM_DISP_MIN};

use crate::{Asm, DataItem, TextItem};

/// Segment placement for assembly.
///
/// All bases must be below 2^27 so that a two-instruction
/// `ldah`/`lda` pair can materialise any address (see
/// [`Asm::load_addr`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Layout {
    /// Base of the text segment.
    pub text_base: u64,
    /// Base of the data segment.
    pub data_base: u64,
    /// Initial stack pointer (stacks grow down).
    pub stack_top: u64,
}

impl Default for Layout {
    fn default() -> Layout {
        Layout { text_base: 0x0010_0000, data_base: 0x0100_0000, stack_top: 0x07FF_C000 }
    }
}

/// Errors from [`Asm::assemble`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A branch or `load_addr` referenced an unbound label.
    UndefinedSymbol(String),
    /// The same label was bound twice.
    DuplicateSymbol(String),
    /// A branch target is beyond the 20-bit displacement range.
    BranchOutOfRange {
        /// The unreachable label.
        target: String,
        /// The computed instruction displacement.
        disp: i64,
    },
    /// A symbol address cannot be materialised by `ldah`/`lda`.
    AddrOutOfRange {
        /// The symbol.
        symbol: String,
        /// Its address.
        addr: u64,
    },
    /// A data alignment was not a power of two.
    BadAlignment(u64),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedSymbol(s) => write!(f, "undefined symbol `{s}`"),
            AsmError::DuplicateSymbol(s) => write!(f, "duplicate symbol `{s}`"),
            AsmError::BranchOutOfRange { target, disp } => {
                write!(f, "branch to `{target}` out of range (disp {disp})")
            }
            AsmError::AddrOutOfRange { symbol, addr } => {
                write!(f, "address {addr:#x} of `{symbol}` not materialisable")
            }
            AsmError::BadAlignment(a) => write!(f, "alignment {a} is not a power of two"),
        }
    }
}

impl std::error::Error for AsmError {}

/// A fully laid-out, loadable program image.
#[derive(Clone, Debug)]
pub struct Program {
    /// Base address of the text segment.
    pub text_base: u64,
    /// Encoded text, one 32-bit word per instruction.
    pub text: Vec<u32>,
    /// Base address of the data segment.
    pub data_base: u64,
    /// Initialised data bytes.
    pub data: Vec<u8>,
    /// Entry PC (`start` label if defined, else `text_base`).
    pub entry: u64,
    /// Initial stack pointer.
    pub stack_top: u64,
    /// All label addresses (text and data).
    pub symbols: HashMap<String, u64>,
    /// PCs of source-statement boundaries (for single-stepping).
    pub stmt_pcs: HashSet<u64>,
}

/// Split a 64-bit address into an `(ldah, lda)` displacement pair:
/// `addr == (hi << 14) + lo` with `lo` in the signed 14-bit range.
///
/// Returns `None` when `hi` itself does not fit 14 signed bits
/// (addresses ≥ ~2^27).
pub(crate) fn split_addr(addr: u64) -> Option<(i16, i16)> {
    let a = addr as i64;
    let hi = (a + (1 << 13)) >> 14;
    let lo = a - (hi << 14);
    if hi < MEM_DISP_MIN as i64 || hi > MEM_DISP_MAX as i64 {
        return None;
    }
    debug_assert!((MEM_DISP_MIN as i64..=MEM_DISP_MAX as i64).contains(&lo));
    Some((hi as i16, lo as i16))
}

impl Asm {
    /// Assemble into a [`Program`] under the given layout.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] for undefined or duplicate labels,
    /// unreachable branch targets, unmaterialisable addresses, or bad
    /// alignments.
    pub fn assemble(&self, layout: Layout) -> Result<Program, AsmError> {
        self.assemble_with(layout, &HashMap::new())
    }

    /// Assemble with additional *external* symbols (addresses defined
    /// outside this unit). The debugger uses this to assemble its
    /// dynamically generated handler function against the already-loaded
    /// application image.
    ///
    /// # Errors
    ///
    /// As [`Asm::assemble`]; local labels shadow externals.
    pub fn assemble_with(
        &self,
        layout: Layout,
        externs: &HashMap<String, u64>,
    ) -> Result<Program, AsmError> {
        let mut symbols: HashMap<String, u64> = HashMap::new();
        let bind = |name: &str, addr: u64, symbols: &mut HashMap<String, u64>| {
            if symbols.insert(name.to_string(), addr).is_some() {
                Err(AsmError::DuplicateSymbol(name.to_string()))
            } else {
                Ok(())
            }
        };

        // Pass 1a: data layout (so text can reference data symbols).
        let mut data: Vec<u8> = Vec::new();
        let mut addr_fixups: Vec<(usize, String)> = Vec::new();
        for item in self.data_items() {
            match item {
                DataItem::Label(name) => {
                    bind(name, layout.data_base + data.len() as u64, &mut symbols)?;
                }
                DataItem::Bytes(b) => data.extend_from_slice(b),
                DataItem::Space(n) => data.extend(std::iter::repeat_n(0, *n as usize)),
                DataItem::Align(n) => {
                    if !n.is_power_of_two() {
                        return Err(AsmError::BadAlignment(*n));
                    }
                    while !(layout.data_base + data.len() as u64).is_multiple_of(*n) {
                        data.push(0);
                    }
                }
                DataItem::AddrOf(sym) => {
                    addr_fixups.push((data.len(), sym.clone()));
                    data.extend_from_slice(&[0; 8]);
                }
            }
        }

        // Pass 1b: text label addresses and statement PCs.
        let mut pc = layout.text_base;
        let mut stmt_pcs = HashSet::new();
        for item in self.text_items() {
            match item {
                TextItem::Label(name) => bind(name, pc, &mut symbols)?,
                TextItem::Stmt => {
                    stmt_pcs.insert(pc);
                }
                other => pc += other.len() * INSTR_BYTES,
            }
        }

        // Pass 2: emit.
        let mut text: Vec<u32> = Vec::with_capacity(self.text_len() as usize);
        let mut pc = layout.text_base;
        let lookup = |name: &str| -> Result<u64, AsmError> {
            symbols
                .get(name)
                .copied()
                .or_else(|| externs.get(name).copied())
                .ok_or_else(|| AsmError::UndefinedSymbol(name.to_string()))
        };
        let branch_disp = |pc: u64, target: &str, addr: u64| -> Result<i32, AsmError> {
            let disp = (addr as i64 - (pc as i64 + 4)) / INSTR_BYTES as i64;
            if !(-(1 << 19)..(1 << 19)).contains(&disp) {
                return Err(AsmError::BranchOutOfRange { target: target.to_string(), disp });
            }
            Ok(disp as i32)
        };
        for item in self.text_items() {
            match item {
                TextItem::Label(_) | TextItem::Stmt => {}
                TextItem::Inst(i) => {
                    text.push(encode(i));
                    pc += INSTR_BYTES;
                }
                TextItem::BranchTo { link, target } => {
                    let addr = lookup(target)?;
                    let disp = branch_disp(pc, target, addr)?;
                    text.push(encode(&Instr::Br { rd: *link, disp }));
                    pc += INSTR_BYTES;
                }
                TextItem::CondBranchTo { cond, rs, target } => {
                    let addr = lookup(target)?;
                    let disp = branch_disp(pc, target, addr)?;
                    text.push(encode(&Instr::CondBr { cond: *cond, rs: *rs, disp }));
                    pc += INSTR_BYTES;
                }
                TextItem::LoadAddr { rd, symbol, offset } => {
                    let addr = lookup(symbol)?.wrapping_add(*offset as u64);
                    let (hi, lo) = split_addr(addr)
                        .ok_or(AsmError::AddrOutOfRange { symbol: symbol.clone(), addr })?;
                    text.push(encode(&Instr::Ldah { rd: *rd, base: Reg::ZERO, disp: hi }));
                    text.push(encode(&Instr::Lda { rd: *rd, base: *rd, disp: lo }));
                    pc += 2 * INSTR_BYTES;
                }
            }
        }

        // Patch address-of data cells now that all labels are bound.
        for (off, sym) in addr_fixups {
            let addr = symbols
                .get(&sym)
                .copied()
                .or_else(|| externs.get(&sym).copied())
                .ok_or_else(|| AsmError::UndefinedSymbol(sym.clone()))?;
            data[off..off + 8].copy_from_slice(&addr.to_le_bytes());
        }

        let entry = symbols.get("start").copied().unwrap_or(layout.text_base);
        Ok(Program {
            text_base: layout.text_base,
            text,
            data_base: layout.data_base,
            data,
            entry,
            stack_top: layout.stack_top,
            symbols,
            stmt_pcs,
        })
    }
}

impl Program {
    /// First address past the text segment.
    pub fn text_end(&self) -> u64 {
        self.text_base + self.text.len() as u64 * INSTR_BYTES
    }

    /// First address past the initialised data segment.
    pub fn data_end(&self) -> u64 {
        self.data_base + self.data.len() as u64
    }

    /// Load text and data into a memory, ready to run from
    /// [`Program::entry`].
    pub fn load(&self, mem: &mut dise_mem::Memory) {
        for (i, word) in self.text.iter().enumerate() {
            mem.write_u(self.text_base + i as u64 * INSTR_BYTES, 4, *word as u64);
        }
        mem.write_bytes(self.data_base, &self.data);
    }

    /// Address of a label.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Decode the instruction at `pc` from the image (not from a live
    /// memory). Returns `None` outside the text segment or for
    /// malformed words.
    pub fn decode_at(&self, pc: u64) -> Option<Instr> {
        if pc < self.text_base || pc >= self.text_end() || !pc.is_multiple_of(INSTR_BYTES) {
            return None;
        }
        let idx = ((pc - self.text_base) / INSTR_BYTES) as usize;
        decode(self.text[idx]).ok()
    }

    /// Append instructions to the text segment (the debugger's
    /// dynamically generated function), returning their base address and
    /// recording `name` as a symbol.
    pub fn append_text(&mut self, name: &str, code: &[Instr]) -> u64 {
        let base = self.text_end();
        self.symbols.insert(name.to_string(), base);
        self.text.extend(code.iter().map(encode));
        base
    }

    /// Append pre-encoded instruction words to the text segment,
    /// returning their base address and recording `name` as a symbol.
    pub fn append_text_words(&mut self, name: &str, words: &[u32]) -> u64 {
        let base = self.text_end();
        self.symbols.insert(name.to_string(), base);
        self.text.extend_from_slice(words);
        base
    }

    /// Append `bytes` to the data segment at the given power-of-two
    /// alignment (the debugger's data region), returning its address and
    /// recording `name` as a symbol.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn append_data(&mut self, name: &str, bytes: &[u8], align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        while !self.data_end().is_multiple_of(align) {
            self.data.push(0);
        }
        let base = self.data_end();
        self.symbols.insert(name.to_string(), base);
        self.data.extend_from_slice(bytes);
        base
    }

    /// Total static code size in bytes (used to compare DISE against
    /// binary rewriting's code bloat).
    pub fn text_bytes(&self) -> u64 {
        self.text.len() as u64 * INSTR_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_isa::{AluOp, Cond, Operand, Width};

    fn r(i: u8) -> Reg {
        Reg::gpr(i)
    }

    #[test]
    fn split_addr_reconstructs() {
        for addr in [0u64, 1, 0x3fff, 0x4000, 0x0010_0000, 0x0100_0000, 0x07FF_C000] {
            let (hi, lo) = split_addr(addr).unwrap();
            let rebuilt = ((hi as i64) << 14) + lo as i64;
            assert_eq!(rebuilt as u64, addr, "addr {addr:#x}");
        }
        assert!(split_addr(1 << 28).is_none());
    }

    #[test]
    fn assemble_loop_and_symbols() {
        let mut a = Asm::new();
        a.label("start");
        a.label("loop");
        a.inst(Instr::Alu { op: AluOp::Sub, rd: r(1), ra: r(1), rb: Operand::Imm(1) });
        a.cond_br(Cond::Gt, r(1), "loop");
        a.inst(Instr::Halt);
        let p = a.assemble(Layout::default()).unwrap();
        assert_eq!(p.text.len(), 3);
        assert_eq!(p.entry, p.symbol("start").unwrap());
        // beq disp: target = loop = text_base, pc of branch = base+4
        match p.decode_at(p.text_base + 4).unwrap() {
            Instr::CondBr { disp, .. } => assert_eq!(disp, -2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn load_addr_expands_to_pair() {
        let mut a = Asm::new();
        a.data_label("var").quad(7);
        a.load_addr(r(2), "var", 0);
        a.inst(Instr::Load { width: Width::Q, rd: r(3), base: r(2), disp: 0 });
        a.inst(Instr::Halt);
        let p = a.assemble(Layout::default()).unwrap();
        assert_eq!(p.text.len(), 4);
        let var = p.symbol("var").unwrap();
        assert_eq!(var, Layout::default().data_base);
        // Execute the pair by hand.
        let (hi, lo) = split_addr(var).unwrap();
        assert_eq!(((hi as i64) << 14) + lo as i64, var as i64);
    }

    #[test]
    fn statement_markers_record_pcs() {
        let mut a = Asm::new();
        a.stmt();
        a.inst(Instr::Nop);
        a.inst(Instr::Nop);
        a.stmt();
        a.inst(Instr::Halt);
        let p = a.assemble(Layout::default()).unwrap();
        assert!(p.stmt_pcs.contains(&p.text_base));
        assert!(p.stmt_pcs.contains(&(p.text_base + 8)));
        assert_eq!(p.stmt_pcs.len(), 2);
    }

    #[test]
    fn duplicate_and_undefined_symbols() {
        let mut a = Asm::new();
        a.label("x").label("x");
        assert_eq!(
            a.assemble(Layout::default()).unwrap_err(),
            AsmError::DuplicateSymbol("x".into())
        );
        let mut a = Asm::new();
        a.br("nowhere");
        assert_eq!(
            a.assemble(Layout::default()).unwrap_err(),
            AsmError::UndefinedSymbol("nowhere".into())
        );
    }

    #[test]
    fn data_alignment_and_space() {
        let mut a = Asm::new();
        a.inst(Instr::Halt);
        a.quad(1).align(64).data_label("arr").space(16).data_label("tail").quad(2);
        let p = a.assemble(Layout::default()).unwrap();
        let arr = p.symbol("arr").unwrap();
        assert_eq!(arr % 64, 0);
        assert_eq!(p.symbol("tail").unwrap(), arr + 16);
        let mut a = Asm::new();
        a.align(3);
        assert_eq!(a.assemble(Layout::default()).unwrap_err(), AsmError::BadAlignment(3));
    }

    #[test]
    fn load_into_memory() {
        let mut a = Asm::new();
        a.inst(Instr::Nop).inst(Instr::Halt);
        a.data_label("d").quad(0x1122_3344);
        let p = a.assemble(Layout::default()).unwrap();
        let mut mem = dise_mem::Memory::new();
        p.load(&mut mem);
        assert_eq!(mem.read_u(p.text_base, 4), encode(&Instr::Nop) as u64);
        assert_eq!(mem.read_u(p.symbol("d").unwrap(), 8), 0x1122_3344);
    }

    #[test]
    fn append_text_and_data() {
        let mut a = Asm::new();
        a.inst(Instr::Halt);
        let mut p = a.assemble(Layout::default()).unwrap();
        let old_end = p.text_end();
        let f = p.append_text("handler", &[Instr::Nop, Instr::DRet]);
        assert_eq!(f, old_end);
        assert_eq!(p.decode_at(f).unwrap(), Instr::Nop);
        assert_eq!(p.symbol("handler"), Some(f));

        let d = p.append_data("dbg", &[1, 2, 3], 2048);
        assert_eq!(d % 2048, 0);
        assert_eq!(p.symbol("dbg"), Some(d));
        assert_eq!(&p.data[(d - p.data_base) as usize..][..3], &[1, 2, 3]);
    }
}
