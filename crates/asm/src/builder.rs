//! The programmatic assembly builder.

use dise_isa::{Cond, Instr, Reg};

/// One item of the text section, prior to layout.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TextItem {
    /// A label binding the address of the next instruction.
    Label(String),
    /// A fully resolved instruction.
    Inst(Instr),
    /// An unconditional branch to a label (`br`/`bsr`), resolved at
    /// assembly time.
    BranchTo {
        /// Link register ([`Reg::ZERO`] for a plain branch).
        link: Reg,
        /// Target label.
        target: String,
    },
    /// A conditional branch to a label.
    CondBranchTo {
        /// Branch condition.
        cond: Cond,
        /// Tested register.
        rs: Reg,
        /// Target label.
        target: String,
    },
    /// Materialise the 64-bit address of `symbol + offset` into `rd`;
    /// expands to an `ldah`/`lda` pair.
    LoadAddr {
        /// Destination register.
        rd: Reg,
        /// Symbol (text or data label).
        symbol: String,
        /// Byte offset added to the symbol address.
        offset: i64,
    },
    /// A source-statement boundary marker (no code emitted; the PC of the
    /// next instruction is recorded in [`crate::Program::stmt_pcs`]).
    Stmt,
}

impl TextItem {
    /// Number of encoded instructions this item occupies.
    pub fn len(&self) -> u64 {
        match self {
            TextItem::Label(_) | TextItem::Stmt => 0,
            TextItem::LoadAddr { .. } => 2,
            _ => 1,
        }
    }

    /// True if the item emits no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One item of the data section.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DataItem {
    /// A label binding the current data address.
    Label(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// `n` zero bytes.
    Space(u64),
    /// Pad with zeros to the given power-of-two alignment.
    Align(u64),
    /// A quad holding the address of `symbol` (resolved at assembly).
    AddrOf(String),
}

/// Incremental builder for a two-section (text + data) assembly unit.
///
/// The builder is the unit of *static transformation*: the debugger's
/// binary-rewriting backend consumes [`Asm::text_items`], splices in its
/// instrumentation, and reassembles.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Asm {
    pub(crate) text: Vec<TextItem>,
    pub(crate) data: Vec<DataItem>,
}

impl Asm {
    /// An empty unit.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Bind `name` to the next text address.
    pub fn label(&mut self, name: &str) -> &mut Asm {
        self.text.push(TextItem::Label(name.to_string()));
        self
    }

    /// Append a resolved instruction.
    pub fn inst(&mut self, i: Instr) -> &mut Asm {
        self.text.push(TextItem::Inst(i));
        self
    }

    /// Append several resolved instructions.
    pub fn insts<I: IntoIterator<Item = Instr>>(&mut self, is: I) -> &mut Asm {
        self.text.extend(is.into_iter().map(TextItem::Inst));
        self
    }

    /// Unconditional branch to `target`, no link.
    pub fn br(&mut self, target: &str) -> &mut Asm {
        self.text.push(TextItem::BranchTo { link: Reg::ZERO, target: target.to_string() });
        self
    }

    /// Branch-and-link (`bsr`) to `target`.
    pub fn bsr(&mut self, link: Reg, target: &str) -> &mut Asm {
        self.text.push(TextItem::BranchTo { link, target: target.to_string() });
        self
    }

    /// Conditional branch to `target`.
    pub fn cond_br(&mut self, cond: Cond, rs: Reg, target: &str) -> &mut Asm {
        self.text.push(TextItem::CondBranchTo { cond, rs, target: target.to_string() });
        self
    }

    /// Materialise `symbol + offset` into `rd` (two instructions).
    pub fn load_addr(&mut self, rd: Reg, symbol: &str, offset: i64) -> &mut Asm {
        self.text.push(TextItem::LoadAddr { rd, symbol: symbol.to_string(), offset });
        self
    }

    /// Materialise a known constant (e.g. an already-resolved address)
    /// into `rd` as an `ldah`/`lda` pair.
    ///
    /// # Panics
    ///
    /// Panics if the value exceeds the two-instruction range (≈ 2^27);
    /// all simulator segment addresses fit.
    pub fn load_const(&mut self, rd: Reg, value: u64) -> &mut Asm {
        let (hi, lo) = crate::program::split_addr(value)
            .unwrap_or_else(|| panic!("constant {value:#x} not materialisable"));
        self.inst(Instr::Ldah { rd, base: Reg::ZERO, disp: hi });
        self.inst(Instr::Lda { rd, base: rd, disp: lo });
        self
    }

    /// Mark a source-statement boundary at the next instruction.
    pub fn stmt(&mut self) -> &mut Asm {
        self.text.push(TextItem::Stmt);
        self
    }

    /// Bind `name` to the next data address.
    pub fn data_label(&mut self, name: &str) -> &mut Asm {
        self.data.push(DataItem::Label(name.to_string()));
        self
    }

    /// Append a 64-bit little-endian quad to the data section.
    pub fn quad(&mut self, v: u64) -> &mut Asm {
        self.data.push(DataItem::Bytes(v.to_le_bytes().to_vec()));
        self
    }

    /// Append a 32-bit little-endian long.
    pub fn long(&mut self, v: u32) -> &mut Asm {
        self.data.push(DataItem::Bytes(v.to_le_bytes().to_vec()));
        self
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Asm {
        self.data.push(DataItem::Bytes(b.to_vec()));
        self
    }

    /// Append `n` zero bytes.
    pub fn space(&mut self, n: u64) -> &mut Asm {
        self.data.push(DataItem::Space(n));
        self
    }

    /// Align the data cursor to `n` bytes (power of two).
    pub fn align(&mut self, n: u64) -> &mut Asm {
        self.data.push(DataItem::Align(n));
        self
    }

    /// Append a quad holding the address of `symbol` (text or data
    /// label), resolved at assembly time.
    pub fn addr_quad(&mut self, symbol: &str) -> &mut Asm {
        self.data.push(DataItem::AddrOf(symbol.to_string()));
        self
    }

    /// The text items accumulated so far (for static transformation).
    pub fn text_items(&self) -> &[TextItem] {
        &self.text
    }

    /// The data items accumulated so far.
    pub fn data_items(&self) -> &[DataItem] {
        &self.data
    }

    /// Replace the text section (used by the binary-rewriting backend
    /// after splicing in instrumentation).
    pub fn set_text_items(&mut self, items: Vec<TextItem>) {
        self.text = items;
    }

    /// Number of encoded instructions the current text section will
    /// occupy.
    pub fn text_len(&self) -> u64 {
        self.text.iter().map(TextItem::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_isa::{AluOp, Operand};

    #[test]
    fn item_lengths() {
        assert_eq!(TextItem::Label("x".into()).len(), 0);
        assert_eq!(TextItem::Stmt.len(), 0);
        assert_eq!(TextItem::Inst(Instr::Nop).len(), 1);
        assert_eq!(TextItem::LoadAddr { rd: Reg::gpr(1), symbol: "d".into(), offset: 0 }.len(), 2);
        assert!(TextItem::Label("x".into()).is_empty());
    }

    #[test]
    fn builder_accumulates() {
        let mut a = Asm::new();
        a.label("start")
            .inst(Instr::Nop)
            .load_addr(Reg::gpr(1), "var", 8)
            .stmt()
            .inst(Instr::Alu {
                op: AluOp::Add,
                rd: Reg::gpr(2),
                ra: Reg::gpr(1),
                rb: Operand::Imm(1),
            })
            .br("start");
        assert_eq!(a.text_items().len(), 6);
        assert_eq!(a.text_len(), 5); // nop + 2 + alu + br
        a.data_label("var").quad(42).align(64).space(8);
        assert_eq!(a.data_items().len(), 4);
    }
}
