//! A small text assembler for the DISE ISA.
//!
//! Supports the mnemonics produced by `dise_isa::Instr`'s `Display`
//! implementation, labels, `.data`/`.text` section switching, the data
//! directives `.quad`/`.long`/`.byte`/`.space`/`.align`, the
//! statement-boundary marker `.stmt`, and the address pseudo-instruction
//! `la rd, symbol` / `la rd, symbol+off`.

use std::fmt;

use dise_isa::{AluOp, Cond, Instr, Operand, Reg, Width};

use crate::Asm;

/// A parse failure, with the 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: message.into() })
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, ParseError> {
    let s = s.trim();
    match s {
        "sp" => return Ok(Reg::SP),
        "ra" => return Ok(Reg::RA),
        "gp" => return Ok(Reg::GP),
        "zero" => return Ok(Reg::ZERO),
        "dar" => return Ok(Reg::DAR),
        "dpv" => return Ok(Reg::DPV),
        "dhdlr" => return Ok(Reg::DHDLR),
        "dseg" => return Ok(Reg::DSEG),
        _ => {}
    }
    if let Some(n) = s.strip_prefix("dr") {
        if let Ok(i) = n.parse::<u8>() {
            if i < 16 {
                return Ok(Reg::dise(i));
            }
        }
    } else if let Some(n) = s.strip_prefix('r') {
        if let Ok(i) = n.parse::<u8>() {
            if i < 32 {
                return Ok(Reg::gpr(i));
            }
        }
    }
    err(line, format!("bad register `{s}`"))
}

fn parse_int(s: &str, line: usize) -> Result<i64, ParseError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s.strip_prefix('+').unwrap_or(s)),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    };
    match v {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("bad integer `{s}`")),
    }
}

/// Parse `disp(base)` into `(disp, base)`.
fn parse_mem_operand(s: &str, line: usize) -> Result<(i16, Reg), ParseError> {
    let s = s.trim();
    let open = match s.find('(') {
        Some(i) => i,
        None => return err(line, format!("expected `disp(base)`, got `{s}`")),
    };
    if !s.ends_with(')') {
        return err(line, format!("expected `disp(base)`, got `{s}`"));
    }
    let disp_str = &s[..open];
    let disp = if disp_str.trim().is_empty() { 0 } else { parse_int(disp_str, line)? };
    if !(i16::MIN as i64..=i16::MAX as i64).contains(&disp) {
        return err(line, format!("displacement {disp} out of range"));
    }
    let base = parse_reg(&s[open + 1..s.len() - 1], line)?;
    Ok((disp as i16, base))
}

fn split_operands(rest: &str) -> Vec<String> {
    rest.split(',').map(|p| p.trim().to_string()).collect()
}

fn alu_from_mnemonic(m: &str) -> Option<AluOp> {
    AluOp::ALL.into_iter().find(|op| op.mnemonic() == m)
}

fn cond_from_suffix(s: &str) -> Option<Cond> {
    Cond::ALL.into_iter().find(|c| c.suffix() == s)
}

fn width_from_suffix(c: char) -> Option<Width> {
    Width::ALL.into_iter().find(|w| w.suffix() == c)
}

/// Parse assembly text into an [`Asm`] unit.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the first offending line.
///
/// ```
/// let src = r"
///     start:
///         lda r1, 10(zero)
///     loop:
///         subq r1, 1, r1
///         bgt r1, loop
///         halt
///     .data
///     v:  .quad 42
/// ";
/// let asm = dise_asm::parse_asm(src)?;
/// let prog = asm.assemble(dise_asm::Layout::default())?;
/// assert_eq!(prog.symbol("v"), Some(prog.data_base));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_asm(src: &str) -> Result<Asm, ParseError> {
    let mut asm = Asm::new();
    let mut in_data = false;

    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let mut text = raw;
        if let Some(i) = raw.find([';', '#']) {
            text = &raw[..i];
        }
        let mut text = text.trim();
        if text.is_empty() {
            continue;
        }

        // Labels (possibly followed by code on the same line).
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return err(line, format!("bad label `{label}`"));
            }
            if in_data {
                asm.data_label(label);
            } else {
                asm.label(label);
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };

        // Directives.
        match mnemonic {
            ".text" => {
                in_data = false;
                continue;
            }
            ".data" => {
                in_data = true;
                continue;
            }
            ".stmt" => {
                asm.stmt();
                continue;
            }
            ".quad" | ".long" | ".byte" => {
                for p in split_operands(rest) {
                    let v = parse_int(&p, line)?;
                    match mnemonic {
                        ".quad" => asm.quad(v as u64),
                        ".long" => asm.long(v as u32),
                        _ => asm.bytes(&[v as u8]),
                    };
                }
                continue;
            }
            ".addr" => {
                asm.addr_quad(rest.trim());
                continue;
            }
            ".space" => {
                asm.space(parse_int(rest, line)? as u64);
                continue;
            }
            ".align" => {
                asm.align(parse_int(rest, line)? as u64);
                continue;
            }
            _ => {}
        }
        if mnemonic.starts_with('.') {
            return err(line, format!("unknown directive `{mnemonic}`"));
        }
        if in_data {
            return err(line, "instruction in .data section");
        }

        let ops = if rest.is_empty() { vec![] } else { split_operands(rest) };
        let need = |n: usize| -> Result<(), ParseError> {
            if ops.len() == n {
                Ok(())
            } else {
                err(line, format!("`{mnemonic}` expects {n} operand(s), got {}", ops.len()))
            }
        };

        // ALU mnemonics: `op ra, rb|imm, rd`.
        if let Some(op) = alu_from_mnemonic(mnemonic) {
            need(3)?;
            let ra = parse_reg(&ops[0], line)?;
            let rb = if let Ok(r) = parse_reg(&ops[1], line) {
                Operand::Reg(r)
            } else {
                let v = parse_int(&ops[1], line)?;
                if !(0..=255).contains(&v) {
                    return err(line, format!("ALU immediate {v} out of 0..=255"));
                }
                Operand::Imm(v as u8)
            };
            let rd = parse_reg(&ops[2], line)?;
            asm.inst(Instr::Alu { op, rd, ra, rb });
            continue;
        }

        // Loads/stores: `ldq rd, disp(base)`. Suffix extraction must not
        // index past short mnemonics: a bare `ld`/`st` is a parse error,
        // not a panic, and multi-char or unknown suffixes fall through to
        // the remaining mnemonic tables (`lda`, `ldah`, ...).
        if mnemonic.starts_with("ld") || mnemonic.starts_with("st") {
            let mut suffix = mnemonic.chars().skip(2);
            match (suffix.next(), suffix.next()) {
                (None, _) => {
                    return err(
                        line,
                        format!("`{mnemonic}` needs a width suffix (b/w/l/q), e.g. `{mnemonic}q`"),
                    );
                }
                (Some(c), None) => {
                    if let Some(width) = width_from_suffix(c) {
                        need(2)?;
                        let r = parse_reg(&ops[0], line)?;
                        let (disp, base) = parse_mem_operand(&ops[1], line)?;
                        let inst = if mnemonic.starts_with("ld") {
                            Instr::Load { width, rd: r, base, disp }
                        } else {
                            Instr::Store { width, rs: r, base, disp }
                        };
                        asm.inst(inst);
                        continue;
                    }
                }
                _ => {}
            }
        }

        // Branches on condition: `beq r, target`.
        if let Some(cond) = mnemonic.strip_prefix('b').and_then(cond_from_suffix) {
            need(2)?;
            let rs = parse_reg(&ops[0], line)?;
            if let Ok(disp) = parse_int(&ops[1], line) {
                asm.inst(Instr::CondBr { cond, rs, disp: disp as i32 });
            } else {
                asm.cond_br(cond, rs, &ops[1]);
            }
            continue;
        }

        match mnemonic {
            "lda" | "ldah" => {
                need(2)?;
                let rd = parse_reg(&ops[0], line)?;
                let (disp, base) = parse_mem_operand(&ops[1], line)?;
                let inst = if mnemonic == "lda" {
                    Instr::Lda { rd, base, disp }
                } else {
                    Instr::Ldah { rd, base, disp }
                };
                asm.inst(inst);
            }
            "la" => {
                need(2)?;
                let rd = parse_reg(&ops[0], line)?;
                let (sym, off) = match ops[1].split_once('+') {
                    Some((s, o)) => (s.trim().to_string(), parse_int(o, line)?),
                    None => (ops[1].clone(), 0),
                };
                asm.load_addr(rd, &sym, off);
            }
            "br" => {
                need(1)?;
                if let Ok(disp) = parse_int(&ops[0], line) {
                    asm.inst(Instr::Br { rd: Reg::ZERO, disp: disp as i32 });
                } else {
                    asm.br(&ops[0]);
                }
            }
            "bsr" => {
                need(2)?;
                let link = parse_reg(&ops[0], line)?;
                if let Ok(disp) = parse_int(&ops[1], line) {
                    asm.inst(Instr::Br { rd: link, disp: disp as i32 });
                } else {
                    asm.bsr(link, &ops[1]);
                }
            }
            "jmp" => {
                need(1)?;
                let t = ops[0].trim_matches(['(', ')']);
                asm.inst(Instr::Jmp { rd: Reg::ZERO, base: parse_reg(t, line)? });
            }
            "jsr" => {
                need(2)?;
                let rd = parse_reg(&ops[0], line)?;
                let t = ops[1].trim_matches(['(', ')']);
                asm.inst(Instr::Jmp { rd, base: parse_reg(t, line)? });
            }
            "ret" => {
                need(0)?;
                asm.inst(Instr::Jmp { rd: Reg::ZERO, base: Reg::RA });
            }
            "mov" => {
                need(2)?;
                let rs = parse_reg(&ops[0], line)?;
                let rd = parse_reg(&ops[1], line)?;
                asm.inst(Instr::mov(rs, rd));
            }
            "li" => {
                need(2)?;
                let rd = parse_reg(&ops[0], line)?;
                let v = parse_int(&ops[1], line)?;
                if !(i16::MIN as i64..=i16::MAX as i64).contains(&v) {
                    return err(line, format!("li immediate {v} out of 16-bit range"));
                }
                asm.inst(Instr::li(rd, v as i16));
            }
            "trap" => {
                need(0)?;
                asm.inst(Instr::Trap);
            }
            "halt" => {
                need(0)?;
                asm.inst(Instr::Halt);
            }
            "nop" => {
                need(0)?;
                asm.inst(Instr::Nop);
            }
            "codeword" => {
                need(1)?;
                asm.inst(Instr::Codeword(parse_int(&ops[0], line)? as u16));
            }
            "d_ret" => {
                need(0)?;
                asm.inst(Instr::DRet);
            }
            "d_call" => {
                need(1)?;
                let t = ops[0].trim_matches(['(', ')']);
                asm.inst(Instr::DCall { target: parse_reg(t, line)? });
            }
            "d_mfr" => {
                need(2)?;
                asm.inst(Instr::DMfr {
                    rd: parse_reg(&ops[0], line)?,
                    dr: parse_reg(&ops[1], line)?,
                });
            }
            "d_mtr" => {
                need(2)?;
                asm.inst(Instr::DMtr {
                    dr: parse_reg(&ops[0], line)?,
                    rs: parse_reg(&ops[1], line)?,
                });
            }
            _ => {
                // Suffixed forms: ctrap<cond>, d_b<cond>, d_ccall<cond>.
                if let Some(cond) = mnemonic.strip_prefix("ctrap").and_then(cond_from_suffix) {
                    need(1)?;
                    asm.inst(Instr::CTrap { cond, rs: parse_reg(&ops[0], line)? });
                } else if let Some(cond) = mnemonic.strip_prefix("d_b").and_then(cond_from_suffix) {
                    need(2)?;
                    let rs = parse_reg(&ops[0], line)?;
                    let disp = parse_int(&ops[1], line)?;
                    asm.inst(Instr::DBr { cond, rs, disp: disp as i8 });
                } else if let Some(cond) =
                    mnemonic.strip_prefix("d_ccall").and_then(cond_from_suffix)
                {
                    need(2)?;
                    let rs = parse_reg(&ops[0], line)?;
                    let t = ops[1].trim_matches(['(', ')']);
                    asm.inst(Instr::DCCall { cond, rs, target: parse_reg(t, line)? });
                } else {
                    return err(line, format!("unknown mnemonic `{mnemonic}`"));
                }
            }
        }
    }
    Ok(asm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layout;

    #[test]
    fn parse_round_trips_display() {
        // Every instruction printed by Display should re-parse to itself.
        let cases = [
            Instr::Load { width: Width::Q, rd: Reg::gpr(4), base: Reg::SP, disp: 32 },
            Instr::Store { width: Width::B, rs: Reg::gpr(1), base: Reg::gpr(2), disp: -4 },
            Instr::Lda { rd: Reg::gpr(1), base: Reg::ZERO, disp: 100 },
            Instr::Ldah { rd: Reg::gpr(1), base: Reg::gpr(1), disp: 64 },
            Instr::Alu { op: AluOp::Bic, rd: Reg::dise(1), ra: Reg::dise(1), rb: Operand::Imm(7) },
            Instr::Alu {
                op: AluOp::CmpEq,
                rd: Reg::dise(1),
                ra: Reg::dise(1),
                rb: Operand::Reg(Reg::DAR),
            },
            Instr::Trap,
            Instr::CTrap { cond: Cond::Eq, rs: Reg::dise(1) },
            Instr::Codeword(7),
            Instr::Halt,
            Instr::Nop,
            Instr::DBr { cond: Cond::Ne, rs: Reg::dise(1), disp: 1 },
            Instr::DCall { target: Reg::DHDLR },
            Instr::DCCall { cond: Cond::Ne, rs: Reg::dise(1), target: Reg::DHDLR },
            Instr::DRet,
            Instr::DMfr { rd: Reg::gpr(1), dr: Reg::DPV },
            Instr::DMtr { dr: Reg::DPV, rs: Reg::gpr(1) },
        ];
        for inst in cases {
            let text = inst.to_string();
            let asm = parse_asm(&text).unwrap_or_else(|e| panic!("parsing `{text}`: {e}"));
            let p = asm.assemble(Layout::default()).unwrap();
            assert_eq!(p.decode_at(p.text_base), Some(inst), "`{text}`");
        }
    }

    #[test]
    fn parse_program_with_labels_and_data() {
        let src = r"
            # countdown
            start:
                la r2, counter
                ldq r1, 0(r2)
            loop:
                subq r1, 1, r1
                .stmt
                stq r1, 0(r2)
                bgt r1, loop
                halt
            .data
            counter: .quad 5
            buf:     .space 8
            tail:    .byte 1, 2
        ";
        let asm = parse_asm(src).unwrap();
        let p = asm.assemble(Layout::default()).unwrap();
        assert_eq!(p.symbol("counter"), Some(p.data_base));
        assert_eq!(p.symbol("tail"), Some(p.data_base + 16));
        assert_eq!(p.stmt_pcs.len(), 1);
        assert_eq!(p.data[0], 5);
        assert_eq!(*p.data.last().unwrap(), 2);
    }

    #[test]
    fn parse_errors_name_line() {
        let e = parse_asm("nop\nbogus r1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = parse_asm("addq r1, 999, r2").unwrap_err();
        assert!(e.message.contains("out of 0..=255"));

        let e = parse_asm(".data\nnop").unwrap_err();
        assert!(e.message.contains(".data"));
    }

    #[test]
    fn short_load_store_mnemonics_are_errors_not_panics() {
        // 2-character mnemonics: a clear missing-suffix diagnostic.
        for m in ["ld", "st"] {
            let e = parse_asm(&format!("{m} r1, 0(r2)")).unwrap_err();
            assert_eq!(e.line, 1);
            assert!(e.message.contains("width suffix"), "{m}: {}", e.message);
        }
        // 1-character prefixes never reach the suffix logic.
        for m in ["l", "s"] {
            let e = parse_asm(&format!("{m} r1, 0(r2)")).unwrap_err();
            assert!(e.message.contains("unknown mnemonic"), "{m}: {}", e.message);
        }
        // Unknown one-char suffixes fall through to the mnemonic tables.
        let e = parse_asm("ldx r1, 0(r2)").unwrap_err();
        assert!(e.message.contains("unknown mnemonic"), "{}", e.message);
        // Multi-byte suffix characters must not slice mid-character.
        let e = parse_asm("ldé r1, 0(r2)").unwrap_err();
        assert!(e.message.contains("unknown mnemonic"), "{}", e.message);
        // `lda`/`ldah` still parse via their own table entries.
        assert!(parse_asm("lda r1, 4(r2)\nldah r1, 1(zero)").is_ok());
    }

    #[test]
    fn branch_with_numeric_displacement() {
        let asm = parse_asm("beq r1, +2\nbr -1").unwrap();
        let p = asm.assemble(Layout::default()).unwrap();
        assert_eq!(
            p.decode_at(p.text_base),
            Some(Instr::CondBr { cond: Cond::Eq, rs: Reg::gpr(1), disp: 2 })
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let asm = parse_asm("; only comments\n\n# here\n").unwrap();
        assert_eq!(asm.text_len(), 0);
    }
}
