//! Focused dise-mem tests: TLB lookup/refill behaviour and cache
//! eviction under associativity pressure, complementing the proptest
//! invariant in the workspace-level property suite.

use dise_mem::{Cache, CacheConfig, Tlb, PAGE_SIZE};

// --- TLB -----------------------------------------------------------------

/// A miss refills the TLB: the first touch of a page misses, every
/// subsequent byte of the same page hits until the entry is evicted.
#[test]
fn tlb_miss_refills_entry() {
    let mut t = Tlb::paper_default();
    let page = 7 * PAGE_SIZE;
    assert!(!t.contains(page), "cold TLB");
    assert!(!t.access(page), "first touch misses");
    assert!(t.contains(page), "miss refilled the entry");
    for offset in [0, 1, PAGE_SIZE / 2, PAGE_SIZE - 1] {
        assert!(t.access(page + offset), "same-page offset {offset:#x} must hit");
    }
    assert_eq!(t.stats().misses, 1);
    assert_eq!(t.stats().accesses, 5);
}

/// Page granularity: adjacent pages occupy distinct entries, and the
/// byte just across a page boundary misses while the byte before hits.
#[test]
fn tlb_boundaries_are_page_granular() {
    let mut t = Tlb::paper_default();
    assert!(!t.access(PAGE_SIZE - 1));
    assert!(!t.access(PAGE_SIZE), "next page is a separate translation");
    assert!(t.access(PAGE_SIZE - 1));
    assert!(t.access(PAGE_SIZE));
}

/// Set-associative refill under pressure: with 64 entries 4-way, pages
/// congruent modulo the set count compete for 4 ways; the fifth
/// conflicting page evicts the least recently used of the four.
#[test]
fn tlb_refill_evicts_lru_within_set() {
    let mut t = Tlb::new(64, 4);
    let sets = 64 / 4; // pages p and p + sets share a set
    let conflicting: Vec<u64> = (0..4).map(|i| (i * sets) as u64 * PAGE_SIZE).collect();
    for &p in &conflicting {
        assert!(!t.access(p));
    }
    // Touch page 0 again so the LRU victim is conflicting[1].
    assert!(t.access(conflicting[0]));
    let fifth = (4 * sets) as u64 * PAGE_SIZE;
    assert!(!t.access(fifth), "fifth way misses");
    assert!(t.contains(conflicting[0]), "recently used entry survives");
    assert!(!t.contains(conflicting[1]), "LRU entry was evicted");
    assert!(t.contains(conflicting[2]));
    assert!(t.contains(conflicting[3]));
    assert!(t.contains(fifth));
}

/// Non-conflicting pages do not evict each other: a 64-entry TLB holds
/// 64 consecutive pages simultaneously, and the 65th (which wraps onto
/// set 0) only displaces within its own set.
#[test]
fn tlb_holds_full_capacity_of_distinct_pages() {
    let mut t = Tlb::new(64, 4);
    for p in 0..64u64 {
        assert!(!t.access(p * PAGE_SIZE));
    }
    for p in 0..64u64 {
        assert!(t.contains(p * PAGE_SIZE), "page {p} resident at full capacity");
    }
    t.access(64 * PAGE_SIZE); // maps to set 0
    let resident = (0..=64u64).filter(|&p| t.contains(p * PAGE_SIZE)).count();
    assert_eq!(resident, 64, "exactly one entry was displaced");
}

/// Flush invalidates every entry; the next accesses all refill.
#[test]
fn tlb_flush_forces_refill() {
    let mut t = Tlb::paper_default();
    for p in 0..8u64 {
        t.access(p * PAGE_SIZE);
    }
    t.flush();
    for p in 0..8u64 {
        assert!(!t.contains(p * PAGE_SIZE));
        assert!(!t.access(p * PAGE_SIZE), "page {p} must refill after flush");
    }
}

// --- Cache ---------------------------------------------------------------

/// Geometry for eviction tests: 2 sets x 2 ways x 64-byte lines, so
/// lines with address stride 128 are congruent.
fn two_way() -> Cache {
    Cache::new(CacheConfig { size: 256, assoc: 2, line: 64 })
}

/// Exactly `assoc` conflicting lines fit; one more evicts the LRU line,
/// and the eviction victim follows recency, not insertion order.
#[test]
fn cache_eviction_respects_lru_under_pressure() {
    let mut c = two_way();
    let stride = 128u64; // sets * line
    c.access(0);
    c.access(stride);
    assert!(c.contains(0) && c.contains(stride), "both ways occupied");

    // Refresh line 0: the LRU way now holds `stride`.
    assert!(c.access(0));
    assert!(!c.access(2 * stride), "third conflicting line misses");
    assert!(c.contains(0), "MRU line survives");
    assert!(!c.contains(stride), "LRU line evicted");
    assert!(c.contains(2 * stride));
}

/// Round-robin sweeps over assoc+1 conflicting lines thrash: with true
/// LRU every access misses, the pathological case associativity
/// pressure produces.
#[test]
fn cache_thrashes_on_cyclic_overcommit() {
    let mut c = two_way();
    let stride = 128u64;
    let lines = [0, stride, 2 * stride];
    for round in 0..5 {
        for &l in &lines {
            assert!(!c.access(l), "round {round}: cyclic sweep over assoc+1 lines never hits");
        }
    }
    assert_eq!(c.stats().misses, 15);
}

/// The same working set fits once associativity covers it: raising
/// associativity from 2 to 4 (same capacity) turns the thrashing sweep
/// into steady hits after the cold pass.
#[test]
fn cache_higher_associativity_absorbs_conflicts() {
    let mut c = Cache::new(CacheConfig { size: 256, assoc: 4, line: 64 });
    let stride = 64u64; // one set: every line conflicts
    let lines = [0, 2 * stride, 4 * stride]; // distinct lines, same set
    for &l in &lines {
        assert!(!c.access(l), "cold pass misses");
    }
    for _ in 0..5 {
        for &l in &lines {
            assert!(c.access(l), "working set within associativity must hit");
        }
    }
    assert_eq!(c.stats().misses, 3, "only the cold pass missed");
}

/// Evictions are per-set: pressure in one set never evicts another
/// set's lines.
#[test]
fn cache_eviction_is_set_local() {
    let mut c = two_way();
    let other_set = 64u64; // line 1 of set 1
    c.access(other_set);
    // Overcommit set 0 thoroughly.
    for i in 0..8u64 {
        c.access(i * 128);
    }
    assert!(c.contains(other_set), "set 1 is untouched by set 0 pressure");
}

/// Statistics stay consistent through eviction traffic:
/// accesses = hits + misses, and contains() never counts.
#[test]
fn cache_stats_track_eviction_traffic() {
    let mut c = two_way();
    let mut expected_misses = 0u64;
    for i in 0..6u64 {
        if !c.access(i * 128) {
            expected_misses += 1;
        }
        let _ = c.contains(i * 128); // probes must not count
    }
    let s = c.stats();
    assert_eq!(s.accesses, 6);
    assert_eq!(s.misses, expected_misses);
    assert_eq!(expected_misses, 6, "pure conflict stream misses throughout");
    c.reset_stats();
    assert_eq!(c.stats().accesses, 0);
    assert!(c.contains(5 * 128), "reset_stats keeps contents");
}
