//! # dise-mem — memory subsystem for the DISE reproduction
//!
//! Provides the three memory-related substrates the paper's evaluation
//! depends on:
//!
//! * [`Memory`] — a sparse, paged, 64-bit physical/virtual memory with
//!   per-page write protection. The `mprotect`-style interface
//!   ([`Memory::protect_page`]) is what the **virtual-memory watchpoint
//!   backend** uses to trap stores to watched pages.
//! * [`Cache`] — a parameterised set-associative cache with LRU
//!   replacement, used for the L1 instruction/data caches and the unified
//!   L2.
//! * [`Tlb`] and [`MemSystem`] — translation lookaside buffers and the
//!   composed hierarchy with the paper's configuration (32 KB 2-way L1s,
//!   1 MB 4-way L2, 64-entry 4-way TLBs, 100-cycle memory).
//!
//! ```
//! use dise_mem::{Memory, MemSystem, MemConfig};
//!
//! let mut mem = Memory::new();
//! mem.write_u(0x1000_0000, 8, 0xdead_beef);
//! assert_eq!(mem.read_u(0x1000_0000, 8), 0xdead_beef);
//!
//! let mut sys = MemSystem::new(MemConfig::default());
//! let cold = sys.data_access(0x1000_0000, false);
//! let warm = sys.data_access(0x1000_0000, false);
//! assert!(cold > warm, "second access hits the L1");
//! ```

mod cache;
mod memory;
mod system;
mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use memory::{AddrHasher, Checkpoint, CowStats, Memory, ProtFault, PAGE_SIZE};
pub use system::{MemConfig, MemSystem};
pub use tlb::Tlb;
