//! Sparse paged memory with per-page write protection.

use std::collections::{HashMap, HashSet};

/// Page size in bytes (4 KB, "on the small end for real systems" per the
/// paper's virtual-memory discussion).
pub const PAGE_SIZE: u64 = 4096;

/// A write hit a write-protected page.
///
/// Carries the faulting address so the debugger can decide whether the
/// store touched watched data or merely shares the page with it (a
/// *spurious address transition*).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProtFault {
    /// The faulting byte address.
    pub addr: u64,
}

impl std::fmt::Display for ProtFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "write to protected page at {:#x}", self.addr)
    }
}

impl std::error::Error for ProtFault {}

/// Sparse 64-bit byte-addressable memory.
///
/// Pages are allocated on first touch and zero-filled. Reads never fault;
/// checked writes ([`Memory::write_checked`]) fault on write-protected
/// pages while plain writes ([`Memory::write_u`]) bypass protection (the
/// debugger's own accesses use the latter).
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
    write_protected: HashSet<u64>,
}

impl Memory {
    /// An empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    #[inline]
    fn page_of(addr: u64) -> u64 {
        addr / PAGE_SIZE
    }

    /// The page-aligned base address containing `addr`.
    #[inline]
    pub fn page_base(addr: u64) -> u64 {
        addr & !(PAGE_SIZE - 1)
    }

    /// Read one byte (zero if the page was never written).
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&Self::page_of(addr)) {
            Some(p) => p[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Write one byte, ignoring protection.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        let page = self
            .pages
            .entry(Self::page_of(addr))
            .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]));
        page[(addr % PAGE_SIZE) as usize] = val;
    }

    /// Read `width` bytes (1, 2, 4 or 8) little-endian, zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn read_u(&self, addr: u64, width: u64) -> u64 {
        assert!(matches!(width, 1 | 2 | 4 | 8), "bad access width {width}");
        let mut v = 0u64;
        for i in 0..width {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Write the low `width` bytes of `val` little-endian, ignoring
    /// protection.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn write_u(&mut self, addr: u64, width: u64, val: u64) {
        assert!(matches!(width, 1 | 2 | 4 | 8), "bad access width {width}");
        for i in 0..width {
            self.write_u8(addr.wrapping_add(i), (val >> (8 * i)) as u8);
        }
    }

    /// Write with protection checking, as the application's stores do.
    ///
    /// # Errors
    ///
    /// Returns [`ProtFault`] — without performing any part of the write —
    /// if any byte of the access lies on a write-protected page.
    pub fn write_checked(&mut self, addr: u64, width: u64, val: u64) -> Result<(), ProtFault> {
        for i in 0..width {
            let a = addr.wrapping_add(i);
            if self.write_protected.contains(&Self::page_of(a)) {
                return Err(ProtFault { addr: a });
            }
        }
        self.write_u(addr, width, val);
        Ok(())
    }

    /// True if a `width`-byte write at `addr` would fault.
    pub fn write_would_fault(&self, addr: u64, width: u64) -> bool {
        (0..width).any(|i| self.write_protected.contains(&Self::page_of(addr.wrapping_add(i))))
    }

    /// Set or clear write protection on the page containing `addr`
    /// (the debugger's `mprotect`).
    pub fn protect_page(&mut self, addr: u64, protected: bool) {
        if protected {
            self.write_protected.insert(Self::page_of(addr));
        } else {
            self.write_protected.remove(&Self::page_of(addr));
        }
    }

    /// True if the page containing `addr` is write-protected.
    pub fn page_is_protected(&self, addr: u64) -> bool {
        self.write_protected.contains(&Self::page_of(addr))
    }

    /// Remove all page protections.
    pub fn clear_protections(&mut self) {
        self.write_protected.clear();
    }

    /// Copy a byte slice into memory, ignoring protection (loader use).
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Read `len` bytes into a fresh vector.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }

    /// Number of distinct pages that have been touched by writes.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_filled_on_first_read() {
        let m = Memory::new();
        assert_eq!(m.read_u(0x4000, 8), 0);
        assert_eq!(m.read_u8(u64::MAX), 0);
    }

    #[test]
    fn widths_round_trip() {
        let mut m = Memory::new();
        for (w, v) in [(1u64, 0xab), (2, 0xabcd), (4, 0xdead_beef), (8, 0x0123_4567_89ab_cdef)] {
            m.write_u(0x100, w, v);
            assert_eq!(m.read_u(0x100, w), v);
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u(0x10, 4, 0x0403_0201);
        assert_eq!(m.read_u8(0x10), 1);
        assert_eq!(m.read_u8(0x13), 4);
        assert_eq!(m.read_u(0x10, 2), 0x0201);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE - 4;
        m.write_u(addr, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u(addr, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn protection_faults_checked_writes_only() {
        let mut m = Memory::new();
        m.write_u(0x2000, 8, 7);
        m.protect_page(0x2000, true);
        assert!(m.page_is_protected(0x2fff));
        assert!(!m.page_is_protected(0x3000));

        let err = m.write_checked(0x2008, 8, 9).unwrap_err();
        assert_eq!(err.addr, 0x2008);
        assert_eq!(m.read_u(0x2008, 8), 0, "faulting write must not land");

        // Unchecked writes (debugger) bypass protection.
        m.write_u(0x2008, 8, 9);
        assert_eq!(m.read_u(0x2008, 8), 9);

        m.protect_page(0x2000, false);
        m.write_checked(0x2010, 8, 11).unwrap();
        assert_eq!(m.read_u(0x2010, 8), 11);
    }

    #[test]
    fn protection_catches_partial_overlap_from_prior_page() {
        let mut m = Memory::new();
        m.protect_page(PAGE_SIZE, true);
        // A quad starting 4 bytes before the protected page spills into it.
        let err = m.write_checked(PAGE_SIZE - 4, 8, 1).unwrap_err();
        assert_eq!(err.addr, PAGE_SIZE);
        assert!(m.write_would_fault(PAGE_SIZE - 1, 2));
        assert!(!m.write_would_fault(PAGE_SIZE - 2, 2));
    }

    #[test]
    fn bytes_helpers() {
        let mut m = Memory::new();
        m.write_bytes(0x500, &[1, 2, 3, 4]);
        assert_eq!(m.read_bytes(0x500, 4), vec![1, 2, 3, 4]);
        assert_eq!(m.read_bytes(0x4fe, 3), vec![0, 0, 1]);
    }

    #[test]
    fn clear_protections() {
        let mut m = Memory::new();
        m.protect_page(0x1000, true);
        m.protect_page(0x9000, true);
        m.clear_protections();
        assert!(!m.page_is_protected(0x1000));
        assert!(!m.page_is_protected(0x9000));
    }
}
