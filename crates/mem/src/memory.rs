//! Sparse paged memory with per-page write protection and
//! copy-on-write forking.
//!
//! Pages are reference-counted (`Arc`) so cloning a [`Memory`] — or
//! taking a [`Checkpoint`] — is O(page-table), not O(resident bytes):
//! both sides share every page until one of them writes, at which point
//! [`Arc::make_mut`] unshares just the written page. The protection set
//! is a plain per-`Memory` page-number set, deep-copied on fork, so a
//! forked child protecting a page never protects its parent's.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// A multiply-fold hasher for `u64` address-like keys (page numbers
/// here, store-dependence quads in `dise-cpu`). Every simulated memory
/// access resolves at least one page, and the default SipHash dominates
/// the functional simulator's profile; simulator addresses need spread,
/// not DoS resistance.
#[derive(Clone, Copy, Default, Debug)]
pub struct AddrHasher(u64);

impl Hasher for AddrHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut h = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        self.0 = h;
    }
}

type Page = [u8; PAGE_SIZE as usize];
type PageMap = HashMap<u64, Arc<Page>, BuildHasherDefault<AddrHasher>>;
type PageSet = HashSet<u64, BuildHasherDefault<AddrHasher>>;

/// Page size in bytes (4 KB, "on the small end for real systems" per the
/// paper's virtual-memory discussion).
pub const PAGE_SIZE: u64 = 4096;

/// A write hit a write-protected page.
///
/// Carries the faulting address so the debugger can decide whether the
/// store touched watched data or merely shares the page with it (a
/// *spurious address transition*).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProtFault {
    /// The faulting byte address.
    pub addr: u64,
}

impl std::fmt::Display for ProtFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "write to protected page at {:#x}", self.addr)
    }
}

impl std::error::Error for ProtFault {}

/// Copy-on-write bookkeeping for one [`Memory`].
///
/// `pages_shared` is the number of resident pages at the most recent
/// sharing event (fork, or restore from a checkpoint); `pages_copied`
/// counts every page this memory had to unshare before writing, over
/// its whole lifetime; `forks` counts how many children were forked
/// *from* this memory. For a fresh fork child whose parent has not been
/// written since the fork, `pages_copied + shared_pages() ==
/// pages_shared` holds at every point of the child's run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CowStats {
    /// Resident pages at the most recent fork/restore (all shared then).
    pub pages_shared: u64,
    /// Lifetime count of pages unshared (physically copied) by writes.
    pub pages_copied: u64,
    /// Number of children forked from this memory.
    pub forks: u64,
}

/// An O(page-table) snapshot of a [`Memory`].
///
/// Holds reference-counted pages and a deep copy of the protection
/// set; restoring never copies page bytes — pages become shared again
/// and unshare lazily on the next write to either side.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    pages: PageMap,
    write_protected: PageSet,
}

impl Checkpoint {
    /// Number of pages captured by this checkpoint.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

/// Sparse 64-bit byte-addressable memory.
///
/// Pages are allocated on first touch and zero-filled. Reads never fault;
/// checked writes ([`Memory::write_checked`]) fault on write-protected
/// pages while plain writes ([`Memory::write_u`]) bypass protection (the
/// debugger's own accesses use the latter).
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: PageMap,
    write_protected: PageSet,
    cow: CowStats,
}

impl Memory {
    /// An empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    #[inline]
    fn page_of(addr: u64) -> u64 {
        addr / PAGE_SIZE
    }

    /// The page-aligned base address containing `addr`.
    #[inline]
    pub fn page_base(addr: u64) -> u64 {
        addr & !(PAGE_SIZE - 1)
    }

    /// Read one byte (zero if the page was never written).
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&Self::page_of(addr)) {
            Some(p) => p[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Resolve page number `pn` for writing: allocate a zero page on
    /// first touch, unshare (physically copy) a page still shared with
    /// a fork or checkpoint.
    #[inline]
    fn page_mut(&mut self, pn: u64) -> &mut Page {
        let page = self.pages.entry(pn).or_insert_with(|| Arc::new([0; PAGE_SIZE as usize]));
        if Arc::strong_count(page) > 1 {
            self.cow.pages_copied += 1;
        }
        Arc::make_mut(page)
    }

    /// Write one byte, ignoring protection.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        let page = self.page_mut(Self::page_of(addr));
        page[(addr % PAGE_SIZE) as usize] = val;
    }

    /// Read `width` bytes (1, 2, 4 or 8) little-endian, zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn read_u(&self, addr: u64, width: u64) -> u64 {
        assert!(matches!(width, 1 | 2 | 4 | 8), "bad access width {width}");
        let off = (addr % PAGE_SIZE) as usize;
        // Fast path: the access lies within one page, resolved once.
        if off + width as usize <= PAGE_SIZE as usize {
            return match self.pages.get(&Self::page_of(addr)) {
                Some(p) => {
                    let mut v = 0u64;
                    for i in 0..width as usize {
                        v |= (p[off + i] as u64) << (8 * i);
                    }
                    v
                }
                None => 0,
            };
        }
        let mut v = 0u64;
        for i in 0..width {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Write the low `width` bytes of `val` little-endian, ignoring
    /// protection.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn write_u(&mut self, addr: u64, width: u64, val: u64) {
        assert!(matches!(width, 1 | 2 | 4 | 8), "bad access width {width}");
        let off = (addr % PAGE_SIZE) as usize;
        // Fast path: the access lies within one page, resolved once.
        if off + width as usize <= PAGE_SIZE as usize {
            let page = self.page_mut(Self::page_of(addr));
            for i in 0..width as usize {
                page[off + i] = (val >> (8 * i)) as u8;
            }
            return;
        }
        for i in 0..width {
            self.write_u8(addr.wrapping_add(i), (val >> (8 * i)) as u8);
        }
    }

    /// Write with protection checking, as the application's stores do.
    ///
    /// # Errors
    ///
    /// Returns [`ProtFault`] — without performing any part of the write —
    /// if any byte of the access lies on a write-protected page.
    pub fn write_checked(&mut self, addr: u64, width: u64, val: u64) -> Result<(), ProtFault> {
        // Protection is per-page and accesses are ≤ 8 bytes, so at most
        // two pages need probing; the common no-protection case pays
        // only the emptiness check.
        if !self.write_protected.is_empty() {
            if self.write_protected.contains(&Self::page_of(addr)) {
                return Err(ProtFault { addr });
            }
            let last = addr.wrapping_add(width - 1);
            if Self::page_of(last) != Self::page_of(addr)
                && self.write_protected.contains(&Self::page_of(last))
            {
                return Err(ProtFault { addr: Self::page_base(last) });
            }
        }
        self.write_u(addr, width, val);
        Ok(())
    }

    /// True if a `width`-byte write at `addr` would fault.
    pub fn write_would_fault(&self, addr: u64, width: u64) -> bool {
        !self.write_protected.is_empty()
            && (0..width)
                .any(|i| self.write_protected.contains(&Self::page_of(addr.wrapping_add(i))))
    }

    /// Set or clear write protection on the page containing `addr`
    /// (the debugger's `mprotect`).
    pub fn protect_page(&mut self, addr: u64, protected: bool) {
        if protected {
            self.write_protected.insert(Self::page_of(addr));
        } else {
            self.write_protected.remove(&Self::page_of(addr));
        }
    }

    /// True if the page containing `addr` is write-protected.
    pub fn page_is_protected(&self, addr: u64) -> bool {
        self.write_protected.contains(&Self::page_of(addr))
    }

    /// Remove all page protections.
    pub fn clear_protections(&mut self) {
        self.write_protected.clear();
    }

    /// Copy a byte slice into memory, ignoring protection (loader use).
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        // Per-page chunks: one lookup (and at most one unshare) per
        // page instead of one per byte.
        let mut done = 0usize;
        while done < bytes.len() {
            let a = addr + done as u64;
            let off = (a % PAGE_SIZE) as usize;
            let take = (PAGE_SIZE as usize - off).min(bytes.len() - done);
            let page = self.page_mut(Self::page_of(a));
            page[off..off + take].copy_from_slice(&bytes[done..done + take]);
            done += take;
        }
    }

    /// Read `len` bytes into a fresh vector.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut a = addr;
        let end = addr + len as u64;
        // Per-page chunks: one lookup per page instead of one per byte.
        while a < end {
            let off = (a % PAGE_SIZE) as usize;
            let take = ((PAGE_SIZE as usize - off) as u64).min(end - a) as usize;
            match self.pages.get(&Self::page_of(a)) {
                Some(p) => out.extend_from_slice(&p[off..off + take]),
                None => out.resize(out.len() + take, 0),
            }
            a += take as u64;
        }
        out
    }

    /// Number of distinct pages that have been touched by writes.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Bytes backed by resident pages (`resident_pages * PAGE_SIZE`).
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    /// Pages currently shared with at least one fork or checkpoint.
    ///
    /// O(page-table); intended for tests and ablation reporting, not
    /// hot paths.
    pub fn shared_pages(&self) -> usize {
        self.pages.values().filter(|p| Arc::strong_count(p) > 1).count()
    }

    /// Copy-on-write counters for this memory (see [`CowStats`]).
    pub fn cow_stats(&self) -> CowStats {
        self.cow
    }

    /// Fork a copy-on-write child in O(page-table) time.
    ///
    /// The child shares every resident page with `self`; either side
    /// copies a page only when it first writes it. The protection set
    /// is deep-copied: protections the child adds or removes after the
    /// fork never affect the parent (and vice versa). The child starts
    /// with fresh [`CowStats`] (`pages_shared` = resident pages now);
    /// the parent's `forks` counter is bumped and its `pages_shared`
    /// re-anchored to the same value.
    pub fn fork(&mut self) -> Memory {
        let n = self.pages.len() as u64;
        self.cow.forks += 1;
        self.cow.pages_shared = n;
        Memory {
            pages: self.pages.clone(),
            write_protected: self.write_protected.clone(),
            cow: CowStats { pages_shared: n, pages_copied: 0, forks: 0 },
        }
    }

    /// Snapshot the current contents (and protection set) in
    /// O(page-table) time without copying page bytes.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint { pages: self.pages.clone(), write_protected: self.write_protected.clone() }
    }

    /// Restore contents and protections from a checkpoint.
    ///
    /// O(page-table): pages become shared with the checkpoint again
    /// and unshare lazily on the next write. `pages_shared` is
    /// re-anchored to the restored page count; `pages_copied` and
    /// `forks` remain lifetime counters.
    pub fn restore(&mut self, ck: &Checkpoint) {
        self.pages = ck.pages.clone();
        self.write_protected = ck.write_protected.clone();
        self.cow.pages_shared = self.pages.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_filled_on_first_read() {
        let m = Memory::new();
        assert_eq!(m.read_u(0x4000, 8), 0);
        assert_eq!(m.read_u8(u64::MAX), 0);
    }

    #[test]
    fn widths_round_trip() {
        let mut m = Memory::new();
        for (w, v) in [(1u64, 0xab), (2, 0xabcd), (4, 0xdead_beef), (8, 0x0123_4567_89ab_cdef)] {
            m.write_u(0x100, w, v);
            assert_eq!(m.read_u(0x100, w), v);
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u(0x10, 4, 0x0403_0201);
        assert_eq!(m.read_u8(0x10), 1);
        assert_eq!(m.read_u8(0x13), 4);
        assert_eq!(m.read_u(0x10, 2), 0x0201);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE - 4;
        m.write_u(addr, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u(addr, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn protection_faults_checked_writes_only() {
        let mut m = Memory::new();
        m.write_u(0x2000, 8, 7);
        m.protect_page(0x2000, true);
        assert!(m.page_is_protected(0x2fff));
        assert!(!m.page_is_protected(0x3000));

        let err = m.write_checked(0x2008, 8, 9).unwrap_err();
        assert_eq!(err.addr, 0x2008);
        assert_eq!(m.read_u(0x2008, 8), 0, "faulting write must not land");

        // Unchecked writes (debugger) bypass protection.
        m.write_u(0x2008, 8, 9);
        assert_eq!(m.read_u(0x2008, 8), 9);

        m.protect_page(0x2000, false);
        m.write_checked(0x2010, 8, 11).unwrap();
        assert_eq!(m.read_u(0x2010, 8), 11);
    }

    #[test]
    fn protection_catches_partial_overlap_from_prior_page() {
        let mut m = Memory::new();
        m.protect_page(PAGE_SIZE, true);
        // A quad starting 4 bytes before the protected page spills into it.
        let err = m.write_checked(PAGE_SIZE - 4, 8, 1).unwrap_err();
        assert_eq!(err.addr, PAGE_SIZE);
        assert!(m.write_would_fault(PAGE_SIZE - 1, 2));
        assert!(!m.write_would_fault(PAGE_SIZE - 2, 2));
    }

    #[test]
    fn bytes_helpers() {
        let mut m = Memory::new();
        m.write_bytes(0x500, &[1, 2, 3, 4]);
        assert_eq!(m.read_bytes(0x500, 4), vec![1, 2, 3, 4]);
        assert_eq!(m.read_bytes(0x4fe, 3), vec![0, 0, 1]);
    }

    #[test]
    fn fork_shares_pages_and_unshares_on_write() {
        let mut parent = Memory::new();
        parent.write_u(0x1000, 8, 0x1111);
        parent.write_u(0x5000, 8, 0x5555);
        let mut child = parent.fork();

        assert_eq!(parent.cow_stats().forks, 1);
        assert_eq!(child.cow_stats(), CowStats { pages_shared: 2, pages_copied: 0, forks: 0 });
        assert_eq!(child.shared_pages(), 2);
        assert_eq!(child.resident_bytes(), 2 * PAGE_SIZE);

        // Child write unshares exactly one page; the parent's copy is
        // untouched.
        child.write_u(0x1000, 8, 0x2222);
        assert_eq!(child.cow_stats().pages_copied, 1);
        assert_eq!(child.shared_pages(), 1);
        assert_eq!(parent.read_u(0x1000, 8), 0x1111);
        assert_eq!(child.read_u(0x1000, 8), 0x2222);

        // Coherence across the fork's lifetime (parent unwritten):
        // copied + still-shared == shared-at-fork.
        let cs = child.cow_stats();
        assert_eq!(cs.pages_copied + child.shared_pages() as u64, cs.pages_shared);

        // A second write to the now-private page copies nothing more;
        // a write to a fresh page allocates without copying.
        child.write_u(0x1008, 8, 7);
        child.write_u(0x9000, 8, 9);
        assert_eq!(child.cow_stats().pages_copied, 1);
        assert_eq!(parent.read_u(0x9000, 8), 0);
    }

    #[test]
    fn parent_writes_do_not_leak_into_child() {
        let mut parent = Memory::new();
        parent.write_u(0x2000, 8, 1);
        let child = parent.fork();
        parent.write_u(0x2000, 8, 2);
        assert_eq!(parent.cow_stats().pages_copied, 1);
        assert_eq!(child.read_u(0x2000, 8), 1);
    }

    #[test]
    fn fork_protection_sets_are_independent() {
        let mut parent = Memory::new();
        parent.write_u(0x3000, 8, 3);
        parent.protect_page(0x3000, true);
        let mut child = parent.fork();

        // Child inherits the protections that existed at the fork...
        assert!(child.page_is_protected(0x3000));
        // ...but later changes are fully isolated, both directions.
        child.protect_page(0x7000, true);
        assert!(!parent.page_is_protected(0x7000));
        child.protect_page(0x3000, false);
        assert!(parent.page_is_protected(0x3000));
        parent.protect_page(0x8000, true);
        assert!(!child.page_is_protected(0x8000));

        // And protection stays per-memory even for still-shared pages.
        child.write_checked(0x3000, 8, 4).unwrap();
        assert!(parent.write_checked(0x3000, 8, 5).is_err());
        // A faulted write never unshares: the check runs before the
        // copy-on-write path touches the page.
        assert_eq!(parent.cow_stats().pages_copied, 0);
    }

    #[test]
    fn checkpoint_restore_round_trips_contents_and_protections() {
        let mut m = Memory::new();
        m.write_u(0x1000, 8, 0xaa);
        m.protect_page(0x1000, true);
        let ck = m.checkpoint();
        assert_eq!(ck.resident_pages(), 1);

        m.protect_page(0x1000, false);
        m.write_u(0x1000, 8, 0xbb);
        m.write_u(0x4000, 8, 0xcc);
        m.restore(&ck);

        assert_eq!(m.read_u(0x1000, 8), 0xaa);
        assert_eq!(m.read_u(0x4000, 8), 0, "post-checkpoint page dropped");
        assert!(m.page_is_protected(0x1000));
        assert_eq!(m.cow_stats().pages_shared, 1);

        // Restored pages are shared with the checkpoint; writing after
        // restore unshares without disturbing the checkpoint.
        m.write_u(0x1000, 8, 0xdd);
        let mut again = Memory::new();
        again.restore(&ck);
        assert_eq!(again.read_u(0x1000, 8), 0xaa);
    }

    #[test]
    fn clear_protections() {
        let mut m = Memory::new();
        m.protect_page(0x1000, true);
        m.protect_page(0x9000, true);
        m.clear_protections();
        assert!(!m.page_is_protected(0x1000));
        assert!(!m.page_is_protected(0x9000));
    }
}
