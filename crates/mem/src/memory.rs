//! Sparse paged memory with per-page write protection.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A multiply-fold hasher for `u64` address-like keys (page numbers
/// here, store-dependence quads in `dise-cpu`). Every simulated memory
/// access resolves at least one page, and the default SipHash dominates
/// the functional simulator's profile; simulator addresses need spread,
/// not DoS resistance.
#[derive(Clone, Copy, Default, Debug)]
pub struct AddrHasher(u64);

impl Hasher for AddrHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut h = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        self.0 = h;
    }
}

type PageMap = HashMap<u64, Box<[u8; PAGE_SIZE as usize]>, BuildHasherDefault<AddrHasher>>;
type PageSet = HashSet<u64, BuildHasherDefault<AddrHasher>>;

/// Page size in bytes (4 KB, "on the small end for real systems" per the
/// paper's virtual-memory discussion).
pub const PAGE_SIZE: u64 = 4096;

/// A write hit a write-protected page.
///
/// Carries the faulting address so the debugger can decide whether the
/// store touched watched data or merely shares the page with it (a
/// *spurious address transition*).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProtFault {
    /// The faulting byte address.
    pub addr: u64,
}

impl std::fmt::Display for ProtFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "write to protected page at {:#x}", self.addr)
    }
}

impl std::error::Error for ProtFault {}

/// Sparse 64-bit byte-addressable memory.
///
/// Pages are allocated on first touch and zero-filled. Reads never fault;
/// checked writes ([`Memory::write_checked`]) fault on write-protected
/// pages while plain writes ([`Memory::write_u`]) bypass protection (the
/// debugger's own accesses use the latter).
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: PageMap,
    write_protected: PageSet,
}

impl Memory {
    /// An empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    #[inline]
    fn page_of(addr: u64) -> u64 {
        addr / PAGE_SIZE
    }

    /// The page-aligned base address containing `addr`.
    #[inline]
    pub fn page_base(addr: u64) -> u64 {
        addr & !(PAGE_SIZE - 1)
    }

    /// Read one byte (zero if the page was never written).
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&Self::page_of(addr)) {
            Some(p) => p[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Write one byte, ignoring protection.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        let page = self
            .pages
            .entry(Self::page_of(addr))
            .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]));
        page[(addr % PAGE_SIZE) as usize] = val;
    }

    /// Read `width` bytes (1, 2, 4 or 8) little-endian, zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn read_u(&self, addr: u64, width: u64) -> u64 {
        assert!(matches!(width, 1 | 2 | 4 | 8), "bad access width {width}");
        let off = (addr % PAGE_SIZE) as usize;
        // Fast path: the access lies within one page, resolved once.
        if off + width as usize <= PAGE_SIZE as usize {
            return match self.pages.get(&Self::page_of(addr)) {
                Some(p) => {
                    let mut v = 0u64;
                    for i in 0..width as usize {
                        v |= (p[off + i] as u64) << (8 * i);
                    }
                    v
                }
                None => 0,
            };
        }
        let mut v = 0u64;
        for i in 0..width {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Write the low `width` bytes of `val` little-endian, ignoring
    /// protection.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn write_u(&mut self, addr: u64, width: u64, val: u64) {
        assert!(matches!(width, 1 | 2 | 4 | 8), "bad access width {width}");
        let off = (addr % PAGE_SIZE) as usize;
        // Fast path: the access lies within one page, resolved once.
        if off + width as usize <= PAGE_SIZE as usize {
            let page = self
                .pages
                .entry(Self::page_of(addr))
                .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]));
            for i in 0..width as usize {
                page[off + i] = (val >> (8 * i)) as u8;
            }
            return;
        }
        for i in 0..width {
            self.write_u8(addr.wrapping_add(i), (val >> (8 * i)) as u8);
        }
    }

    /// Write with protection checking, as the application's stores do.
    ///
    /// # Errors
    ///
    /// Returns [`ProtFault`] — without performing any part of the write —
    /// if any byte of the access lies on a write-protected page.
    pub fn write_checked(&mut self, addr: u64, width: u64, val: u64) -> Result<(), ProtFault> {
        // Protection is per-page and accesses are ≤ 8 bytes, so at most
        // two pages need probing; the common no-protection case pays
        // only the emptiness check.
        if !self.write_protected.is_empty() {
            if self.write_protected.contains(&Self::page_of(addr)) {
                return Err(ProtFault { addr });
            }
            let last = addr.wrapping_add(width - 1);
            if Self::page_of(last) != Self::page_of(addr)
                && self.write_protected.contains(&Self::page_of(last))
            {
                return Err(ProtFault { addr: Self::page_base(last) });
            }
        }
        self.write_u(addr, width, val);
        Ok(())
    }

    /// True if a `width`-byte write at `addr` would fault.
    pub fn write_would_fault(&self, addr: u64, width: u64) -> bool {
        !self.write_protected.is_empty()
            && (0..width)
                .any(|i| self.write_protected.contains(&Self::page_of(addr.wrapping_add(i))))
    }

    /// Set or clear write protection on the page containing `addr`
    /// (the debugger's `mprotect`).
    pub fn protect_page(&mut self, addr: u64, protected: bool) {
        if protected {
            self.write_protected.insert(Self::page_of(addr));
        } else {
            self.write_protected.remove(&Self::page_of(addr));
        }
    }

    /// True if the page containing `addr` is write-protected.
    pub fn page_is_protected(&self, addr: u64) -> bool {
        self.write_protected.contains(&Self::page_of(addr))
    }

    /// Remove all page protections.
    pub fn clear_protections(&mut self) {
        self.write_protected.clear();
    }

    /// Copy a byte slice into memory, ignoring protection (loader use).
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Read `len` bytes into a fresh vector.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut a = addr;
        let end = addr + len as u64;
        // Per-page chunks: one lookup per page instead of one per byte.
        while a < end {
            let off = (a % PAGE_SIZE) as usize;
            let take = ((PAGE_SIZE as usize - off) as u64).min(end - a) as usize;
            match self.pages.get(&Self::page_of(a)) {
                Some(p) => out.extend_from_slice(&p[off..off + take]),
                None => out.resize(out.len() + take, 0),
            }
            a += take as u64;
        }
        out
    }

    /// Number of distinct pages that have been touched by writes.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_filled_on_first_read() {
        let m = Memory::new();
        assert_eq!(m.read_u(0x4000, 8), 0);
        assert_eq!(m.read_u8(u64::MAX), 0);
    }

    #[test]
    fn widths_round_trip() {
        let mut m = Memory::new();
        for (w, v) in [(1u64, 0xab), (2, 0xabcd), (4, 0xdead_beef), (8, 0x0123_4567_89ab_cdef)] {
            m.write_u(0x100, w, v);
            assert_eq!(m.read_u(0x100, w), v);
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u(0x10, 4, 0x0403_0201);
        assert_eq!(m.read_u8(0x10), 1);
        assert_eq!(m.read_u8(0x13), 4);
        assert_eq!(m.read_u(0x10, 2), 0x0201);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE - 4;
        m.write_u(addr, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u(addr, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn protection_faults_checked_writes_only() {
        let mut m = Memory::new();
        m.write_u(0x2000, 8, 7);
        m.protect_page(0x2000, true);
        assert!(m.page_is_protected(0x2fff));
        assert!(!m.page_is_protected(0x3000));

        let err = m.write_checked(0x2008, 8, 9).unwrap_err();
        assert_eq!(err.addr, 0x2008);
        assert_eq!(m.read_u(0x2008, 8), 0, "faulting write must not land");

        // Unchecked writes (debugger) bypass protection.
        m.write_u(0x2008, 8, 9);
        assert_eq!(m.read_u(0x2008, 8), 9);

        m.protect_page(0x2000, false);
        m.write_checked(0x2010, 8, 11).unwrap();
        assert_eq!(m.read_u(0x2010, 8), 11);
    }

    #[test]
    fn protection_catches_partial_overlap_from_prior_page() {
        let mut m = Memory::new();
        m.protect_page(PAGE_SIZE, true);
        // A quad starting 4 bytes before the protected page spills into it.
        let err = m.write_checked(PAGE_SIZE - 4, 8, 1).unwrap_err();
        assert_eq!(err.addr, PAGE_SIZE);
        assert!(m.write_would_fault(PAGE_SIZE - 1, 2));
        assert!(!m.write_would_fault(PAGE_SIZE - 2, 2));
    }

    #[test]
    fn bytes_helpers() {
        let mut m = Memory::new();
        m.write_bytes(0x500, &[1, 2, 3, 4]);
        assert_eq!(m.read_bytes(0x500, 4), vec![1, 2, 3, 4]);
        assert_eq!(m.read_bytes(0x4fe, 3), vec![0, 0, 1]);
    }

    #[test]
    fn clear_protections() {
        let mut m = Memory::new();
        m.protect_page(0x1000, true);
        m.protect_page(0x9000, true);
        m.clear_protections();
        assert!(!m.page_is_protected(0x1000));
        assert!(!m.page_is_protected(0x9000));
    }
}
