//! Parameterised set-associative cache model with LRU replacement.

/// Geometry of one cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line: u64,
}

impl CacheConfig {
    /// 32 KB, 2-way, 64-byte lines — the paper's L1 configuration.
    pub const L1: CacheConfig = CacheConfig { size: 32 * 1024, assoc: 2, line: 64 };
    /// 1 MB, 4-way, 64-byte lines — the paper's L2 configuration.
    pub const L2: CacheConfig = CacheConfig { size: 1024 * 1024, assoc: 4, line: 64 };

    /// Number of sets implied by the geometry.
    pub const fn sets(&self) -> u64 {
        self.size / (self.line * self.assoc as u64)
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses (fills).
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; zero when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Only tags are modeled (data lives in [`crate::Memory`]); the cache
/// answers hit/miss and maintains its own state, which is all the timing
/// model needs.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// `sets[s]` holds up to `assoc` tags in LRU order (front = MRU).
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl Cache {
    /// Build an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two or the geometry does
    /// not divide evenly into sets.
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.line.is_power_of_two(), "line size must be a power of two");
        assert!(config.assoc >= 1, "associativity must be at least 1");
        let sets = config.sets();
        assert!(
            sets >= 1 && sets.is_power_of_two(),
            "set count must be a power of two (size/line/assoc mismatch)"
        );
        Cache {
            config,
            sets: vec![Vec::with_capacity(config.assoc); sets as usize],
            stats: CacheStats::default(),
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr / self.config.line;
        let set = (line_addr % self.config.sets()) as usize;
        (set, line_addr)
    }

    /// Access the line containing `addr`; returns `true` on hit.
    /// Misses allocate (write-allocate policy for stores too).
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let (set, tag) = self.set_and_tag(addr);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            let t = ways.remove(pos);
            ways.insert(0, t);
            true
        } else {
            self.stats.misses += 1;
            if ways.len() == self.config.assoc {
                ways.pop();
            }
            ways.insert(0, tag);
            false
        }
    }

    /// Probe without updating LRU state or statistics.
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].contains(&tag)
    }

    /// Drop every line (e.g. between experiment runs).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zero the statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16-byte lines = 128 bytes
        Cache::new(CacheConfig { size: 128, assoc: 2, line: 16 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x10f), "same line");
        assert!(!c.access(0x110), "next line");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets*line = 64).
        c.access(0x000);
        c.access(0x040);
        c.access(0x000); // refresh 0x000; LRU is now 0x040
        c.access(0x080); // evicts 0x040
        assert!(c.contains(0x000));
        assert!(!c.contains(0x040));
        assert!(c.contains(0x080));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0x00);
        c.access(0x10);
        c.access(0x20);
        c.access(0x30);
        assert!(c.contains(0x00) && c.contains(0x10) && c.contains(0x20) && c.contains(0x30));
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0x0);
        c.flush();
        assert!(!c.contains(0x0));
        assert!(!c.access(0x0), "miss after flush");
    }

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheConfig::L1.sets(), 256);
        assert_eq!(CacheConfig::L2.sets(), 4096);
        let _ = Cache::new(CacheConfig::L1);
        let _ = Cache::new(CacheConfig::L2);
    }

    #[test]
    fn miss_rate() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = Cache::new(CacheConfig { size: 120, assoc: 2, line: 15 });
    }
}
