//! Translation lookaside buffer model.
//!
//! Translation itself is identity (the simulator runs a single flat
//! address space, and the paper's experiments never page), so the TLB is
//! purely a timing structure: it answers hit/miss over virtual page
//! numbers with set-associative LRU state, like the paper's 64-entry
//! 4-way I/D TLBs.

use crate::{Cache, CacheConfig, CacheStats, PAGE_SIZE};

/// A TLB: a set-associative tag store over virtual page numbers.
#[derive(Clone, Debug)]
pub struct Tlb {
    inner: Cache,
}

impl Tlb {
    /// A TLB with `entries` total entries and the given associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power-of-two multiple of `assoc`.
    pub fn new(entries: u64, assoc: usize) -> Tlb {
        // Reuse the cache structure with one "byte" per page: a line size
        // of 1 over the page-number space.
        Tlb { inner: Cache::new(CacheConfig { size: entries, assoc, line: 1 }) }
    }

    /// The paper's configuration: 64 entries, 4-way.
    pub fn paper_default() -> Tlb {
        Tlb::new(64, 4)
    }

    /// Look up the page containing byte address `addr`; returns `true` on
    /// hit and fills on miss.
    pub fn access(&mut self, addr: u64) -> bool {
        self.inner.access(addr / PAGE_SIZE)
    }

    /// Probe without side effects.
    pub fn contains(&self, addr: u64) -> bool {
        self.inner.contains(addr / PAGE_SIZE)
    }

    /// Invalidate all entries.
    pub fn flush(&mut self) {
        self.inner.flush();
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::paper_default();
        assert!(!t.access(0x1000));
        assert!(t.access(0x1fff), "same page");
        assert!(!t.access(0x2000), "next page");
    }

    #[test]
    fn capacity_eviction() {
        let mut t = Tlb::new(4, 4); // fully associative, 4 entries
        for p in 0..4u64 {
            t.access(p * PAGE_SIZE);
        }
        assert!(t.contains(0));
        t.access(4 * PAGE_SIZE); // evicts page 0 (LRU)
        assert!(!t.contains(0));
        assert!(t.contains(4 * PAGE_SIZE));
    }

    #[test]
    fn flush_invalidates() {
        let mut t = Tlb::paper_default();
        t.access(0x5000);
        t.flush();
        assert!(!t.contains(0x5000));
    }
}
