//! The composed memory hierarchy and its latency model.

use crate::{Cache, CacheConfig, CacheStats, Tlb};

/// Latency and geometry parameters for the whole hierarchy.
///
/// Defaults reproduce the paper's simulated machine: 32 KB 2-way L1
/// instruction and data caches, a 1 MB 4-way unified L2, 64-entry 4-way
/// I/D TLBs and 100-cycle main memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// TLB entries (each of I and D).
    pub tlb_entries: u64,
    /// TLB associativity.
    pub tlb_assoc: usize,
    /// L1 hit latency in cycles (load-to-use).
    pub l1_latency: u64,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// Main-memory latency in cycles.
    pub mem_latency: u64,
    /// Penalty of a TLB miss (hardware walk) in cycles.
    pub tlb_miss_penalty: u64,
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig {
            l1i: CacheConfig::L1,
            l1d: CacheConfig::L1,
            l2: CacheConfig::L2,
            tlb_entries: 64,
            tlb_assoc: 4,
            l1_latency: 3,
            l2_latency: 12,
            mem_latency: 100,
            tlb_miss_penalty: 30,
        }
    }
}

/// The instruction-side and data-side cache/TLB hierarchy.
///
/// [`MemSystem::inst_fetch`] and [`MemSystem::data_access`] return the
/// access latency in cycles and update all structures.
#[derive(Clone, Debug)]
pub struct MemSystem {
    config: MemConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
}

impl MemSystem {
    /// Build an empty hierarchy.
    pub fn new(config: MemConfig) -> MemSystem {
        MemSystem {
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            itlb: Tlb::new(config.tlb_entries, config.tlb_assoc),
            dtlb: Tlb::new(config.tlb_entries, config.tlb_assoc),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> MemConfig {
        self.config
    }

    /// Fetch the instruction line containing `addr`; returns the latency
    /// in cycles (1 on an L1I + ITLB hit).
    pub fn inst_fetch(&mut self, addr: u64) -> u64 {
        let mut lat = 1; // L1I hit is pipelined into fetch
        if !self.itlb.access(addr) {
            lat += self.config.tlb_miss_penalty;
        }
        if !self.l1i.access(addr) {
            lat +=
                if self.l2.access(addr) { self.config.l2_latency } else { self.config.mem_latency };
        }
        lat
    }

    /// Access data at `addr`; returns the latency in cycles
    /// (`l1_latency` on an L1D + DTLB hit). `write` selects store
    /// accesses, which allocate like loads (write-allocate).
    pub fn data_access(&mut self, addr: u64, write: bool) -> u64 {
        let _ = write; // policy is identical; kept for interface clarity
        let mut lat = self.config.l1_latency;
        if !self.dtlb.access(addr) {
            lat += self.config.tlb_miss_penalty;
        }
        if !self.l1d.access(addr) {
            lat +=
                if self.l2.access(addr) { self.config.l2_latency } else { self.config.mem_latency };
        }
        lat
    }

    /// Statistics: `(l1i, l1d, l2, itlb, dtlb)`.
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats, CacheStats, CacheStats) {
        (self.l1i.stats(), self.l1d.stats(), self.l2.stats(), self.itlb.stats(), self.dtlb.stats())
    }

    /// Empty every cache and TLB (between experiments).
    pub fn flush_all(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
        self.itlb.flush();
        self.dtlb.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_latency_ladder() {
        let mut s = MemSystem::new(MemConfig::default());
        let cold = s.inst_fetch(0x1_0000);
        let warm = s.inst_fetch(0x1_0000);
        assert_eq!(warm, 1);
        // cold: 1 + tlb miss + memory
        assert_eq!(cold, 1 + 30 + 100);
    }

    #[test]
    fn l2_hit_cheaper_than_memory() {
        let cfg = MemConfig::default();
        let mut s = MemSystem::new(cfg);
        s.data_access(0x40_0000, false); // fills L2 + L1D + DTLB
                                         // Evict from tiny L1D set by touching conflicting lines, keeping L2.
        let sets = cfg.l1d.sets();
        let stride = sets * cfg.l1d.line;
        for i in 1..=2 {
            s.data_access(0x40_0000 + i * stride, false);
        }
        let lat = s.data_access(0x40_0000, false);
        assert_eq!(lat, cfg.l1_latency + cfg.l2_latency, "L1 miss, L2 hit");
    }

    #[test]
    fn data_hit_latency() {
        let cfg = MemConfig::default();
        let mut s = MemSystem::new(cfg);
        s.data_access(0x9000, true);
        assert_eq!(s.data_access(0x9000, false), cfg.l1_latency);
    }

    #[test]
    fn flush_all_restores_cold_state() {
        let mut s = MemSystem::new(MemConfig::default());
        s.inst_fetch(0x1000);
        s.data_access(0x2000, false);
        s.flush_all();
        assert_eq!(s.inst_fetch(0x1000), 1 + 30 + 100);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = MemSystem::new(MemConfig::default());
        s.inst_fetch(0x0);
        s.inst_fetch(0x0);
        let (l1i, ..) = s.stats();
        assert_eq!(l1i.accesses, 2);
        assert_eq!(l1i.misses, 1);
    }
}
