//! # dise-trace — the persistent `Exec`-stream store
//!
//! The paper's economy rests on one functional pass of the unmodified
//! application serving many debugging configurations at once. In-memory
//! batching (the `ObserverBatch` lattice in `dise-debug`) already shares
//! that pass *within* a process; this crate makes the shared stream a
//! first-class persistent artifact so it can be shared *across*
//! processes and runs — record the pass once, replay it forever.
//!
//! The crate is deliberately `Exec`-agnostic: it knows nothing about the
//! simulated machine. It provides the three generic layers the codec in
//! `dise_cpu::trace` is built from:
//!
//! - [`wire`]: LEB128-style unsigned varints, zigzag deltas, and a
//!   table-driven CRC-32 (IEEE) — the integer vocabulary of the format.
//! - [`ring`]: a bounded lock-free single-producer/single-consumer ring,
//!   so the hot producing session never blocks on a cold disk consumer
//!   (and applies back-pressure instead of buffering unboundedly when
//!   the consumer falls behind).
//! - [`store`]: the versioned on-disk container — magic, format
//!   version, kernel fingerprint, CRC-checked chunks, and a terminal
//!   record-count chunk, written to a temporary sibling and renamed into
//!   place so a crashed or concurrent recording can never publish a
//!   half-written trace.
//!
//! Every way a stored trace can be unusable has its own [`TraceError`]
//! variant: a stale or corrupt trace must be rejected loudly and
//! distinguishably, never replayed silently wrong.

pub mod ring;
pub mod store;
pub mod wire;

pub use ring::{ring, Consumer, Disconnected, Producer, TryPopError, TryPushError};
pub use store::{read_chunk_file, ChunkFile, ChunkWriter, MAGIC, VERSION};

/// Everything that can make a persistent trace unusable.
///
/// The variants are deliberately distinct per failure class so callers
/// (and tests) can tell a truncated file from a flipped bit from a
/// trace of the wrong kernel. `Io` carries stringified errors rather
/// than `std::io::Error` so the type stays `Clone + PartialEq + Eq`,
/// which `dise-debug` needs to nest it inside `DebugError` without
/// weakening that enum's derives.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceError {
    /// The underlying filesystem operation failed.
    Io {
        /// Path of the trace file involved.
        path: String,
        /// Stringified `std::io::Error`.
        error: String,
    },
    /// The file does not start with the trace magic — not a trace at
    /// all (or one damaged in its very first bytes).
    BadMagic {
        /// Path of the offending file.
        path: String,
    },
    /// The file is a trace, but of a format version this build does not
    /// speak.
    BadVersion {
        /// Path of the offending file.
        path: String,
        /// Version stored in the file.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The trace was recorded from a different kernel image than the
    /// one being replayed — a stale trace, the most dangerous class,
    /// because the bytes themselves are perfectly well-formed.
    FingerprintMismatch {
        /// Path of the offending file.
        path: String,
        /// Fingerprint of the kernel the caller wants to replay.
        expected: u64,
        /// Fingerprint stored in the trace header.
        found: u64,
    },
    /// The file ends before the terminal record-count chunk — an
    /// interrupted copy or a truncated download.
    Truncated {
        /// Path of the offending file.
        path: String,
        /// Byte offset at which the file ran out.
        offset: u64,
    },
    /// A chunk's payload does not match its stored CRC-32 — bit rot or
    /// in-place tampering.
    CorruptChunk {
        /// Path of the offending file.
        path: String,
        /// Zero-based index of the failing chunk.
        chunk: u64,
    },
    /// The container framing or the record encoding is self-
    /// inconsistent in some other way (unknown chunk tag, trailing
    /// bytes, record count mismatch, undecodable token…).
    Malformed {
        /// Path of the offending file.
        path: String,
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io { path, error } => write!(f, "trace i/o error on {path}: {error}"),
            TraceError::BadMagic { path } => {
                write!(f, "{path} is not a DISE trace (bad magic)")
            }
            TraceError::BadVersion { path, found, expected } => {
                write!(f, "{path} is a v{found} trace; this build speaks v{expected}")
            }
            TraceError::FingerprintMismatch { path, expected, found } => write!(
                f,
                "{path} was recorded from a different kernel \
                 (fingerprint {found:#018x}, expected {expected:#018x}) — stale trace"
            ),
            TraceError::Truncated { path, offset } => {
                write!(f, "{path} is truncated at byte {offset}")
            }
            TraceError::CorruptChunk { path, chunk } => {
                write!(f, "{path}: chunk {chunk} fails its CRC-32 check")
            }
            TraceError::Malformed { path, reason } => {
                write!(f, "{path} is malformed: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {}
