//! A bounded, lock-free single-producer/single-consumer ring.
//!
//! Recording a trace splits the work across two threads: the session
//! thread *produces* `Exec` records at simulation speed, and a writer
//! thread *consumes* them — encoding and flushing to disk. The ring
//! decouples the two so the hot producer almost never waits on the cold
//! consumer, while its bounded capacity applies back-pressure instead
//! of buffering an entire multi-million-record pass in memory when the
//! disk falls behind.
//!
//! The implementation is the classic Lamport queue: one atomic `head`
//! (consumer cursor) and one atomic `tail` (producer cursor) over a
//! fixed slot array. Each side owns exactly one cursor, so plain
//! release/acquire pairs are sufficient — no CAS, no locks. Each half
//! also publishes liveness with an atomic flag so the other side can
//! distinguish "empty right now" from "empty forever" (and a producer
//! can learn its consumer died rather than spinning eternally on a full
//! ring).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Create a bounded SPSC ring with room for `capacity` in-flight items.
///
/// The two halves are independently `Send`, so the producer can stay on
/// the session thread while the consumer moves to a writer thread.
///
/// # Panics
///
/// Panics if `capacity` is zero — a zero-capacity ring can never
/// transfer anything.
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be at least 1");
    let shared = Arc::new(Shared {
        slots: (0..capacity).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect(),
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
    });
    (Producer { shared: Arc::clone(&shared) }, Consumer { shared })
}

struct Shared<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the consumer will read. Only the consumer stores it.
    head: AtomicUsize,
    /// Next slot the producer will write. Only the producer stores it.
    tail: AtomicUsize,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
}

// The slot array is shared across the two threads, but the cursor
// protocol guarantees each slot is accessed by exactly one side at a
// time: the producer only writes slots in [tail, head+capacity), the
// consumer only reads slots in [head, tail).
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both halves are gone; drop whatever is still in flight.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let mut i = head;
        while i != tail {
            let slot = self.slots[i % self.slots.len()].get_mut();
            unsafe { slot.assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// The sending half — exactly one exists per ring.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half — exactly one exists per ring.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

/// Why a [`Producer::try_push`] did not enqueue; the rejected value is
/// handed back in both cases.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The ring is at capacity — back-pressure; retry after the
    /// consumer drains.
    Full(T),
    /// The consumer is gone; no push can ever succeed again.
    Disconnected(T),
}

/// Why a [`Consumer::try_pop`] returned no item.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPopError {
    /// Nothing in flight right now, but the producer is still alive.
    Empty,
    /// The producer is gone and everything it sent has been drained.
    Disconnected,
}

/// The error of a blocking [`Producer::push`]: the consumer is gone.
/// Hands the rejected value back.
#[derive(Debug, PartialEq, Eq)]
pub struct Disconnected<T>(pub T);

impl<T: Send> Producer<T> {
    /// Enqueue without blocking.
    ///
    /// # Errors
    ///
    /// [`TryPushError::Full`] when the ring is at capacity,
    /// [`TryPushError::Disconnected`] when the consumer is gone; the
    /// value is returned in both cases.
    pub fn try_push(&mut self, value: T) -> Result<(), TryPushError<T>> {
        if !self.shared.consumer_alive.load(Ordering::Acquire) {
            return Err(TryPushError::Disconnected(value));
        }
        let tail = self.shared.tail.load(Ordering::Relaxed);
        let head = self.shared.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.shared.slots.len() {
            return Err(TryPushError::Full(value));
        }
        unsafe {
            (*self.shared.slots[tail % self.shared.slots.len()].get()).write(value);
        }
        self.shared.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Enqueue, spinning (with scheduler yields) while the ring is full
    /// — the back-pressure path.
    ///
    /// # Errors
    ///
    /// [`Disconnected`] with the value when the consumer is gone, so a
    /// dead writer thread surfaces instead of deadlocking the session.
    pub fn push(&mut self, value: T) -> Result<(), Disconnected<T>> {
        let mut value = value;
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(TryPushError::Disconnected(v)) => return Err(Disconnected(v)),
                Err(TryPushError::Full(v)) => {
                    value = v;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Number of items currently in flight.
    pub fn len(&self) -> usize {
        let tail = self.shared.tail.load(Ordering::Relaxed);
        let head = self.shared.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity this ring was created with.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.producer_alive.store(false, Ordering::Release);
    }
}

impl<T: Send> Consumer<T> {
    /// Dequeue without blocking.
    ///
    /// # Errors
    ///
    /// [`TryPopError::Empty`] when nothing is in flight but the
    /// producer lives; [`TryPopError::Disconnected`] only once the
    /// producer is gone *and* every item it pushed has been drained —
    /// dropping the producer never loses in-flight records.
    pub fn try_pop(&mut self) -> Result<T, TryPopError> {
        let head = self.shared.head.load(Ordering::Relaxed);
        let mut tail = self.shared.tail.load(Ordering::Acquire);
        if head == tail {
            if self.shared.producer_alive.load(Ordering::Acquire) {
                return Err(TryPopError::Empty);
            }
            // The producer died; its final pushes happen-before the
            // liveness store we just observed, so one re-read of `tail`
            // sees everything it ever enqueued.
            tail = self.shared.tail.load(Ordering::Acquire);
            if head == tail {
                return Err(TryPopError::Disconnected);
            }
        }
        let value = unsafe {
            (*self.shared.slots[head % self.shared.slots.len()].get()).assume_init_read()
        };
        self.shared.head.store(head.wrapping_add(1), Ordering::Release);
        Ok(value)
    }

    /// Dequeue, spinning (with scheduler yields) while the ring is
    /// empty. Returns `None` once the producer is gone and the ring is
    /// fully drained — the writer thread's "stream over" signal.
    pub fn pop(&mut self) -> Option<T> {
        loop {
            match self.try_pop() {
                Ok(value) => return Some(value),
                Err(TryPopError::Disconnected) => return None,
                Err(TryPopError::Empty) => std::thread::yield_now(),
            }
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.consumer_alive.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_capacity_applies_back_pressure() {
        let (mut tx, mut rx) = ring::<u32>(4);
        for i in 0..4 {
            assert_eq!(tx.try_push(i), Ok(()));
        }
        // Slot five must be refused, value handed back intact.
        assert_eq!(tx.try_push(99), Err(TryPushError::Full(99)));
        assert_eq!(tx.len(), 4);
        // Draining one slot readmits exactly one push.
        assert_eq!(rx.try_pop(), Ok(0));
        assert_eq!(tx.try_push(99), Ok(()));
        assert_eq!(tx.try_push(100), Err(TryPushError::Full(100)));
    }

    #[test]
    fn empty_ring_reports_empty_while_producer_lives() {
        let (tx, mut rx) = ring::<u32>(2);
        assert_eq!(rx.try_pop(), Err(TryPopError::Empty));
        drop(tx);
        assert_eq!(rx.try_pop(), Err(TryPopError::Disconnected));
    }

    #[test]
    fn cross_thread_ordering_is_producer_order() {
        // A small ring forces many wrap-arounds and real back-pressure;
        // the consumer must still see 0..N in exact producer order.
        const N: u64 = 100_000;
        let (mut tx, mut rx) = ring::<u64>(8);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.push(i).expect("consumer lives until all items are sent");
            }
        });
        for expect in 0..N {
            assert_eq!(rx.pop(), Some(expect), "items must arrive in push order");
        }
        assert_eq!(rx.pop(), None, "after producer drop + drain: disconnected");
        producer.join().expect("producer thread");
    }

    #[test]
    fn drain_after_producer_drop_loses_nothing() {
        let (mut tx, mut rx) = ring::<u32>(8);
        for i in 0..5 {
            tx.push(i).unwrap();
        }
        drop(tx);
        // Everything pushed before the drop is still there, in order,
        // and only then does the ring report disconnection.
        for expect in 0..5 {
            assert_eq!(rx.try_pop(), Ok(expect));
        }
        assert_eq!(rx.try_pop(), Err(TryPopError::Disconnected));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn push_fails_fast_when_consumer_is_gone() {
        let (mut tx, rx) = ring::<u32>(2);
        drop(rx);
        assert_eq!(tx.try_push(7), Err(TryPushError::Disconnected(7)));
        assert_eq!(tx.push(8), Err(Disconnected(8)), "blocking push must not spin forever");
    }

    #[test]
    fn in_flight_items_are_dropped_with_the_ring() {
        // Type whose drops are observable: if the ring leaked in-flight
        // items, the strong count would stay above 1.
        let tracker = Arc::new(());
        let (mut tx, rx) = ring::<Arc<()>>(4);
        for _ in 0..3 {
            tx.push(Arc::clone(&tracker)).unwrap();
        }
        assert_eq!(Arc::strong_count(&tracker), 4);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&tracker), 1, "undrained items must be dropped");
    }
}
