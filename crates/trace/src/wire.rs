//! The integer vocabulary of the trace format: unsigned LEB128-style
//! varints, zigzag-folded signed deltas, and CRC-32 (IEEE).
//!
//! Delta + varint is where the compression comes from: consecutive
//! `Exec` records differ by tiny amounts (PC advances by one
//! instruction, a store address walks an array), so most fields encode
//! in a single byte. Zigzag folding maps small negative deltas (loop
//! back-edges, downward-counting induction variables) to small unsigned
//! values so they stay single-byte too.

/// Append `v` as an unsigned LEB128 varint (7 payload bits per byte,
/// high bit = continuation). Values below 128 take one byte.
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Read a varint written by [`write_uvarint`] from `buf` at `*pos`,
/// advancing `*pos` past it. Returns `None` on a truncated or
/// over-long (not representable in 64 bits) encoding.
pub fn read_uvarint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && b & 0x7E != 0) {
            return None;
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Zigzag-fold a signed value so small magnitudes of either sign become
/// small unsigned values: 0, -1, 1, -2, 2, … → 0, 1, 2, 3, 4, …
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Invert [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// The zigzag-folded wrapping difference `to - from`, ready for
/// [`write_uvarint`]. Inverted by [`apply_delta`].
pub fn delta(from: u64, to: u64) -> u64 {
    zigzag(to.wrapping_sub(from) as i64)
}

/// Apply a delta produced by [`delta`]: reconstruct `to` from `from`.
pub fn apply_delta(from: u64, d: u64) -> u64 {
    from.wrapping_add(unzigzag(d) as u64)
}

/// The standard CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) lookup
/// table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the per-chunk integrity check of the
/// on-disk container.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trips_edge_values() {
        for v in
            [0u64, 1, 127, 128, 129, 16_383, 16_384, u64::from(u32::MAX), u64::MAX - 1, u64::MAX]
        {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len(), "the whole encoding must be consumed");
        }
    }

    #[test]
    fn uvarint_single_byte_below_128() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 127);
        assert_eq!(buf, [127], "small values must cost one byte");
        buf.clear();
        write_uvarint(&mut buf, 128);
        assert_eq!(buf, [0x80, 0x01]);
    }

    #[test]
    fn uvarint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert_eq!(read_uvarint(&[0x80], &mut pos), None, "dangling continuation bit");
        // 11 continuation bytes can never fit in 64 bits.
        let overlong = [0xFFu8; 11];
        let mut pos = 0;
        assert_eq!(read_uvarint(&overlong, &mut pos), None);
    }

    #[test]
    fn zigzag_folds_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in [0i64, 1, -1, 4, -4, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn delta_round_trips_including_wrapping() {
        for (from, to) in [(0u64, 0u64), (100, 96), (96, 100), (u64::MAX, 0), (0, u64::MAX)] {
            assert_eq!(apply_delta(from, delta(from, to)), to);
        }
        // A 4-byte backward branch must be a cheap delta.
        let mut buf = Vec::new();
        write_uvarint(&mut buf, delta(0x1_0010, 0x1_0000));
        assert_eq!(buf.len(), 1, "small backward PC deltas must cost one byte");
    }

    #[test]
    fn crc32_matches_the_standard_check_value() {
        // The canonical CRC-32/IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
