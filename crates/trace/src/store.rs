//! The versioned on-disk container: header + CRC-checked chunks.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic          8 bytes   b"DISETRC\0"
//! version        u32       format version (currently 1)
//! fingerprint    u64       kernel fingerprint of the recorded program
//! chunk*                   tag u8 | payload_len u32 | crc32 u32 | payload
//!   tag 1 = data           payload: compressed record bytes
//!   tag 2 = end            payload: record_count u64 — must be last
//! ```
//!
//! The container is agnostic to what the data payloads contain; the
//! record codec lives in `dise_cpu::trace` and treats chunking as pure
//! byte segmentation. A file without its terminal `end` chunk is
//! truncated by definition, so an interrupted recording can never pass
//! for a complete one. Writers additionally stage the whole file at a
//! process-unique temporary sibling and `rename(2)` it into place on
//! [`ChunkWriter::finish`], so concurrent recorders of the same trace
//! are safe (last rename wins, and deterministic encoding makes both
//! files byte-identical anyway) and a crash leaves no half-trace behind.

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::wire::crc32;
use crate::TraceError;

/// The first eight bytes of every trace file.
pub const MAGIC: [u8; 8] = *b"DISETRC\0";

/// The format version this build writes and reads.
pub const VERSION: u32 = 1;

/// Chunk tag: compressed record bytes.
const TAG_DATA: u8 = 1;
/// Chunk tag: terminal record count.
const TAG_END: u8 = 2;

/// Header length: magic + version + fingerprint.
const HEADER_LEN: usize = 8 + 4 + 8;
/// Chunk header length: tag + payload length + CRC.
const CHUNK_HEADER_LEN: usize = 1 + 4 + 4;

fn io_error(path: &Path, error: &std::io::Error) -> TraceError {
    TraceError::Io { path: path.display().to_string(), error: error.to_string() }
}

/// Streaming writer for the chunked container.
///
/// Stages everything at `<path>.tmp.<pid>`; the real `path` appears
/// only when [`ChunkWriter::finish`] renames the staged file into
/// place. Dropping an unfinished writer deletes the staged file.
#[derive(Debug)]
pub struct ChunkWriter {
    file: Option<BufWriter<File>>,
    tmp: PathBuf,
    path: PathBuf,
    bytes: u64,
    finished: bool,
}

impl ChunkWriter {
    /// Create the staged file and write the header.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the staged file cannot be created or
    /// written — e.g. a missing or read-only trace directory.
    pub fn create(path: &Path, fingerprint: u64) -> Result<ChunkWriter, TraceError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        let file = File::create(&tmp).map_err(|e| io_error(path, &e))?;
        let mut writer = ChunkWriter {
            file: Some(BufWriter::new(file)),
            tmp,
            path: path.to_path_buf(),
            bytes: 0,
            finished: false,
        };
        writer.write(&MAGIC)?;
        writer.write(&VERSION.to_le_bytes())?;
        writer.write(&fingerprint.to_le_bytes())?;
        Ok(writer)
    }

    fn write(&mut self, bytes: &[u8]) -> Result<(), TraceError> {
        self.bytes += bytes.len() as u64;
        self.file
            .as_mut()
            .expect("file lives until finish()")
            .write_all(bytes)
            .map_err(|e| io_error(&self.path, &e))
    }

    fn write_chunk(&mut self, tag: u8, payload: &[u8]) -> Result<(), TraceError> {
        self.write(&[tag])?;
        self.write(
            &u32::try_from(payload.len())
                .expect("chunk payloads stay far below 4 GiB")
                .to_le_bytes(),
        )?;
        self.write(&crc32(payload).to_le_bytes())?;
        self.write(payload)
    }

    /// Append one CRC-protected data chunk.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the write fails.
    pub fn chunk(&mut self, payload: &[u8]) -> Result<(), TraceError> {
        self.write_chunk(TAG_DATA, payload)
    }

    /// Write the terminal record-count chunk, flush, and rename the
    /// staged file into place. Returns the total file size in bytes.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the final write, flush or rename fails;
    /// the staged file is removed either way.
    pub fn finish(mut self, record_count: u64) -> Result<u64, TraceError> {
        self.write_chunk(TAG_END, &record_count.to_le_bytes())?;
        let mut file = self.file.take().expect("finish() runs once");
        file.flush().map_err(|e| io_error(&self.path, &e))?;
        drop(file);
        fs::rename(&self.tmp, &self.path).map_err(|e| io_error(&self.path, &e))?;
        self.finished = true;
        Ok(self.bytes)
    }
}

impl Drop for ChunkWriter {
    fn drop(&mut self) {
        if !self.finished {
            // Abandoned recording: close and remove the staged file so
            // no half-trace survives (and no later run replays it).
            drop(self.file.take());
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

/// A fully validated chunk file: header fields plus the concatenated
/// data-chunk payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkFile {
    /// Kernel fingerprint from the header.
    pub fingerprint: u64,
    /// Record count from the terminal chunk.
    pub record_count: u64,
    /// All data-chunk payloads, concatenated in file order.
    pub payload: Vec<u8>,
    /// Total size of the file in bytes.
    pub file_bytes: u64,
}

/// Read and validate an entire chunk file eagerly: magic, version,
/// every chunk CRC, and the presence of the terminal record-count
/// chunk. Corruption is detected here, before a single record is
/// decoded — never during replay.
///
/// # Errors
///
/// [`TraceError::Io`] when the file cannot be read,
/// [`TraceError::BadMagic`] / [`TraceError::BadVersion`] on a foreign
/// or incompatible header, [`TraceError::Truncated`] when the file ends
/// before its terminal chunk, [`TraceError::CorruptChunk`] on a CRC
/// failure, and [`TraceError::Malformed`] on inconsistent framing.
pub fn read_chunk_file(path: &Path) -> Result<ChunkFile, TraceError> {
    let display = path.display().to_string();
    let bytes = fs::read(path).map_err(|e| io_error(path, &e))?;
    let truncated =
        |offset: usize| TraceError::Truncated { path: display.clone(), offset: offset as u64 };
    if bytes.len() < HEADER_LEN {
        if !bytes.starts_with(&MAGIC[..bytes.len().min(MAGIC.len())]) {
            return Err(TraceError::BadMagic { path: display });
        }
        return Err(truncated(bytes.len()));
    }
    if bytes[..8] != MAGIC {
        return Err(TraceError::BadMagic { path: display });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(TraceError::BadVersion { path: display, found: version, expected: VERSION });
    }
    let fingerprint = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));

    let mut payload = Vec::new();
    let mut pos = HEADER_LEN;
    let mut chunk_index = 0u64;
    loop {
        if pos == bytes.len() {
            // Ran out of file without seeing the end chunk.
            return Err(truncated(pos));
        }
        if bytes.len() - pos < CHUNK_HEADER_LEN {
            return Err(truncated(bytes.len()));
        }
        let tag = bytes[pos];
        let len = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 5..pos + 9].try_into().expect("4 bytes"));
        pos += CHUNK_HEADER_LEN;
        if bytes.len() - pos < len {
            return Err(truncated(bytes.len()));
        }
        let chunk = &bytes[pos..pos + len];
        pos += len;
        if crc32(chunk) != crc {
            return Err(TraceError::CorruptChunk { path: display, chunk: chunk_index });
        }
        match tag {
            TAG_DATA => payload.extend_from_slice(chunk),
            TAG_END => {
                let count: [u8; 8] = chunk.try_into().map_err(|_| TraceError::Malformed {
                    path: display.clone(),
                    reason: format!("end chunk payload is {len} bytes, expected 8"),
                })?;
                if pos != bytes.len() {
                    return Err(TraceError::Malformed {
                        path: display,
                        reason: format!("{} trailing bytes after the end chunk", bytes.len() - pos),
                    });
                }
                return Ok(ChunkFile {
                    fingerprint,
                    record_count: u64::from_le_bytes(count),
                    payload,
                    file_bytes: bytes.len() as u64,
                });
            }
            other => {
                return Err(TraceError::Malformed {
                    path: display,
                    reason: format!("unknown chunk tag {other} at chunk {chunk_index}"),
                });
            }
        }
        chunk_index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dise-trace-store-tests-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    fn write_sample(path: &Path, fingerprint: u64, chunks: &[&[u8]]) -> u64 {
        let mut w = ChunkWriter::create(path, fingerprint).expect("create");
        let mut records = 0;
        for c in chunks {
            w.chunk(c).expect("chunk");
            records += c.len() as u64; // pretend one record per byte
        }
        w.finish(records).expect("finish")
    }

    #[test]
    fn round_trips_header_payload_and_count() {
        let path = scratch("roundtrip.dtrc");
        let bytes = write_sample(&path, 0xDEAD_BEEF_F00D_CAFE, &[b"hello ", b"", b"world"]);
        let file = read_chunk_file(&path).expect("valid file");
        assert_eq!(file.fingerprint, 0xDEAD_BEEF_F00D_CAFE);
        assert_eq!(file.payload, b"hello world");
        assert_eq!(file.record_count, 11);
        assert_eq!(file.file_bytes, bytes);
        assert_eq!(file.file_bytes, fs::metadata(&path).expect("metadata").len());
    }

    #[test]
    fn unfinished_writer_publishes_nothing() {
        let path = scratch("abandoned.dtrc");
        let _ = fs::remove_file(&path);
        {
            let mut w = ChunkWriter::create(&path, 1).expect("create");
            w.chunk(b"half a recording").expect("chunk");
            // Dropped without finish(): the crash / abandonment path.
        }
        assert!(!path.exists(), "no half-trace may appear at the real path");
        assert!(
            matches!(read_chunk_file(&path), Err(TraceError::Io { .. })),
            "the abandoned trace must read as absent"
        );
    }

    #[test]
    fn missing_end_chunk_is_truncation() {
        let path = scratch("no-end.dtrc");
        write_sample(&path, 7, &[b"payload"]);
        let full = fs::read(&path).expect("read");
        // Cut the terminal chunk off entirely, then byte by byte.
        let end_len = CHUNK_HEADER_LEN + 8;
        for keep in [full.len() - end_len, full.len() - end_len + 1, full.len() - 1] {
            let cut = scratch("no-end-cut.dtrc");
            fs::write(&cut, &full[..keep]).expect("write");
            assert!(
                matches!(read_chunk_file(&cut), Err(TraceError::Truncated { .. })),
                "keeping {keep}/{} bytes must read as truncated",
                full.len()
            );
        }
    }

    #[test]
    fn truncated_header_is_loud() {
        let path = scratch("short-header.dtrc");
        fs::write(&path, &MAGIC[..6]).expect("write");
        assert!(matches!(read_chunk_file(&path), Err(TraceError::Truncated { .. })));
        fs::write(&path, b"ELF\x7f").expect("write");
        assert!(matches!(read_chunk_file(&path), Err(TraceError::BadMagic { .. })));
    }

    #[test]
    fn flipped_payload_or_crc_byte_is_corrupt_chunk() {
        let path = scratch("corrupt.dtrc");
        write_sample(&path, 7, &[b"payload bytes under crc"]);
        let full = fs::read(&path).expect("read");
        // Flip one byte inside the first chunk's stored CRC, then one
        // inside its payload.
        for flip in [HEADER_LEN + 5, HEADER_LEN + CHUNK_HEADER_LEN + 2] {
            let mut bad = full.clone();
            bad[flip] ^= 0x40;
            let badpath = scratch("corrupt-flip.dtrc");
            fs::write(&badpath, &bad).expect("write");
            assert!(
                matches!(read_chunk_file(&badpath), Err(TraceError::CorruptChunk { chunk: 0, .. })),
                "a flipped byte at offset {flip} must fail the chunk-0 CRC"
            );
        }
    }

    #[test]
    fn foreign_magic_and_future_version_are_distinct() {
        let path = scratch("version.dtrc");
        write_sample(&path, 7, &[b"x"]);
        let mut bad = fs::read(&path).expect("read");
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        fs::write(&path, &bad).expect("write");
        assert!(matches!(
            read_chunk_file(&path),
            Err(TraceError::BadVersion { found: 99, expected: VERSION, .. })
        ));
        bad[0] = b'X';
        fs::write(&path, &bad).expect("write");
        assert!(matches!(read_chunk_file(&path), Err(TraceError::BadMagic { .. })));
    }

    #[test]
    fn trailing_bytes_after_end_chunk_are_malformed() {
        let path = scratch("trailing.dtrc");
        write_sample(&path, 7, &[b"x"]);
        let mut bad = fs::read(&path).expect("read");
        bad.push(0);
        fs::write(&path, &bad).expect("write");
        assert!(matches!(read_chunk_file(&path), Err(TraceError::Malformed { .. })));
    }
}
