//! Operation kinds: ALU operations, branch conditions, memory widths,
//! and the register-or-immediate second ALU operand.

use std::fmt;

/// ALU operations. All operate on full 64-bit values; compares produce
/// 0 or 1 in the destination register (Alpha style).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum AluOp {
    /// 64-bit add (`addq`).
    Add = 0,
    /// 64-bit subtract (`subq`).
    Sub = 1,
    /// 64-bit multiply (`mulq`).
    Mul = 2,
    /// Bitwise and (`and`).
    And = 3,
    /// Bitwise or (`bis`).
    Or = 4,
    /// Bitwise xor (`xor`).
    Xor = 5,
    /// Bit clear: `ra & !rb` (`bic`) — used to align addresses in the
    /// paper's watchpoint productions (Fig. 2c).
    Bic = 6,
    /// Or with complement: `ra | !rb` (`ornot`).
    Ornot = 7,
    /// Shift left logical (`sll`).
    Sll = 8,
    /// Shift right logical (`srl`).
    Srl = 9,
    /// Shift right arithmetic (`sra`).
    Sra = 10,
    /// Set if equal (`cmpeq`).
    CmpEq = 11,
    /// Set if signed less-than (`cmplt`).
    CmpLt = 12,
    /// Set if signed less-or-equal (`cmple`).
    CmpLe = 13,
    /// Set if unsigned less-than (`cmpult`).
    CmpUlt = 14,
    /// Set if unsigned less-or-equal (`cmpule`).
    CmpUle = 15,
    /// Scaled add `ra*4 + rb` (`s4addq`).
    S4Add = 16,
    /// Scaled add `ra*8 + rb` (`s8addq`).
    S8Add = 17,
}

impl AluOp {
    /// All ALU operations, in encoding order.
    pub const ALL: [AluOp; 18] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Bic,
        AluOp::Ornot,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::CmpEq,
        AluOp::CmpLt,
        AluOp::CmpLe,
        AluOp::CmpUlt,
        AluOp::CmpUle,
        AluOp::S4Add,
        AluOp::S8Add,
    ];

    /// Function-field value used by the encoder.
    #[inline]
    pub const fn func(self) -> u8 {
        self as u8
    }

    /// Inverse of [`AluOp::func`].
    pub const fn from_func(f: u8) -> Option<AluOp> {
        if (f as usize) < Self::ALL.len() {
            Some(Self::ALL[f as usize])
        } else {
            None
        }
    }

    /// Apply the operation to two 64-bit operands.
    ///
    /// Shifts use only the low 6 bits of `b`, as on Alpha.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Bic => a & !b,
            AluOp::Ornot => a | !b,
            AluOp::Sll => a << (b & 63),
            AluOp::Srl => a >> (b & 63),
            AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
            AluOp::CmpEq => u64::from(a == b),
            AluOp::CmpLt => u64::from((a as i64) < (b as i64)),
            AluOp::CmpLe => u64::from((a as i64) <= (b as i64)),
            AluOp::CmpUlt => u64::from(a < b),
            AluOp::CmpUle => u64::from(a <= b),
            AluOp::S4Add => a.wrapping_mul(4).wrapping_add(b),
            AluOp::S8Add => a.wrapping_mul(8).wrapping_add(b),
        }
    }

    /// Execution latency in cycles on the simulated core.
    #[inline]
    pub const fn latency(self) -> u64 {
        match self {
            AluOp::Mul => 7,
            _ => 1,
        }
    }

    /// Assembly mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "addq",
            AluOp::Sub => "subq",
            AluOp::Mul => "mulq",
            AluOp::And => "and",
            AluOp::Or => "bis",
            AluOp::Xor => "xor",
            AluOp::Bic => "bic",
            AluOp::Ornot => "ornot",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::CmpEq => "cmpeq",
            AluOp::CmpLt => "cmplt",
            AluOp::CmpLe => "cmple",
            AluOp::CmpUlt => "cmpult",
            AluOp::CmpUle => "cmpule",
            AluOp::S4Add => "s4addq",
            AluOp::S8Add => "s8addq",
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Branch/trap conditions, evaluated against zero (Alpha style:
/// `beq r, L` branches when `r == 0`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Cond {
    /// Register equals zero.
    Eq = 0,
    /// Register is non-zero.
    Ne = 1,
    /// Register is negative (signed).
    Lt = 2,
    /// Register is non-positive (signed).
    Le = 3,
    /// Register is positive (signed).
    Gt = 4,
    /// Register is non-negative (signed).
    Ge = 5,
}

impl Cond {
    /// All conditions, in encoding order.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge];

    /// Encoding-field value.
    #[inline]
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Cond::code`].
    pub const fn from_code(c: u8) -> Option<Cond> {
        if (c as usize) < Self::ALL.len() {
            Some(Self::ALL[c as usize])
        } else {
            None
        }
    }

    /// Evaluate the condition against a register value.
    #[inline]
    pub fn holds(self, v: u64) -> bool {
        let s = v as i64;
        match self {
            Cond::Eq => v == 0,
            Cond::Ne => v != 0,
            Cond::Lt => s < 0,
            Cond::Le => s <= 0,
            Cond::Gt => s > 0,
            Cond::Ge => s >= 0,
        }
    }

    /// The complementary condition.
    pub const fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }

    /// Mnemonic suffix (`beq`, `bne`, ...).
    pub const fn suffix(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Memory access width.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum Width {
    /// One byte (`ldb`/`stb`).
    B = 0,
    /// Two bytes (`ldw`/`stw`).
    W = 1,
    /// Four bytes (`ldl`/`stl`).
    L = 2,
    /// Eight bytes — a quad (`ldq`/`stq`).
    Q = 3,
}

impl Width {
    /// All widths, in encoding order.
    pub const ALL: [Width; 4] = [Width::B, Width::W, Width::L, Width::Q];

    /// Width in bytes (1, 2, 4 or 8).
    #[inline]
    pub const fn bytes(self) -> u64 {
        1 << (self as u8)
    }

    /// log2 of the byte width.
    #[inline]
    pub const fn log2(self) -> u8 {
        self as u8
    }

    /// Inverse of the encoding-field value.
    pub const fn from_code(c: u8) -> Option<Width> {
        if (c as usize) < Self::ALL.len() {
            Some(Self::ALL[c as usize])
        } else {
            None
        }
    }

    /// Mnemonic suffix character (`b`, `w`, `l`, `q`).
    pub const fn suffix(self) -> char {
        match self {
            Width::B => 'b',
            Width::W => 'w',
            Width::L => 'l',
            Width::Q => 'q',
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.suffix())
    }
}

/// Second ALU operand: a register or an 8-bit unsigned literal
/// (Alpha-style operate-format immediate).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// Register operand.
    Reg(super::Reg),
    /// Zero-extended 8-bit immediate.
    Imm(u8),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

impl From<super::Reg> for Operand {
    fn from(r: super::Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u8> for Operand {
    fn from(i: u8) -> Self {
        Operand::Imm(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_apply_arithmetic() {
        assert_eq!(AluOp::Add.apply(3, 4), 7);
        assert_eq!(AluOp::Sub.apply(3, 4), u64::MAX);
        assert_eq!(AluOp::Mul.apply(6, 7), 42);
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0, "wrapping add");
    }

    #[test]
    fn alu_apply_logic() {
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Bic.apply(0xff, 0x0f), 0xf0);
        assert_eq!(AluOp::Ornot.apply(0, 0), u64::MAX);
    }

    #[test]
    fn alu_apply_shifts_mask_amount() {
        assert_eq!(AluOp::Sll.apply(1, 4), 16);
        assert_eq!(AluOp::Sll.apply(1, 64), 1, "shift amount is mod 64");
        assert_eq!(AluOp::Srl.apply(0x8000_0000_0000_0000, 63), 1);
        assert_eq!(AluOp::Sra.apply(u64::MAX, 5), u64::MAX);
    }

    #[test]
    fn alu_apply_compares() {
        assert_eq!(AluOp::CmpEq.apply(5, 5), 1);
        assert_eq!(AluOp::CmpEq.apply(5, 6), 0);
        assert_eq!(AluOp::CmpLt.apply(u64::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(AluOp::CmpUlt.apply(u64::MAX, 0), 0, "max !< 0 unsigned");
        assert_eq!(AluOp::CmpLe.apply(7, 7), 1);
        assert_eq!(AluOp::CmpUle.apply(8, 7), 0);
    }

    #[test]
    fn alu_apply_scaled_adds() {
        assert_eq!(AluOp::S4Add.apply(3, 100), 112);
        assert_eq!(AluOp::S8Add.apply(3, 100), 124);
    }

    #[test]
    fn alu_func_round_trip() {
        for op in AluOp::ALL {
            assert_eq!(AluOp::from_func(op.func()), Some(op));
        }
        assert_eq!(AluOp::from_func(18), None);
    }

    #[test]
    fn cond_holds() {
        assert!(Cond::Eq.holds(0));
        assert!(!Cond::Eq.holds(1));
        assert!(Cond::Ne.holds(5));
        assert!(Cond::Lt.holds(-3i64 as u64));
        assert!(!Cond::Lt.holds(0));
        assert!(Cond::Le.holds(0));
        assert!(Cond::Gt.holds(1));
        assert!(Cond::Ge.holds(0));
    }

    #[test]
    fn cond_negate_is_involution() {
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            for v in [0u64, 1, u64::MAX, 1 << 63] {
                assert_eq!(c.holds(v), !c.negate().holds(v));
            }
        }
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::B.bytes(), 1);
        assert_eq!(Width::W.bytes(), 2);
        assert_eq!(Width::L.bytes(), 4);
        assert_eq!(Width::Q.bytes(), 8);
        for w in Width::ALL {
            assert_eq!(Width::from_code(w as u8), Some(w));
            assert_eq!(w.bytes(), 1 << w.log2());
        }
    }

    #[test]
    fn mul_latency_exceeds_add() {
        assert!(AluOp::Mul.latency() > AluOp::Add.latency());
    }
}
