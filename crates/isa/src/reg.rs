//! Register names: 32 general-purpose registers plus the 16 DISE registers.

use std::fmt;

/// A register operand.
///
/// Indices `0..=31` name the general-purpose registers `r0`–`r31`
/// (`r31` reads as zero and discards writes, as on Alpha). Indices
/// `32..=47` name the DISE registers `dr0`–`dr15`, which exist only in the
/// DISE engine and are architecturally invisible to conventionally fetched
/// code — the decoder rejects application instructions that name them (see
/// `dise-cpu`), while DISE replacement sequences and DISE-called functions
/// (via `d_mfr`/`d_mtr`) may use them freely.
///
/// ```
/// use dise_isa::Reg;
/// assert_eq!(Reg::gpr(30), Reg::SP);
/// assert!(Reg::dise(0).is_dise());
/// assert_eq!(Reg::dise(8), Reg::DAR);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Total number of addressable registers (GPRs + DISE registers).
    pub const NUM: usize = 48;
    /// Number of general-purpose registers.
    pub const NUM_GPR: usize = 32;
    /// Number of DISE registers.
    pub const NUM_DISE: usize = 16;

    /// The hardwired zero register `r31`.
    pub const ZERO: Reg = Reg(31);
    /// Stack pointer, `r30` by convention.
    pub const SP: Reg = Reg(30);
    /// Return-address register, `r26` by convention.
    pub const RA: Reg = Reg(26);
    /// Global pointer, `r29` by convention (reserved as scavengeable by the
    /// binary-rewriting debugger backend).
    pub const GP: Reg = Reg(29);

    /// DISE register holding the watched address (`dar` in the paper).
    pub const DAR: Reg = Reg(32 + 8);
    /// DISE register holding the previous expression value (`dpv`).
    pub const DPV: Reg = Reg(32 + 9);
    /// DISE register holding the debugger-generated handler address
    /// (`dhdlr`).
    pub const DHDLR: Reg = Reg(32 + 10);
    /// DISE register holding the high bits of the debugger's protected data
    /// segment (`dseg`, Fig. 2f).
    pub const DSEG: Reg = Reg(32 + 11);
    /// Second watched address, used by serial multi-address matching.
    pub const DAR2: Reg = Reg(32 + 12);
    /// Third watched address.
    pub const DAR3: Reg = Reg(32 + 13);
    /// DISE register holding the base of the debugger data region.
    pub const DBASE: Reg = Reg(32 + 14);
    /// DISE register holding the error-handler address (protection).
    pub const DERR: Reg = Reg(32 + 15);

    /// General-purpose register `r{i}`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    #[inline]
    pub const fn gpr(i: u8) -> Reg {
        assert!(i < 32, "GPR index out of range");
        Reg(i)
    }

    /// DISE register `dr{i}`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    #[inline]
    pub const fn dise(i: u8) -> Reg {
        assert!(i < 16, "DISE register index out of range");
        Reg(32 + i)
    }

    /// Construct from a raw 6-bit index (0–47), as found in encodings.
    #[inline]
    pub const fn from_index(i: u8) -> Option<Reg> {
        if i < 48 {
            Some(Reg(i))
        } else {
            None
        }
    }

    /// The raw register-file index (0–47).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// True for `dr0`–`dr15`.
    #[inline]
    pub const fn is_dise(self) -> bool {
        self.0 >= 32
    }

    /// True for the hardwired zero register.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 31
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 30 {
            write!(f, "sp")
        } else if self.0 == 26 {
            write!(f, "ra")
        } else if self.0 < 32 {
            write!(f, "r{}", self.0)
        } else {
            match *self {
                Reg::DAR => write!(f, "dar"),
                Reg::DPV => write!(f, "dpv"),
                Reg::DHDLR => write!(f, "dhdlr"),
                Reg::DSEG => write!(f, "dseg"),
                _ => write!(f, "dr{}", self.0 - 32),
            }
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_and_dise_ranges() {
        assert_eq!(Reg::gpr(0).index(), 0);
        assert_eq!(Reg::gpr(31), Reg::ZERO);
        assert_eq!(Reg::dise(0).index(), 32);
        assert_eq!(Reg::dise(15).index(), 47);
        assert!(!Reg::gpr(31).is_dise());
        assert!(Reg::dise(3).is_dise());
    }

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::SP.is_zero());
        assert!(!Reg::dise(15).is_zero());
    }

    #[test]
    fn from_index_bounds() {
        assert_eq!(Reg::from_index(0), Some(Reg::gpr(0)));
        assert_eq!(Reg::from_index(47), Some(Reg::dise(15)));
        assert_eq!(Reg::from_index(48), None);
        assert_eq!(Reg::from_index(255), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::gpr(4).to_string(), "r4");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::RA.to_string(), "ra");
        assert_eq!(Reg::dise(2).to_string(), "dr2");
        assert_eq!(Reg::DAR.to_string(), "dar");
        assert_eq!(Reg::DPV.to_string(), "dpv");
        assert_eq!(Reg::DHDLR.to_string(), "dhdlr");
        assert_eq!(Reg::DSEG.to_string(), "dseg");
    }

    #[test]
    #[should_panic]
    fn gpr_out_of_range_panics() {
        let _ = Reg::gpr(32);
    }

    #[test]
    #[should_panic]
    fn dise_out_of_range_panics() {
        let _ = Reg::dise(16);
    }
}
