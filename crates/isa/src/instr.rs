//! The instruction enumeration and its static-analysis helpers.

use std::fmt;

use crate::{AluOp, Cond, Operand, Reg, Width};

/// Coarse instruction class, matchable by DISE patterns
/// (`T.OPCLASS==store` and friends in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpClass {
    /// Memory loads.
    Load,
    /// Memory stores.
    Store,
    /// Conditional branches.
    Branch,
    /// Unconditional jumps/calls/returns.
    Jump,
    /// Register-to-register computation (including `lda`/`ldah`).
    Alu,
    /// Traps, codewords, halt, and DISE-internal instructions.
    Other,
}

/// One decoded instruction.
///
/// PC-relative displacements (`disp` on branches) are in *instructions*
/// relative to the next PC, Alpha style: target = PC + 4 + 4*disp.
/// DISE branch displacements ([`Instr::DBr`]) are relative to the next
/// DISEPC within the replacement sequence, e.g. `d_bne dr1, +1` skips one
/// replacement instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// Load `width` bytes, zero-extended: `rd = mem[base + disp]`.
    Load {
        /// Access width.
        width: Width,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte displacement.
        disp: i16,
    },
    /// Store the low `width` bytes of `rs`: `mem[base + disp] = rs`.
    Store {
        /// Access width.
        width: Width,
        /// Source register.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte displacement.
        disp: i16,
    },
    /// Load address: `rd = base + disp`.
    Lda {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte displacement.
        disp: i16,
    },
    /// Load address high: `rd = base + (disp << 14)`.
    ///
    /// (Alpha shifts by 16; we shift by the memory-displacement width so
    /// that an `ldah`/`lda` pair can materialise any address up to
    /// 2^27 — see `dise-asm`'s `load_addr`.)
    Ldah {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed displacement, shifted left 14.
        disp: i16,
    },
    /// ALU operation `rd = op(ra, rb)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        ra: Reg,
        /// Second operand: register or 8-bit immediate.
        rb: Operand,
    },
    /// Unconditional PC-relative branch, saving the return address in `rd`
    /// (use [`Reg::ZERO`] for a plain `br`).
    Br {
        /// Link register.
        rd: Reg,
        /// Instruction displacement.
        disp: i32,
    },
    /// Conditional PC-relative branch on `cond(rs)`.
    CondBr {
        /// Branch condition, tested against zero.
        cond: Cond,
        /// Tested register.
        rs: Reg,
        /// Instruction displacement.
        disp: i32,
    },
    /// Indirect jump: `rd = return address; PC = base`.
    Jmp {
        /// Link register.
        rd: Reg,
        /// Target address register.
        base: Reg,
    },
    /// Unconditional trap into the debugger.
    Trap,
    /// Conditional trap (Optimization I): trap iff `cond(rs)`. Part of the
    /// DISE ISA only; never emitted by application compilers.
    CTrap {
        /// Trap condition.
        cond: Cond,
        /// Tested register.
        rs: Reg,
    },
    /// DISE codeword: a reserved opcode whose only purpose is to match a
    /// DISE pattern and trigger an expansion. Executes as a no-op if
    /// unmatched.
    Codeword(u16),
    /// Stop simulation.
    Halt,
    /// No operation.
    Nop,
    /// DISE branch: transfers to `⟨samePC : DISEPC+1+disp⟩` iff `cond(rs)`.
    /// Taken DISE branches flush the pipeline (they are predicted
    /// not-taken by construction).
    DBr {
        /// Branch condition.
        cond: Cond,
        /// Tested register.
        rs: Reg,
        /// DISEPC displacement from the next replacement instruction.
        disp: i8,
    },
    /// DISE call to the conventional code whose address is in `target`;
    /// saves `⟨PC : DISEPC+1⟩` on the DISE return stack and flushes.
    DCall {
        /// Register holding the callee address (typically [`Reg::DHDLR`]).
        target: Reg,
    },
    /// Conditional DISE call (Optimization III): call iff `cond(rs)`.
    DCCall {
        /// Call condition.
        cond: Cond,
        /// Tested register.
        rs: Reg,
        /// Register holding the callee address.
        target: Reg,
    },
    /// Return from a DISE-called function to `⟨PC : DISEPC+1⟩`,
    /// re-enabling DISE expansion; flushes.
    DRet,
    /// DISE move-from-register: `rd = dise[dr]` (valid only inside
    /// DISE-called functions).
    DMfr {
        /// GPR destination.
        rd: Reg,
        /// DISE register source.
        dr: Reg,
    },
    /// DISE move-to-register: `dise[dr] = rs` (valid only inside
    /// DISE-called functions).
    DMtr {
        /// DISE register destination.
        dr: Reg,
        /// GPR source.
        rs: Reg,
    },
}

impl Instr {
    /// A register-move pseudo-instruction (`bis rs, rs, rd`).
    pub const fn mov(rs: Reg, rd: Reg) -> Instr {
        Instr::Alu { op: AluOp::Or, rd, ra: rs, rb: Operand::Reg(rs) }
    }

    /// A load-immediate pseudo-instruction for small constants
    /// (`lda rd, imm(r31)`).
    pub const fn li(rd: Reg, imm: i16) -> Instr {
        Instr::Lda { rd, base: Reg::ZERO, disp: imm }
    }

    /// The coarse class used by DISE pattern matching.
    pub const fn opclass(&self) -> OpClass {
        match self {
            Instr::Load { .. } => OpClass::Load,
            Instr::Store { .. } => OpClass::Store,
            Instr::CondBr { .. } => OpClass::Branch,
            Instr::Br { .. } | Instr::Jmp { .. } => OpClass::Jump,
            Instr::Lda { .. } | Instr::Ldah { .. } | Instr::Alu { .. } => OpClass::Alu,
            _ => OpClass::Other,
        }
    }

    /// True for memory stores.
    pub const fn is_store(&self) -> bool {
        matches!(self, Instr::Store { .. })
    }

    /// True for memory loads.
    pub const fn is_load(&self) -> bool {
        matches!(self, Instr::Load { .. })
    }

    /// True for instructions that may redirect the conventional PC.
    pub const fn is_control(&self) -> bool {
        matches!(self, Instr::Br { .. } | Instr::CondBr { .. } | Instr::Jmp { .. })
    }

    /// True for instructions legal *only* within DISE replacement
    /// sequences or DISE-called functions.
    pub const fn is_dise_only(&self) -> bool {
        matches!(
            self,
            Instr::DBr { .. }
                | Instr::DCall { .. }
                | Instr::DCCall { .. }
                | Instr::DRet
                | Instr::DMfr { .. }
                | Instr::DMtr { .. }
                | Instr::CTrap { .. }
        )
    }

    /// The register written by this instruction, if any. The zero register
    /// is reported as `None` (writes to it are discarded).
    pub fn dest(&self) -> Option<Reg> {
        let d = match *self {
            Instr::Load { rd, .. }
            | Instr::Lda { rd, .. }
            | Instr::Ldah { rd, .. }
            | Instr::Alu { rd, .. }
            | Instr::Br { rd, .. }
            | Instr::Jmp { rd, .. }
            | Instr::DMfr { rd, .. } => rd,
            Instr::DMtr { dr, .. } => dr,
            _ => return None,
        };
        if d.is_zero() {
            None
        } else {
            Some(d)
        }
    }

    /// The registers read by this instruction (up to two).
    pub fn sources(&self) -> [Option<Reg>; 2] {
        match *self {
            Instr::Load { base, .. } | Instr::Lda { base, .. } | Instr::Ldah { base, .. } => {
                [Some(base), None]
            }
            Instr::Store { rs, base, .. } => [Some(rs), Some(base)],
            Instr::Alu { ra, rb, .. } => match rb {
                Operand::Reg(r) => [Some(ra), Some(r)],
                Operand::Imm(_) => [Some(ra), None],
            },
            Instr::CondBr { rs, .. } | Instr::CTrap { rs, .. } | Instr::DBr { rs, .. } => {
                [Some(rs), None]
            }
            Instr::Jmp { base, .. } => [Some(base), None],
            Instr::DCall { target } => [Some(target), None],
            Instr::DCCall { rs, target, .. } => [Some(rs), Some(target)],
            Instr::DMfr { dr, .. } => [Some(dr), None],
            Instr::DMtr { rs, .. } => [Some(rs), None],
            _ => [None, None],
        }
    }

    /// True if any operand (source or destination) names a DISE register.
    pub fn touches_dise_regs(&self) -> bool {
        let dest_uses = match *self {
            Instr::Load { rd, .. }
            | Instr::Lda { rd, .. }
            | Instr::Ldah { rd, .. }
            | Instr::Alu { rd, .. }
            | Instr::Br { rd, .. }
            | Instr::Jmp { rd, .. } => rd.is_dise(),
            Instr::Store { rs, .. } => rs.is_dise(),
            _ => false,
        };
        dest_uses || self.sources().iter().flatten().any(|r| r.is_dise())
    }

    /// For memory instructions: the `(base, disp, width)` of the access.
    pub fn mem_access(&self) -> Option<(Reg, i16, Width)> {
        match *self {
            Instr::Load { width, base, disp, .. } | Instr::Store { width, base, disp, .. } => {
                Some((base, disp, width))
            }
            _ => None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Load { width, rd, base, disp } => {
                write!(f, "ld{width} {rd}, {disp}({base})")
            }
            Instr::Store { width, rs, base, disp } => {
                write!(f, "st{width} {rs}, {disp}({base})")
            }
            Instr::Lda { rd, base, disp } => write!(f, "lda {rd}, {disp}({base})"),
            Instr::Ldah { rd, base, disp } => write!(f, "ldah {rd}, {disp}({base})"),
            Instr::Alu { op, rd, ra, rb } => write!(f, "{op} {ra}, {rb}, {rd}"),
            Instr::Br { rd, disp } => {
                if rd.is_zero() {
                    write!(f, "br {disp:+}")
                } else {
                    write!(f, "bsr {rd}, {disp:+}")
                }
            }
            Instr::CondBr { cond, rs, disp } => write!(f, "b{cond} {rs}, {disp:+}"),
            Instr::Jmp { rd, base } => {
                if rd.is_zero() {
                    write!(f, "jmp ({base})")
                } else {
                    write!(f, "jsr {rd}, ({base})")
                }
            }
            Instr::Trap => write!(f, "trap"),
            Instr::CTrap { cond, rs } => write!(f, "ctrap{cond} {rs}"),
            Instr::Codeword(i) => write!(f, "codeword {i}"),
            Instr::Halt => write!(f, "halt"),
            Instr::Nop => write!(f, "nop"),
            Instr::DBr { cond, rs, disp } => write!(f, "d_b{cond} {rs}, {disp:+}"),
            Instr::DCall { target } => write!(f, "d_call ({target})"),
            Instr::DCCall { cond, rs, target } => write!(f, "d_ccall{cond} {rs}, ({target})"),
            Instr::DRet => write!(f, "d_ret"),
            Instr::DMfr { rd, dr } => write!(f, "d_mfr {rd}, {dr}"),
            Instr::DMtr { dr, rs } => write!(f, "d_mtr {dr}, {rs}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::gpr(i)
    }

    #[test]
    fn opclass_covers_kinds() {
        let ld = Instr::Load { width: Width::Q, rd: r(1), base: r(2), disp: 0 };
        let st = Instr::Store { width: Width::Q, rs: r(1), base: r(2), disp: 0 };
        assert_eq!(ld.opclass(), OpClass::Load);
        assert_eq!(st.opclass(), OpClass::Store);
        assert_eq!(Instr::CondBr { cond: Cond::Eq, rs: r(1), disp: 0 }.opclass(), OpClass::Branch);
        assert_eq!(Instr::Br { rd: Reg::ZERO, disp: 0 }.opclass(), OpClass::Jump);
        assert_eq!(Instr::Trap.opclass(), OpClass::Other);
        assert_eq!(Instr::li(r(1), 5).opclass(), OpClass::Alu);
    }

    #[test]
    fn dest_hides_zero_register() {
        let i = Instr::Alu { op: AluOp::Add, rd: Reg::ZERO, ra: r(1), rb: Operand::Imm(1) };
        assert_eq!(i.dest(), None);
        let i = Instr::Alu { op: AluOp::Add, rd: r(3), ra: r(1), rb: Operand::Imm(1) };
        assert_eq!(i.dest(), Some(r(3)));
    }

    #[test]
    fn sources_of_store_include_data_and_base() {
        let st = Instr::Store { width: Width::L, rs: r(4), base: r(5), disp: 8 };
        assert_eq!(st.sources(), [Some(r(4)), Some(r(5))]);
        assert_eq!(st.dest(), None);
        assert_eq!(st.mem_access(), Some((r(5), 8, Width::L)));
    }

    #[test]
    fn dise_only_instructions_flagged() {
        assert!(Instr::DRet.is_dise_only());
        assert!(Instr::CTrap { cond: Cond::Eq, rs: r(1) }.is_dise_only());
        assert!(Instr::DBr { cond: Cond::Ne, rs: Reg::dise(1), disp: 1 }.is_dise_only());
        assert!(!Instr::Trap.is_dise_only());
        assert!(!Instr::Nop.is_dise_only());
    }

    #[test]
    fn touches_dise_regs() {
        let i = Instr::Load { width: Width::Q, rd: Reg::dise(1), base: Reg::DAR, disp: 0 };
        assert!(i.touches_dise_regs());
        let i = Instr::Load { width: Width::Q, rd: r(1), base: r(2), disp: 0 };
        assert!(!i.touches_dise_regs());
        let i = Instr::Store { width: Width::Q, rs: Reg::dise(0), base: r(2), disp: 0 };
        assert!(i.touches_dise_regs());
    }

    #[test]
    fn mov_and_li_pseudos() {
        let m = Instr::mov(r(2), r(3));
        assert_eq!(m.dest(), Some(r(3)));
        assert_eq!(m.sources(), [Some(r(2)), Some(r(2))]);
        let l = Instr::li(r(4), -7);
        assert_eq!(l.to_string(), "lda r4, -7(r31)");
    }

    #[test]
    fn display_matches_paper_style() {
        let i = Instr::Load { width: Width::Q, rd: r(4), base: Reg::SP, disp: 32 };
        assert_eq!(i.to_string(), "ldq r4, 32(sp)");
        let i = Instr::Alu { op: AluOp::Add, rd: Reg::dise(0), ra: Reg::SP, rb: Operand::Imm(8) };
        assert_eq!(i.to_string(), "addq sp, 8, dr0");
        let i = Instr::DCCall { cond: Cond::Ne, rs: Reg::dise(1), target: Reg::DHDLR };
        assert_eq!(i.to_string(), "d_ccallne dr1, (dhdlr)");
    }
}
