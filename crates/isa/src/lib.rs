//! # dise-isa — the Alpha-like instruction set of the DISE reproduction
//!
//! This crate defines the instruction set simulated by the rest of the
//! workspace. It is modeled on the Alpha AXP subset used by the paper
//! *Low-Overhead Interactive Debugging via Dynamic Instrumentation with
//! DISE* (HPCA 2005): a 64-bit load/store RISC with 32 general-purpose
//! registers, plus the paper's extensions:
//!
//! * a bank of 16 **DISE registers** (`dr0`–`dr15`) visible only to DISE
//!   replacement sequences and DISE-called functions ([`Reg::dise`]),
//! * a **conditional trap** `ctrap` (Optimization I, Fig. 2b),
//! * a reserved-opcode **DISE codeword** used to trigger expansions,
//! * the DISE-only control instructions `d_beq`/`d_bne` (DISEPC-relative
//!   branches), `d_call`/`d_ccall` (calls to debugger-generated functions),
//!   `d_ret`, and the DISE register movers `d_mfr`/`d_mtr`.
//!
//! Instructions have a real 32-bit binary encoding ([`encode`]/[`decode`])
//! so that instruction-cache behaviour, code bloat under binary rewriting,
//! and program images are all faithful.
//!
//! ```
//! use dise_isa::{Instr, Reg, AluOp, Operand, encode, decode};
//!
//! let add = Instr::Alu {
//!     op: AluOp::Add,
//!     rd: Reg::gpr(1),
//!     ra: Reg::gpr(2),
//!     rb: Operand::Imm(8),
//! };
//! let word = encode(&add);
//! assert_eq!(decode(word).unwrap(), add);
//! assert_eq!(add.to_string(), "addq r2, 8, r1");
//! ```

mod encode;
mod instr;
mod op;
mod reg;

pub use encode::{decode, encode, DecodeError, MEM_DISP_MAX, MEM_DISP_MIN};
pub use instr::{Instr, OpClass};
pub use op::{AluOp, Cond, Operand, Width};
pub use reg::Reg;

/// Size of one encoded instruction in bytes.
pub const INSTR_BYTES: u64 = 4;
