//! 32-bit binary instruction encoding.
//!
//! Layout (bit 31 is the MSB):
//!
//! | format  | [31:26] | fields |
//! |---------|---------|--------|
//! | memory  | opcode  | ra\[25:20\], base\[19:14\], disp14\[13:0\] |
//! | ALU reg | `ALU_R` | rd\[25:20\], ra\[19:14\], func\[13:8\], rb\[5:0\] |
//! | ALU imm | `ALU_I` | rd\[25:20\], ra\[19:14\], func\[13:8\], imm8\[7:0\] |
//! | branch  | opcode  | r\[25:20\], disp20\[19:0\] |
//! | jump    | `JMP`   | rd\[25:20\], base\[19:14\] |
//! | misc    | opcode  | format-specific |
//!
//! Register fields are 6 bits wide to cover the 32 GPRs plus the 16 DISE
//! registers; memory displacements are therefore 14-bit signed (±8 KiB),
//! narrower than Alpha's 16. The assembler rejects out-of-range values.

use std::fmt;

use crate::{AluOp, Cond, Instr, Operand, Reg, Width};

const OP_NOP: u8 = 0;
const OP_HALT: u8 = 1;
const OP_TRAP: u8 = 2;
const OP_CTRAP: u8 = 3;
const OP_CODEWORD: u8 = 4;
const OP_LD_BASE: u8 = 8; // 8..=11: ldb/ldw/ldl/ldq
const OP_ST_BASE: u8 = 12; // 12..=15: stb/stw/stl/stq
const OP_LDA: u8 = 16;
const OP_LDAH: u8 = 17;
const OP_ALU_R: u8 = 18;
const OP_ALU_I: u8 = 19;
const OP_BR: u8 = 24;
const OP_CONDBR_BASE: u8 = 25; // 25..=30, cond in opcode
const OP_JMP: u8 = 31;
const OP_DBR: u8 = 40;
const OP_DCALL: u8 = 41;
const OP_DCCALL: u8 = 42;
const OP_DRET: u8 = 43;
const OP_DMFR: u8 = 44;
const OP_DMTR: u8 = 45;

const DISP14_MIN: i32 = -(1 << 13);
const DISP14_MAX: i32 = (1 << 13) - 1;
const DISP20_MIN: i32 = -(1 << 19);
const DISP20_MAX: i32 = (1 << 19) - 1;

/// Maximum encodable signed byte displacement for memory instructions.
pub const MEM_DISP_MAX: i16 = DISP14_MAX as i16;
/// Minimum encodable signed byte displacement for memory instructions.
pub const MEM_DISP_MIN: i16 = DISP14_MIN as i16;

/// Error produced by [`decode`] for malformed instruction words.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The opcode field names no instruction.
    BadOpcode(u8),
    /// A register field exceeds the register-file size.
    BadRegister(u8),
    /// An ALU function field names no operation.
    BadFunction(u8),
    /// A condition field names no condition.
    BadCondition(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#x}"),
            DecodeError::BadRegister(r) => write!(f, "register index {r} out of range"),
            DecodeError::BadFunction(x) => write!(f, "unknown ALU function {x:#x}"),
            DecodeError::BadCondition(c) => write!(f, "unknown condition code {c:#x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn field(word: u32, lo: u32, bits: u32) -> u32 {
    (word >> lo) & ((1 << bits) - 1)
}

#[inline]
fn sext(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

fn reg_field(word: u32, lo: u32) -> Result<Reg, DecodeError> {
    let raw = field(word, lo, 6) as u8;
    Reg::from_index(raw).ok_or(DecodeError::BadRegister(raw))
}

fn cond_field(word: u32, lo: u32) -> Result<Cond, DecodeError> {
    let raw = field(word, lo, 3) as u8;
    Cond::from_code(raw).ok_or(DecodeError::BadCondition(raw))
}

#[inline]
fn op(opcode: u8) -> u32 {
    (opcode as u32) << 26
}

#[inline]
fn r_at(r: Reg, lo: u32) -> u32 {
    (r.index() as u32) << lo
}

fn mem(opcode: u8, data: Reg, base: Reg, disp: i16) -> u32 {
    let d = disp as i32;
    assert!(
        (DISP14_MIN..=DISP14_MAX).contains(&d),
        "memory displacement {disp} out of 14-bit range"
    );
    op(opcode) | r_at(data, 20) | r_at(base, 14) | ((d as u32) & 0x3fff)
}

fn branch(opcode: u8, r: Reg, disp: i32) -> u32 {
    assert!(
        (DISP20_MIN..=DISP20_MAX).contains(&disp),
        "branch displacement {disp} out of 20-bit range"
    );
    op(opcode) | r_at(r, 20) | ((disp as u32) & 0xf_ffff)
}

/// Encode an instruction into its 32-bit word.
///
/// # Panics
///
/// Panics when a displacement exceeds its field width (14-bit signed for
/// memory, 20-bit signed for branches). The assembler checks ranges before
/// calling this.
pub fn encode(instr: &Instr) -> u32 {
    match *instr {
        Instr::Nop => op(OP_NOP),
        Instr::Halt => op(OP_HALT),
        Instr::Trap => op(OP_TRAP),
        Instr::CTrap { cond, rs } => op(OP_CTRAP) | ((cond.code() as u32) << 23) | r_at(rs, 17),
        Instr::Codeword(i) => op(OP_CODEWORD) | i as u32,
        Instr::Load { width, rd, base, disp } => mem(OP_LD_BASE + width as u8, rd, base, disp),
        Instr::Store { width, rs, base, disp } => mem(OP_ST_BASE + width as u8, rs, base, disp),
        Instr::Lda { rd, base, disp } => mem(OP_LDA, rd, base, disp),
        Instr::Ldah { rd, base, disp } => mem(OP_LDAH, rd, base, disp),
        Instr::Alu { op: aop, rd, ra, rb } => {
            let common = r_at(rd, 20) | r_at(ra, 14) | ((aop.func() as u32) << 8);
            match rb {
                Operand::Reg(r) => op(OP_ALU_R) | common | r.index() as u32,
                Operand::Imm(i) => op(OP_ALU_I) | common | i as u32,
            }
        }
        Instr::Br { rd, disp } => branch(OP_BR, rd, disp),
        Instr::CondBr { cond, rs, disp } => branch(OP_CONDBR_BASE + cond.code(), rs, disp),
        Instr::Jmp { rd, base } => op(OP_JMP) | r_at(rd, 20) | r_at(base, 14),
        Instr::DBr { cond, rs, disp } => {
            op(OP_DBR) | ((cond.code() as u32) << 23) | r_at(rs, 17) | (disp as u8 as u32)
        }
        Instr::DCall { target } => op(OP_DCALL) | r_at(target, 20),
        Instr::DCCall { cond, rs, target } => {
            op(OP_DCCALL) | ((cond.code() as u32) << 23) | r_at(rs, 17) | r_at(target, 11)
        }
        Instr::DRet => op(OP_DRET),
        Instr::DMfr { rd, dr } => op(OP_DMFR) | r_at(rd, 20) | r_at(dr, 14),
        Instr::DMtr { dr, rs } => op(OP_DMTR) | r_at(dr, 20) | r_at(rs, 14),
    }
}

/// Decode a 32-bit instruction word.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the opcode, a register index, an ALU
/// function, or a condition code is invalid.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let opcode = (word >> 26) as u8;
    Ok(match opcode {
        OP_NOP => Instr::Nop,
        OP_HALT => Instr::Halt,
        OP_TRAP => Instr::Trap,
        OP_CTRAP => Instr::CTrap { cond: cond_field(word, 23)?, rs: reg_field(word, 17)? },
        OP_CODEWORD => Instr::Codeword(word as u16),
        o @ OP_LD_BASE..=11 => Instr::Load {
            width: Width::from_code(o - OP_LD_BASE).expect("width in range"),
            rd: reg_field(word, 20)?,
            base: reg_field(word, 14)?,
            disp: sext(field(word, 0, 14), 14) as i16,
        },
        o @ OP_ST_BASE..=15 => Instr::Store {
            width: Width::from_code(o - OP_ST_BASE).expect("width in range"),
            rs: reg_field(word, 20)?,
            base: reg_field(word, 14)?,
            disp: sext(field(word, 0, 14), 14) as i16,
        },
        OP_LDA => Instr::Lda {
            rd: reg_field(word, 20)?,
            base: reg_field(word, 14)?,
            disp: sext(field(word, 0, 14), 14) as i16,
        },
        OP_LDAH => Instr::Ldah {
            rd: reg_field(word, 20)?,
            base: reg_field(word, 14)?,
            disp: sext(field(word, 0, 14), 14) as i16,
        },
        OP_ALU_R | OP_ALU_I => {
            let func = field(word, 8, 6) as u8;
            let aop = AluOp::from_func(func).ok_or(DecodeError::BadFunction(func))?;
            let rb = if opcode == OP_ALU_R {
                Operand::Reg(reg_field(word, 0)?)
            } else {
                Operand::Imm(word as u8)
            };
            Instr::Alu { op: aop, rd: reg_field(word, 20)?, ra: reg_field(word, 14)?, rb }
        }
        OP_BR => Instr::Br { rd: reg_field(word, 20)?, disp: sext(field(word, 0, 20), 20) },
        o @ OP_CONDBR_BASE..=30 => Instr::CondBr {
            cond: Cond::from_code(o - OP_CONDBR_BASE).expect("cond in range"),
            rs: reg_field(word, 20)?,
            disp: sext(field(word, 0, 20), 20),
        },
        OP_JMP => Instr::Jmp { rd: reg_field(word, 20)?, base: reg_field(word, 14)? },
        OP_DBR => Instr::DBr {
            cond: cond_field(word, 23)?,
            rs: reg_field(word, 17)?,
            disp: word as u8 as i8,
        },
        OP_DCALL => Instr::DCall { target: reg_field(word, 20)? },
        OP_DCCALL => Instr::DCCall {
            cond: cond_field(word, 23)?,
            rs: reg_field(word, 17)?,
            target: reg_field(word, 11)?,
        },
        OP_DRET => Instr::DRet,
        OP_DMFR => Instr::DMfr { rd: reg_field(word, 20)?, dr: reg_field(word, 14)? },
        OP_DMTR => Instr::DMtr { dr: reg_field(word, 20)?, rs: reg_field(word, 14)? },
        other => return Err(DecodeError::BadOpcode(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(i: Instr) {
        let w = encode(&i);
        assert_eq!(decode(w), Ok(i), "round-trip failed for {i} ({w:#010x})");
    }

    #[test]
    fn round_trip_memory() {
        for width in Width::ALL {
            rt(Instr::Load { width, rd: Reg::gpr(5), base: Reg::SP, disp: -8 });
            rt(Instr::Store { width, rs: Reg::gpr(9), base: Reg::gpr(0), disp: 8191 });
        }
        rt(Instr::Lda { rd: Reg::gpr(1), base: Reg::ZERO, disp: -8192 });
        rt(Instr::Ldah { rd: Reg::gpr(1), base: Reg::gpr(1), disp: 4095 });
    }

    #[test]
    fn round_trip_alu() {
        for op in AluOp::ALL {
            rt(Instr::Alu { op, rd: Reg::gpr(3), ra: Reg::gpr(4), rb: Operand::Reg(Reg::dise(2)) });
            rt(Instr::Alu { op, rd: Reg::dise(0), ra: Reg::DAR, rb: Operand::Imm(255) });
        }
    }

    #[test]
    fn round_trip_control() {
        rt(Instr::Br { rd: Reg::RA, disp: -1 });
        rt(Instr::Br { rd: Reg::ZERO, disp: 524287 });
        for cond in Cond::ALL {
            rt(Instr::CondBr { cond, rs: Reg::gpr(7), disp: -524288 });
        }
        rt(Instr::Jmp { rd: Reg::ZERO, base: Reg::RA });
    }

    #[test]
    fn round_trip_misc_and_dise() {
        rt(Instr::Nop);
        rt(Instr::Halt);
        rt(Instr::Trap);
        rt(Instr::Codeword(0xbeef));
        for cond in Cond::ALL {
            rt(Instr::CTrap { cond, rs: Reg::dise(1) });
            rt(Instr::DBr { cond, rs: Reg::dise(1), disp: -2 });
            rt(Instr::DCCall { cond, rs: Reg::dise(1), target: Reg::DHDLR });
        }
        rt(Instr::DCall { target: Reg::DHDLR });
        rt(Instr::DRet);
        rt(Instr::DMfr { rd: Reg::gpr(1), dr: Reg::DPV });
        rt(Instr::DMtr { dr: Reg::DPV, rs: Reg::gpr(1) });
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(decode(63 << 26), Err(DecodeError::BadOpcode(63)));
        assert_eq!(decode(5 << 26), Err(DecodeError::BadOpcode(5)));
    }

    #[test]
    fn bad_register_rejected() {
        // ldq with register field 63
        let w = (OP_LD_BASE as u32 + 3) << 26 | 63 << 20;
        assert_eq!(decode(w), Err(DecodeError::BadRegister(63)));
    }

    #[test]
    fn bad_function_rejected() {
        let w = (OP_ALU_R as u32) << 26 | 63 << 8;
        assert_eq!(decode(w), Err(DecodeError::BadFunction(63)));
    }

    #[test]
    fn bad_condition_rejected() {
        let w = (OP_CTRAP as u32) << 26 | 7 << 23;
        assert_eq!(decode(w), Err(DecodeError::BadCondition(7)));
    }

    #[test]
    #[should_panic(expected = "14-bit range")]
    fn oversized_mem_disp_panics() {
        encode(&Instr::Load { width: Width::Q, rd: Reg::gpr(0), base: Reg::gpr(0), disp: 8192 });
    }

    #[test]
    fn negative_disp_sign_extends() {
        let w =
            encode(&Instr::Load { width: Width::Q, rd: Reg::gpr(1), base: Reg::SP, disp: -4096 });
        match decode(w).unwrap() {
            Instr::Load { disp, .. } => assert_eq!(disp, -4096),
            other => panic!("decoded {other:?}"),
        }
    }
}
