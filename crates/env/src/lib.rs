//! # dise-env — the one parser for every `DISE_*` environment knob
//!
//! Every crate in the workspace reads ablation and tuning knobs from
//! the environment (`DISE_JOBS`, `DISE_ITERS`, `DISE_BLOCK_CACHE`,
//! `DISE_COW_FORK`, `DISE_CHECKPOINTS`, `DISE_SCHED`, `DISE_SLICE`, …).
//! The contract is uniform: **a typo must fail loudly**, never silently
//! fall back to a default the user did not ask for — a mistyped
//! `DISE_SCHED=ture` that quietly kept the scheduler on would
//! invalidate an ablation without anyone noticing. This crate holds the
//! parsers ([`env_number`], [`env_flag`], [`env_string`]) so `dise-cpu`,
//! `dise-debug` and `dise-bench` cannot drift apart on that contract
//! (and so the core crates need no dependency on the bench harness,
//! where the helper first lived).
//!
//! Unset and empty/whitespace-only values mean "use the default" for
//! both parsers: an empty variable is how shells and CI matrices spell
//! "not configured", not a typo.

/// Parse a numeric environment knob, `default` when unset or empty.
///
/// Whitespace is trimmed before parsing, and a trimmed-empty value
/// counts as unset (CI matrices routinely pass `DISE_FOO=`).
///
/// # Panics
///
/// Panics on an unparsable (or non-unicode) value — the loud-on-typo
/// contract.
pub fn env_number<T: std::str::FromStr>(name: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match std::env::var(name) {
        Ok(s) if s.trim().is_empty() => default,
        Ok(s) => s.trim().parse().unwrap_or_else(|e| panic!("invalid {name} value `{s}`: {e}")),
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(s)) => {
            panic!("invalid {name} value {s:?}: not unicode")
        }
    }
}

/// Parse a boolean environment knob, `default` when unset or empty:
/// `1`/`true`/`on` enable, `0`/`false`/`off` disable (whitespace
/// trimmed).
///
/// # Panics
///
/// Panics on any other value — the loud-on-typo contract.
pub fn env_flag(name: &str, default: bool) -> bool {
    match std::env::var(name) {
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(s)) => {
            panic!("invalid {name} value {s:?}: not unicode")
        }
        Ok(v) => match v.trim() {
            "" => default,
            "1" | "true" | "on" => true,
            "0" | "false" | "off" => false,
            other => panic!("{name} must be 0/1/true/false/on/off, got {other:?}"),
        },
    }
}

/// Read a free-form string knob (e.g. `DISE_TRACE_DIR`), `None` when
/// unset or empty/whitespace-only.
///
/// The value is trimmed: shells and CI matrices routinely pass
/// `DISE_FOO=` or pad values, and a path knob of pure whitespace is
/// "not configured", not a directory name.
///
/// # Panics
///
/// Panics on a non-unicode value — the loud-on-typo contract. (There
/// is no further validation here: what makes a *valid* string is knob
/// specific, so consumers fail loudly themselves.)
pub fn env_string(name: &str) -> Option<String> {
    match std::env::var(name) {
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(s)) => {
            panic!("invalid {name} value {s:?}: not unicode")
        }
        Ok(v) => {
            let v = v.trim();
            if v.is_empty() {
                None
            } else {
                Some(v.to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::catch_unwind;

    // Each test owns uniquely named variables: the process environment
    // is shared across test threads, so reusing names would race.

    #[test]
    fn numbers_parse_trim_and_default() {
        assert_eq!(env_number("DISE_ENV_TEST_UNSET", 42u32), 42);
        std::env::set_var("DISE_ENV_TEST_SET", "17");
        assert_eq!(env_number("DISE_ENV_TEST_SET", 42u32), 17);
        std::env::set_var("DISE_ENV_TEST_PADDED", " 8 ");
        assert_eq!(env_number("DISE_ENV_TEST_PADDED", 1usize), 8, "whitespace is trimmed");
        std::env::set_var("DISE_ENV_TEST_EMPTY", "");
        assert_eq!(env_number("DISE_ENV_TEST_EMPTY", 7u64), 7, "empty means unset");
        std::env::set_var("DISE_ENV_TEST_BLANK", "  ");
        assert_eq!(env_number("DISE_ENV_TEST_BLANK", 9u64), 9, "blank means unset");
    }

    #[test]
    fn number_typo_fails_loudly_naming_knob_and_value() {
        std::env::set_var("DISE_ENV_TEST_NUM_TYPO", "4O0"); // letter O
        let err = catch_unwind(|| env_number("DISE_ENV_TEST_NUM_TYPO", 400u32)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("DISE_ENV_TEST_NUM_TYPO"), "panic names the knob: {msg}");
        assert!(msg.contains("4O0"), "panic shows the bad value: {msg}");
    }

    #[test]
    fn negative_number_rejected_for_unsigned_knob() {
        std::env::set_var("DISE_ENV_TEST_NEGATIVE", "-3");
        assert!(catch_unwind(|| env_number("DISE_ENV_TEST_NEGATIVE", 1usize)).is_err());
    }

    #[test]
    fn flags_parse_every_spelling_and_default() {
        assert!(env_flag("DISE_ENV_TEST_FLAG_UNSET", true));
        assert!(!env_flag("DISE_ENV_TEST_FLAG_UNSET", false));
        for (value, expect) in [
            ("1", true),
            ("true", true),
            ("on", true),
            ("0", false),
            ("false", false),
            ("off", false),
            (" on ", true),
            ("", false),
        ] {
            std::env::set_var("DISE_ENV_TEST_FLAG_VAL", value);
            assert_eq!(
                env_flag("DISE_ENV_TEST_FLAG_VAL", false),
                expect,
                "value {value:?} must parse"
            );
            std::env::remove_var("DISE_ENV_TEST_FLAG_VAL");
        }
    }

    #[test]
    fn flag_typo_fails_loudly_naming_knob_and_value() {
        // The canonical near-miss: `ture` must not silently disable (or
        // enable) the knob the user was trying to set.
        std::env::set_var("DISE_ENV_TEST_FLAG_TYPO", "ture");
        let err = catch_unwind(|| env_flag("DISE_ENV_TEST_FLAG_TYPO", true)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("DISE_ENV_TEST_FLAG_TYPO"), "panic names the knob: {msg}");
        assert!(msg.contains("ture"), "panic shows the bad value: {msg}");
    }

    #[test]
    fn strings_trim_and_treat_empty_as_unset() {
        assert_eq!(env_string("DISE_ENV_TEST_STR_UNSET"), None);
        std::env::set_var("DISE_ENV_TEST_STR_SET", "/tmp/traces");
        assert_eq!(env_string("DISE_ENV_TEST_STR_SET").as_deref(), Some("/tmp/traces"));
        std::env::set_var("DISE_ENV_TEST_STR_PADDED", "  relative/dir ");
        assert_eq!(
            env_string("DISE_ENV_TEST_STR_PADDED").as_deref(),
            Some("relative/dir"),
            "whitespace is trimmed"
        );
        std::env::set_var("DISE_ENV_TEST_STR_EMPTY", "");
        assert_eq!(env_string("DISE_ENV_TEST_STR_EMPTY"), None, "empty means unset");
        std::env::set_var("DISE_ENV_TEST_STR_BLANK", "   ");
        assert_eq!(env_string("DISE_ENV_TEST_STR_BLANK"), None, "blank means unset");
    }

    #[test]
    fn flag_case_is_not_guessed() {
        // `TRUE`/`ON` are rejected rather than guessed: the accepted
        // spellings are part of the documented contract, and guessing
        // case invites guessing further.
        std::env::set_var("DISE_ENV_TEST_FLAG_CASE", "TRUE");
        assert!(catch_unwind(|| env_flag("DISE_ENV_TEST_FLAG_CASE", false)).is_err());
    }
}
