//! An iWatcher-style *programmatic* monitoring interface (§6 of the
//! paper: "the same techniques we describe can also efficiently
//! implement other debugging interfaces: … programmatic ones like
//! iWatcher").
//!
//! The application (or a testing harness) registers pairs of interesting
//! memory regions and **callback functions that live in the
//! application's own text segment**; whenever a store touches a
//! registered region, the callback runs — without any operating-system
//! or debugger-process involvement. Here the mechanism is pure DISE:
//!
//! * every store is expanded with a range check per registered region
//!   (the same sequences as the RANGE watchpoint productions);
//! * on a match, a `d_ccall` transfers to the registered callback, which
//!   reads the faulting address from DISE register `dr1` via `d_mfr` and
//!   returns with `d_ret`;
//! * unlike iWatcher's bespoke range-table hardware, the tables here are
//!   "in effect lightweight software, i.e. injected instructions".
//!
//! Callbacks observe the *post-store* memory state, mirroring the
//! watchpoint handler's position after `T.INST`.

use dise_cpu::{CpuConfig, Executor, Machine, RunStats};
use dise_engine::{Pattern, Production, TOperand, TReg, TemplateInst};
use dise_isa::{AluOp, Cond, OpClass, Reg};

use crate::session::DebugError;
use crate::Application;

/// A registered watch: a byte region and the application-resident
/// callback invoked on stores into it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MonitoredRegion {
    /// First watched byte.
    pub base: u64,
    /// Region length in bytes.
    pub len: u64,
    /// Address of the callback function (must end in `d_ret` and treat
    /// all registers as callee-saved).
    pub callback: u64,
}

/// The programmatic monitor: owns the machine with the monitoring
/// productions installed.
pub struct Monitor {
    machine: Machine,
}

impl Monitor {
    /// Load `app` and arm monitoring for the given regions.
    ///
    /// Each region consumes one production and two DISE registers
    /// (bounds), taken from `dr5` upward; at most three regions fit the
    /// register budget (iWatcher's hierarchy would spill to memory —
    /// register-resident checks are the fast path both there and here).
    ///
    /// # Errors
    ///
    /// Fails if more than three regions are registered or production
    /// installation exceeds engine capacity.
    pub fn new(
        app: &Application,
        regions: &[MonitoredRegion],
        cpu: CpuConfig,
    ) -> Result<Monitor, DebugError> {
        if regions.len() > 3 {
            return Err(DebugError::Unsupported {
                backend: "iwatcher",
                reason: format!(
                    "{} regions exceed the register-resident budget of 3",
                    regions.len()
                ),
            });
        }
        let prog = app.program()?;
        let mut machine = Machine::with_config(&prog, cpu);
        let exec = &mut machine.exec;

        // One production chains every region's check: several
        // productions with the same store pattern would shadow each
        // other under most-specific-wins arbitration.
        let t1 = Reg::dise(1);
        let t2 = Reg::dise(2);
        let mut seq = vec![
            TemplateInst::Trigger,
            TemplateInst::Lda { rd: TReg::Lit(t1), base: TReg::Rs1, disp: dise_engine::TDisp::Imm },
        ];
        for (i, r) in regions.iter().enumerate() {
            let lo = Reg::dise(5 + 2 * i as u8);
            let len = Reg::dise(6 + 2 * i as u8);
            let target = Reg::dise(12 + i as u8);
            exec.set_reg(lo, r.base);
            exec.set_reg(len, r.len);
            exec.set_reg(target, r.callback);
            seq.push(TemplateInst::Alu {
                op: AluOp::Sub,
                rd: TReg::Lit(t2),
                ra: TReg::Lit(t1),
                rb: TOperand::Reg(TReg::Lit(lo)),
            });
            seq.push(TemplateInst::Alu {
                op: AluOp::CmpUlt,
                rd: TReg::Lit(t2),
                ra: TReg::Lit(t2),
                rb: TOperand::Reg(TReg::Lit(len)),
            });
            seq.push(TemplateInst::Fixed(dise_isa::Instr::DCCall {
                cond: Cond::Ne,
                rs: t2,
                target,
            }));
        }
        exec.engine_mut()
            .install(Production::new("monitor", Pattern::opclass(OpClass::Store), seq))
            .map_err(DebugError::Engine)?;
        Ok(Monitor { machine })
    }

    /// Run the monitored application to completion.
    pub fn run(&mut self) -> RunStats {
        self.machine.run()
    }

    /// The machine, for inspecting state the callbacks produced.
    pub fn executor(&self) -> &Executor {
        &self.machine.exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_asm::{parse_asm, Layout};

    /// Application with a monitored buffer and a callback that counts
    /// writes into it (the count lives in `hits`).
    fn app() -> Application {
        Application::new(
            parse_asm(
                "start:  la r1, buf
                         la r2, elsewhere
                         lda r3, 10(zero)
                 loop:   stq r3, 0(r2)      # unmonitored
                         and r3, 3, r4
                         s8addq r4, r1, r4
                         stq r3, 0(r4)      # monitored: buf[r3 % 4]
                         subq r3, 1, r3
                         bgt r3, loop
                         halt
                 # --- the registered callback: count invocations -------
                 monitor_fn:
                         stq r5, -8(sp)
                         stq r6, -16(sp)
                         la r5, hits
                         ldq r6, 0(r5)
                         addq r6, 1, r6
                         stq r6, 0(r5)
                         ldq r6, -16(sp)
                         ldq r5, -8(sp)
                         d_ret
                 .data
                 buf:        .space 32
                 elsewhere:  .quad 0
                 hits:       .quad 0",
            )
            .unwrap(),
            Layout::default(),
        )
    }

    #[test]
    fn callback_runs_on_every_monitored_store() {
        let a = app();
        let prog = a.program().unwrap();
        let region = MonitoredRegion {
            base: prog.symbol("buf").unwrap(),
            len: 32,
            callback: prog.symbol("monitor_fn").unwrap(),
        };
        let mut mon = Monitor::new(&a, &[region], CpuConfig::default()).unwrap();
        mon.run();
        let hits = prog.symbol("hits").unwrap();
        assert_eq!(mon.executor().mem().read_u(hits, 8), 10, "one callback per monitored store");
    }

    #[test]
    fn unmonitored_stores_do_not_call_back() {
        let a = app();
        let prog = a.program().unwrap();
        // Monitor `elsewhere` instead: also 10 stores.
        let region = MonitoredRegion {
            base: prog.symbol("elsewhere").unwrap(),
            len: 8,
            callback: prog.symbol("monitor_fn").unwrap(),
        };
        let mut mon = Monitor::new(&a, &[region], CpuConfig::default()).unwrap();
        mon.run();
        let hits = prog.symbol("hits").unwrap();
        assert_eq!(mon.executor().mem().read_u(hits, 8), 10);
    }

    #[test]
    fn two_regions_call_independent_callbacks() {
        let a = app();
        let prog = a.program().unwrap();
        let cb = prog.symbol("monitor_fn").unwrap();
        let regions = [
            MonitoredRegion { base: prog.symbol("buf").unwrap(), len: 32, callback: cb },
            MonitoredRegion { base: prog.symbol("elsewhere").unwrap(), len: 8, callback: cb },
        ];
        let mut mon = Monitor::new(&a, &regions, CpuConfig::default()).unwrap();
        mon.run();
        let hits = prog.symbol("hits").unwrap();
        assert_eq!(mon.executor().mem().read_u(hits, 8), 20, "both regions trigger the callback");
    }

    #[test]
    fn region_budget_enforced() {
        let a = app();
        let r = MonitoredRegion { base: 0, len: 8, callback: 0 };
        assert!(matches!(
            Monitor::new(&a, &[r; 4], CpuConfig::default()),
            Err(DebugError::Unsupported { .. })
        ));
    }

    #[test]
    fn monitoring_overhead_is_bandwidth_only() {
        let a = app();
        let prog = a.program().unwrap();
        let base = {
            let mut m = Machine::with_config(&prog, CpuConfig::default());
            m.run()
        };
        let region = MonitoredRegion {
            base: prog.symbol("buf").unwrap(),
            len: 32,
            callback: prog.symbol("monitor_fn").unwrap(),
        };
        let mut mon = Monitor::new(&a, &[region], CpuConfig::default()).unwrap();
        let stats = mon.run();
        // No 100K-cycle debugger transitions anywhere: the callback runs
        // in-application.
        assert!(stats.debugger_stalls == 0);
        assert!(
            stats.cycles < base.cycles * 6,
            "monitoring cost is expansion + calls, not context switches: \
             {} vs {}",
            stats.cycles,
            base.cycles
        );
    }
}
