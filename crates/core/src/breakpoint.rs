//! Control breakpoints (§4.1 of the paper) — conditional and
//! unconditional — over three implementations:
//!
//! * [`BreakpointBackend::TrapPatch`] — the standard static
//!   binary-transformation technique \[Rosenberg\]: the breakpoint
//!   instruction is temporarily replaced with `trap`; resuming requires
//!   the three-step *restore original / single-step / re-install trap*
//!   dance, which this implementation performs literally.
//! * [`BreakpointBackend::DiseCodeword`] — the paper's first DISE way:
//!   the instruction is replaced with a **DISE codeword** whose
//!   production expands to a trap followed by the original instruction,
//!   so no restart dance is needed.
//! * [`BreakpointBackend::DisePcPattern`] — the paper's second way,
//!   paralleling hardware breakpoint registers: a **PC pattern** matches
//!   the unmodified instruction and prepends the trap; the application
//!   is not modified at all.
//!
//! Conditional breakpoints attach a predicate over a program variable;
//! for the DISE implementations the predicate is compiled directly into
//! the replacement sequence (§4.3: "it often makes sense to compile the
//! condition into the replacement sequence directly"), so a false
//! predicate never leaves the application. The trap-patching
//! implementation must take a debugger transition to evaluate it —
//! the spurious predicate transitions of §2.

use dise_cpu::{CpuConfig, Event, Executor, RunStats, Timing};
use dise_engine::{Pattern, Production, TOperand, TReg, TemplateInst};
use dise_isa::{encode, AluOp, Cond, Instr, Reg, Width};

use crate::session::DebugError;
use crate::{Application, Transition, TransitionStats};

/// How breakpoints are implemented.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BreakpointBackend {
    /// Replace the instruction with `trap`; restore/step/re-install to
    /// resume.
    TrapPatch,
    /// Replace the instruction with a DISE codeword; the production
    /// supplies trap + original.
    DiseCodeword,
    /// Match the unmodified instruction's PC with a DISE pattern.
    DisePcPattern,
}

/// A control breakpoint at `pc`, optionally conditional on
/// `variable == value`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Breakpoint {
    /// The broken instruction's address.
    pub pc: u64,
    /// Optional predicate: `(variable address, required value)`; the
    /// user is invoked only when the quad at the address equals the
    /// value.
    pub condition: Option<(u64, u64)>,
}

impl Breakpoint {
    /// An unconditional breakpoint.
    pub fn new(pc: u64) -> Breakpoint {
        Breakpoint { pc, condition: None }
    }

    /// A conditional breakpoint on `variable == value`.
    pub fn conditional(pc: u64, variable: u64, value: u64) -> Breakpoint {
        Breakpoint { pc, condition: Some((variable, value)) }
    }
}

/// Results of a breakpoint session.
#[derive(Clone, Debug)]
pub struct BreakpointReport {
    /// Machine statistics (cycles include debugger stalls).
    pub run: RunStats,
    /// Transition counts: `user` are breakpoint hits delivered to the
    /// user; `spurious_predicate` are hits whose condition failed.
    pub transitions: TransitionStats,
}

impl BreakpointReport {
    /// Execution time normalised to a baseline.
    pub fn overhead_vs(&self, baseline: &RunStats) -> f64 {
        self.run.cycles as f64 / baseline.cycles.max(1) as f64
    }
}

/// A breakpoint debugging session.
pub struct BreakpointSession {
    exec: Executor,
    timing: Timing,
    backend: BreakpointBackend,
    breakpoints: Vec<(Breakpoint, Instr)>,
    cost: u64,
}

impl BreakpointSession {
    /// Establish the session: validate the breakpoints, transform the
    /// image or install productions per the chosen backend.
    ///
    /// # Errors
    ///
    /// Fails when a breakpoint PC holds no decodable instruction or
    /// production installation exceeds engine capacity.
    pub fn new(
        app: &Application,
        breakpoints: Vec<Breakpoint>,
        backend: BreakpointBackend,
        cpu: CpuConfig,
    ) -> Result<BreakpointSession, DebugError> {
        let prog = app.program()?;
        let mut with_originals = Vec::with_capacity(breakpoints.len());
        for bp in &breakpoints {
            let original = prog.decode_at(bp.pc).ok_or_else(|| DebugError::Unsupported {
                backend: "breakpoint",
                reason: format!("no instruction at {:#x}", bp.pc),
            })?;
            with_originals.push((*bp, original));
        }

        let mut exec = Executor::from_program(&prog, cpu);
        match backend {
            BreakpointBackend::TrapPatch => {
                // Static transformation: plant traps.
                for (bp, _) in &with_originals {
                    exec.patch_code(bp.pc, encode(&Instr::Trap));
                }
            }
            BreakpointBackend::DiseCodeword => {
                for (i, (bp, original)) in with_originals.iter().enumerate() {
                    let idx = i as u16;
                    exec.patch_code(bp.pc, encode(&Instr::Codeword(idx)));
                    let seq = breakpoint_sequence(i, bp, *original, &mut exec);
                    exec.engine_mut()
                        .install(Production::new(
                            &format!("bp-codeword-{i}"),
                            Pattern::codeword(idx),
                            seq,
                        ))
                        .map_err(DebugError::Engine)?;
                }
            }
            BreakpointBackend::DisePcPattern => {
                for (i, (bp, original)) in with_originals.iter().enumerate() {
                    // The trigger is the unmodified instruction; the
                    // production re-emits it via `Trigger`.
                    let mut seq = breakpoint_sequence(i, bp, *original, &mut exec);
                    *seq.last_mut().expect("sequence nonempty") = TemplateInst::Trigger;
                    exec.engine_mut()
                        .install(Production::new(&format!("bp-pc-{i}"), Pattern::at_pc(bp.pc), seq))
                        .map_err(DebugError::Engine)?;
                }
            }
        }

        Ok(BreakpointSession {
            exec,
            timing: Timing::new(cpu),
            backend,
            breakpoints: with_originals,
            cost: cpu.debugger_transition_cost,
        })
    }

    /// Run to completion, also returning the final machine state.
    pub fn run_with_state(mut self) -> (BreakpointReport, Executor) {
        let report = self.drive();
        (report, self.exec)
    }

    /// Run to completion.
    pub fn run(mut self) -> BreakpointReport {
        self.drive()
    }

    fn drive(&mut self) -> BreakpointReport {
        let mut stats = TransitionStats::default();
        while !self.exec.is_halted() {
            let e = self.exec.step();
            self.timing.consume(&e);
            if !matches!(e.event, Some(Event::Trap)) {
                continue;
            }
            let hit = self.breakpoints.iter().find(|(bp, _)| bp.pc == e.pc).copied();
            let Some((bp, original)) = hit else { continue };
            match self.backend {
                BreakpointBackend::TrapPatch => {
                    // The debugger evaluates the condition.
                    let pred_ok = match bp.condition {
                        None => true,
                        Some((var, val)) => self.exec.mem().read_u(var, 8) == val,
                    };
                    if pred_ok {
                        stats.count(Transition::User); // masked
                    } else {
                        stats.count(Transition::SpuriousPredicate);
                        self.timing.debugger_stall(self.cost);
                    }
                    // Restore original / single-step / re-install — the
                    // paper's three-step restart, performed literally.
                    self.exec.patch_code(bp.pc, encode(&original));
                    self.exec.set_pc(bp.pc);
                    let orig = self.exec.step();
                    self.timing.consume(&orig);
                    self.exec.patch_code(bp.pc, encode(&Instr::Trap));
                }
                BreakpointBackend::DiseCodeword | BreakpointBackend::DisePcPattern => {
                    // The replacement sequence already evaluated any
                    // condition: every trap is a user transition, and the
                    // original instruction follows within the expansion.
                    stats.count(Transition::User);
                }
            }
        }
        BreakpointReport { run: self.timing.finish(), transitions: stats }
    }
}

/// Build the replacement sequence for a DISE breakpoint: condition
/// evaluation (if any), trap, then the original instruction (replaced by
/// `Trigger` for PC-pattern productions). Loads the condition operands
/// into DISE registers `dr5 + 2i` / `dr6 + 2i`.
fn breakpoint_sequence(
    index: usize,
    bp: &Breakpoint,
    original: Instr,
    exec: &mut Executor,
) -> Vec<TemplateInst> {
    let mut seq = Vec::new();
    match bp.condition {
        None => seq.push(TemplateInst::Fixed(Instr::Trap)),
        Some((var, val)) => {
            // One address register and one constant register per
            // breakpoint (§4.3: "one or two dedicated DISE registers are
            // used as temporaries").
            let addr_reg = Reg::dise(4 + (2 * index as u8) % 10);
            let val_reg = Reg::dise(5 + (2 * index as u8) % 10);
            exec.set_reg(addr_reg, var);
            exec.set_reg(val_reg, val);
            seq.push(TemplateInst::Load {
                width: Width::Q,
                rd: TReg::Lit(Reg::dise(1)),
                base: TReg::Lit(addr_reg),
                disp: dise_engine::TDisp::Lit(0),
            });
            seq.push(TemplateInst::Alu {
                op: AluOp::CmpEq,
                rd: TReg::Lit(Reg::dise(2)),
                ra: TReg::Lit(Reg::dise(1)),
                rb: TOperand::Reg(TReg::Lit(val_reg)),
            });
            seq.push(TemplateInst::Fixed(Instr::CTrap { cond: Cond::Ne, rs: Reg::dise(2) }));
        }
    }
    seq.push(TemplateInst::Fixed(original));
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Application;
    use dise_asm::{parse_asm, Layout};

    fn app() -> Application {
        Application::new(
            parse_asm(
                "start:  la r1, v
                         lda r2, 20(zero)
                 loop:   ldq r3, 0(r1)
                         addq r3, 1, r3
                 bp_here:stq r3, 0(r1)
                         subq r2, 1, r2
                         bgt r2, loop
                         halt
                 .data
                 v: .quad 0",
            )
            .unwrap(),
            Layout::default(),
        )
    }

    fn bp_pc(a: &Application) -> u64 {
        a.program().unwrap().symbol("bp_here").unwrap()
    }

    #[test]
    fn unconditional_breakpoint_hits_every_pass() {
        let a = app();
        let pc = bp_pc(&a);
        for backend in [
            BreakpointBackend::TrapPatch,
            BreakpointBackend::DiseCodeword,
            BreakpointBackend::DisePcPattern,
        ] {
            let r = BreakpointSession::new(
                &a,
                vec![Breakpoint::new(pc)],
                backend,
                CpuConfig::default(),
            )
            .unwrap()
            .run();
            assert_eq!(r.transitions.user, 20, "{backend:?}");
            assert_eq!(r.transitions.spurious_total(), 0, "{backend:?}");
        }
    }

    #[test]
    fn displaced_instruction_still_executes() {
        // The store under the breakpoint must still happen (v reaches 20)
        // for every implementation: breakpoints must not perturb the
        // application.
        let a = app();
        let pc = bp_pc(&a);
        let v = a.program().unwrap().symbol("v").unwrap();
        for backend in [
            BreakpointBackend::TrapPatch,
            BreakpointBackend::DiseCodeword,
            BreakpointBackend::DisePcPattern,
        ] {
            let s = BreakpointSession::new(
                &a,
                vec![Breakpoint::new(pc)],
                backend,
                CpuConfig::default(),
            )
            .unwrap();
            let (report, exec) = s.run_with_state();
            assert_eq!(report.transitions.user, 20, "{backend:?}");
            assert_eq!(exec.mem().read_u(v, 8), 20, "{backend:?}");
        }
    }

    #[test]
    fn conditional_breakpoint_taxonomy() {
        let a = app();
        let pc = bp_pc(&a);
        let v = a.program().unwrap().symbol("v").unwrap();
        // Condition: v == 10 — true on exactly one of the 20 passes
        // (checked before the store, when v counts 0..19).
        let bp = Breakpoint::conditional(pc, v, 10);

        // Trap patching transitions on every pass; 19 are spurious.
        let tp = BreakpointSession::new(
            &a,
            vec![bp],
            BreakpointBackend::TrapPatch,
            CpuConfig::default(),
        )
        .unwrap()
        .run();
        assert_eq!(tp.transitions.user, 1);
        assert_eq!(tp.transitions.spurious_predicate, 19);
        assert!(tp.run.cycles > 19 * 100_000);

        // DISE evaluates the predicate in the replacement sequence:
        // exactly one (masked) transition, no stalls.
        for backend in [BreakpointBackend::DiseCodeword, BreakpointBackend::DisePcPattern] {
            let r =
                BreakpointSession::new(&a, vec![bp], backend, CpuConfig::default()).unwrap().run();
            assert_eq!(r.transitions.user, 1, "{backend:?}");
            assert_eq!(r.transitions.spurious_total(), 0, "{backend:?}");
            assert!(r.run.cycles < tp.run.cycles / 10, "{backend:?}");
        }
    }

    #[test]
    fn multiple_breakpoints_via_codewords() {
        let a = app();
        let prog = a.program().unwrap();
        let pc1 = prog.symbol("bp_here").unwrap();
        let pc2 = prog.symbol("loop").unwrap();
        let r = BreakpointSession::new(
            &a,
            vec![Breakpoint::new(pc1), Breakpoint::new(pc2)],
            BreakpointBackend::DiseCodeword,
            CpuConfig::default(),
        )
        .unwrap()
        .run();
        assert_eq!(r.transitions.user, 40);
    }
}
