//! The DISE implementation design space evaluated in §5.4.

/// How the replacement sequence decides whether the debugger must act
/// (the three columns of Fig. 7).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckKind {
    /// *Match-Address / Evaluate-Expression* (Fig. 2c/d, the paper's
    /// default): the replacement sequence compares the store's
    /// reconstructed address against the watched address(es) and calls
    /// the debugger-generated function only on a match. Cheap common
    /// case (ALU ops only), general (multiple/indirect/range
    /// watchpoints, conditionals).
    MatchAddressCall,
    /// *Evaluate-Expression / –* (Fig. 2a/b): the replacement sequence
    /// loads the watched expression's value after every store and traps
    /// on change. No function call, but a **load per store** — load-port
    /// contention. Single scalar watchpoints only.
    EvaluateInline,
    /// *Match-Address-Value / –*: compares the store's address *and* its
    /// value against the watched address and previous value inline —
    /// neither load nor call. Applicable only when the watched datum is
    /// scalar and store-width matched.
    MatchAddressValue,
}

/// How a store address is tested against *multiple* watched addresses
/// (§4 "Watching multiple addresses", evaluated in Fig. 6).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MultiMatch {
    /// Serial comparison against each watched address: addresses live in
    /// DISE registers while they last, then in the debugger's data
    /// region. Replacement length grows linearly with watchpoints.
    Serial,
    /// Hash the store address into a 2 KB byte array; 1 ⇒ probable
    /// match ⇒ call the handler. Constant-length replacement; false
    /// positives cost a (cheap) function call, never correctness.
    BloomByte,
    /// Hash quad addresses to *bits* (8× effective capacity, fewer false
    /// positives) at the price of two extra bit-manipulation operations.
    BloomBit,
}

/// Full configuration of the DISE watchpoint implementation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DiseStrategy {
    /// Replacement-sequence organisation.
    pub check: CheckKind,
    /// Whether the DISE ISA provides `ctrap`/`d_ccall` (Optimization
    /// I/III). Without them the same logic uses DISE branches +
    /// unconditional trap/call, flushing the pipeline in the common case
    /// (the bottom group of Fig. 7).
    pub conditional_ops: bool,
    /// Multi-watchpoint matching (only meaningful for
    /// [`CheckKind::MatchAddressCall`]).
    pub multi_match: MultiMatch,
    /// Prepend the Fig. 2f store-range check protecting the debugger's
    /// embedded data (Fig. 9).
    pub protect_debugger: bool,
    /// Run DISE-called function bodies on a second thread context,
    /// eliminating the two flushes per call (Fig. 8).
    pub multithreaded_calls: bool,
    /// Install a more-specific pass-through production for stack-pointer
    /// stores (§4 "Pattern matching optimizations") — only sound when no
    /// watched data lives on the stack.
    pub specialize_stack_stores: bool,
}

impl Default for DiseStrategy {
    /// The paper's default: match-address with conditional call.
    fn default() -> DiseStrategy {
        DiseStrategy {
            check: CheckKind::MatchAddressCall,
            conditional_ops: true,
            multi_match: MultiMatch::Serial,
            protect_debugger: false,
            multithreaded_calls: false,
            specialize_stack_stores: false,
        }
    }
}

impl DiseStrategy {
    /// Fig. 2a/b organisation.
    pub fn evaluate_inline(conditional_ops: bool) -> DiseStrategy {
        DiseStrategy {
            check: CheckKind::EvaluateInline,
            conditional_ops,
            ..DiseStrategy::default()
        }
    }

    /// Match-Address-Value organisation.
    pub fn match_address_value(conditional_ops: bool) -> DiseStrategy {
        DiseStrategy {
            check: CheckKind::MatchAddressValue,
            conditional_ops,
            ..DiseStrategy::default()
        }
    }

    /// The default organisation with explicit `ctrap`/`d_ccall`
    /// availability.
    pub fn match_address_call(conditional_ops: bool) -> DiseStrategy {
        DiseStrategy { conditional_ops, ..DiseStrategy::default() }
    }

    /// Bloom-filter multi-matching.
    pub fn bloom(bitwise: bool) -> DiseStrategy {
        DiseStrategy {
            multi_match: if bitwise { MultiMatch::BloomBit } else { MultiMatch::BloomByte },
            ..DiseStrategy::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_papers_default() {
        let s = DiseStrategy::default();
        assert_eq!(s.check, CheckKind::MatchAddressCall);
        assert!(s.conditional_ops);
        assert_eq!(s.multi_match, MultiMatch::Serial);
        assert!(!s.protect_debugger);
    }

    #[test]
    fn constructors_set_fields() {
        assert_eq!(DiseStrategy::evaluate_inline(false).check, CheckKind::EvaluateInline);
        assert!(!DiseStrategy::evaluate_inline(false).conditional_ops);
        assert_eq!(DiseStrategy::bloom(true).multi_match, MultiMatch::BloomBit);
        assert_eq!(DiseStrategy::bloom(false).multi_match, MultiMatch::BloomByte);
    }
}
