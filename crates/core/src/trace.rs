//! Persistent session traces: record one functional pass of the
//! unmodified application, replay it forever.
//!
//! The in-memory [`crate::ObserverBatch`] already shares one functional
//! pass across watchpoint sets × observing backends × timing
//! configurations *within* a process. This module extends the economy
//! *across* processes and runs: [`record_session`] persists the shared
//! `Exec` stream (delta + run-length compressed, CRC-protected — see
//! `dise-trace`), and [`replay_from_trace`] runs a whole observer batch
//! from the stored stream with **zero** functional passes and zero
//! image loads — pinned by the [`trace_records`] / [`trace_replays`]
//! counters next to the existing
//! [`functional_passes`](crate::functional_passes) economy counters.
//!
//! Replay soundness rests on two facts the conformance suite enforces:
//! observing backends read only the `Exec` record and the memory image
//! (never machine internals), and every memory mutation of the
//! unmodified application appears as a store `MemOp` in its own record
//! — so a shadow memory updated record-by-record shows each observer
//! exactly the bytes the live machine would have.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use dise_cpu::{program_fingerprint, CpuConfig, Executor, TraceStats, TraceWriter};

use crate::session::{DebugError, SessionReport, FUNCTIONAL_PASSES, IMAGE_LOADS};
use crate::{Application, BackendKind, SessionTask, Watchpoint};

/// How many standalone trace recordings this process has performed
/// ([`record_session`] and every recording observer pass).
pub(crate) static TRACE_RECORDS: AtomicU64 = AtomicU64::new(0);

/// How many stored-trace replays have substituted for a functional
/// pass in this process.
pub(crate) static TRACE_REPLAYS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of trace recordings — the "record once" half of
/// the persistent-trace economy.
pub fn trace_records() -> u64 {
    TRACE_RECORDS.load(Ordering::Relaxed)
}

/// Process-wide count of stored-trace replays, each of which replaced
/// one functional pass (and one image load) with a file read.
pub fn trace_replays() -> u64 {
    TRACE_REPLAYS.load(Ordering::Relaxed)
}

/// The kernel fingerprint a trace of `app` carries: everything that
/// determines its functional `Exec` stream. Replays are only admitted
/// against a matching fingerprint.
///
/// # Errors
///
/// [`DebugError::Asm`] when the application fails to assemble.
pub fn app_fingerprint(app: &Application) -> Result<u64, DebugError> {
    Ok(program_fingerprint(&app.program()?))
}

/// Record `app`'s full functional stream to `trace` — one honest,
/// counted functional pass of the unmodified application, with no
/// debugger attached. The file appears atomically on success.
///
/// # Errors
///
/// [`DebugError::Asm`] when `app` fails to assemble;
/// [`DebugError::Trace`] when the trace cannot be persisted.
pub fn record_session(app: &Application, trace: &Path) -> Result<TraceStats, DebugError> {
    let prog = app.program()?;
    let mut writer = TraceWriter::create(trace, program_fingerprint(&prog))?;
    let mut exec = Executor::from_program(&prog, CpuConfig::default());
    IMAGE_LOADS.fetch_add(1, Ordering::Relaxed);
    FUNCTIONAL_PASSES.fetch_add(1, Ordering::Relaxed);
    TRACE_RECORDS.fetch_add(1, Ordering::Relaxed);
    while !exec.is_halted() {
        writer.record(&exec.step());
    }
    Ok(writer.finish()?)
}

/// Run an observer batch entirely from the stored trace at `trace`:
/// the moral equivalent of [`crate::ObserverBatch::run`] with zero
/// functional passes and zero image loads, bit-identical to the live
/// run. See [`crate::ObserverBatch::run_from_trace`] for the builder
/// form.
///
/// # Errors
///
/// The outer `Err` is scenario-wide, exactly as in
/// [`crate::ObserverBatch::run`], plus [`DebugError::Trace`] when the
/// trace is stale, corrupt, truncated, or unreadable. Per-member
/// admission failures land in their own slots.
///
/// # Panics
///
/// Panics when a member backend is perturbing — perturbing backends
/// change the functional stream and can never run from a shared trace.
pub fn replay_from_trace(
    app: &Application,
    members: Vec<(BackendKind, Vec<Watchpoint>, Vec<CpuConfig>)>,
    trace: &Path,
) -> Result<Vec<Result<Vec<SessionReport>, DebugError>>, DebugError> {
    SessionTask::observer_replay(app, members, trace).run_to_completion().into_observe()
}
