//! # dise-debug — the paper's contribution: low-overhead interactive
//! debugging via DISE
//!
//! This crate implements the breakpoint/watchpoint interface of an
//! interactive debugger over six interchangeable backends — the paper's
//! five, plus a pure-observation DISE organisation — so that their
//! overheads can be compared exactly as in §5 of *Low-Overhead
//! Interactive Debugging via Dynamic Instrumentation with DISE*
//! (HPCA 2005):
//!
//! | backend | mechanism | spurious transitions |
//! |---------|-----------|----------------------|
//! | [`BackendKind::SingleStep`] | transition at every source statement | address, value, predicate |
//! | [`BackendKind::VirtualMemory`] | `mprotect` the watched pages | address (page sharing), value, predicate |
//! | [`BackendKind::HardwareRegisters`] | ≤4 quad-granularity watchpoint registers (VM fallback beyond) | value (silent stores), predicate, partial-quad address |
//! | [`BackendKind::BinaryRewrite`] | statically inline the check at every store | none — cost is code bloat |
//! | [`BackendKind::Dise`] | dynamically expand every store via DISE productions | none — cost is decode bandwidth |
//! | [`BackendKind::DiseComparators`] | byte-exact DISE range comparators, no production injection | value (silent stores), predicate — never address |
//!
//! The DISE backend generates real [`dise_engine::Production`]s (all
//! variants of the paper's Fig. 2), appends a real debugger-generated
//! expression-evaluation function and data region to the application
//! image (Fig. 2e), and supports the paper's complete design space:
//! conditional trap/call availability (Fig. 7), serial vs. Bloom-filter
//! multi-watchpoint matching (Fig. 6), multithreaded DISE calls
//! (Fig. 8), and debugger-structure protection (Fig. 2f / Fig. 9).
//!
//! Backends that *observe* without perturbing execution
//! ([`BackendKind::observation_only`]: virtual memory, hardware
//! registers, and the DISE comparator organisation) can share **one
//! functional pass** of the unmodified application per workload across
//! any number of watchpoint sets, backends and timing configurations
//! via [`ObserverBatch`] — bit-identical to their private replays,
//! enforced by the cross-backend differential conformance suite
//! (`tests/backend_conformance.rs`).
//!
//! ```
//! use dise_asm::{parse_asm, Layout};
//! use dise_debug::{Application, BackendKind, Session, WatchExpr, Watchpoint};
//! use dise_isa::Width;
//!
//! let app = Application::new(parse_asm("
//!     start:  la r1, x
//!             lda r2, 7(zero)
//!             .stmt
//!             stq r2, 0(r1)
//!             halt
//!     .data
//!     x: .quad 0
//! ").unwrap(), Layout::default());
//!
//! let x = app.program()?.symbol("x").unwrap();
//! let wp = Watchpoint::new(WatchExpr::Scalar { addr: x, width: Width::Q });
//! let report = Session::new(&app, vec![wp], BackendKind::dise_default())?.run();
//! assert_eq!(report.transitions.user, 1, "the store changed x");
//! assert_eq!(report.transitions.spurious_total(), 0, "DISE eliminates spurious transitions");
//! # Ok::<(), dise_debug::DebugError>(())
//! ```

mod app;
mod backend;
mod breakpoint;
mod iwatcher;
mod region;
mod sched;
mod session;
mod stats;
mod strategy;
mod task;
mod trace;
mod watch;

pub use app::Application;
pub use backend::BackendKind;
pub use breakpoint::{Breakpoint, BreakpointBackend, BreakpointReport, BreakpointSession};
pub use iwatcher::{Monitor, MonitoredRegion};
pub use region::DebugRegion;
pub use sched::{max_wait_slices, preemptions, slices_granted, SchedStats, Scheduler};
pub use session::{
    checkpoint_forks, functional_passes, image_loads, run_baseline, run_perturbing_group,
    run_session, run_session_batch, BaselineCache, DebugError, MachineCheckpoint, ObserverBatch,
    Session, SessionReport,
};
pub use stats::{Transition, TransitionStats};
pub use strategy::{CheckKind, DiseStrategy, MultiMatch};
pub use task::{
    fanout_chunks, fanout_chunks_scanned, fanout_chunks_skipped, SessionTask, Step, TaskOutput,
    TaskProgress,
};
pub use trace::{app_fingerprint, record_session, replay_from_trace, trace_records, trace_replays};
pub use watch::{Condition, WatchExpr, WatchFilter, WatchState, WatchValue, Watchpoint};

// Callers matching on `DebugError::Trace` need the nested error type.
pub use dise_trace::TraceError;
