//! A cooperative session multiplexer: N worker threads draining one
//! queue of [`SessionTask`] continuations, each granted bounded slices
//! of virtual time (dynamic instructions) instead of a whole OS thread.
//!
//! The design follows r2vm's event-driven simulation core and
//! renacer's decoupled producer/consumer split (see PAPERS.md): the
//! unit of scheduling is a *resumable continuation*, not a thread, so
//! thousands of debugging sessions can be concurrently in flight on a
//! single core. Two queues implement the policy:
//!
//! * an **admission deque** (FIFO) for tasks that have never run or
//!   were just unblocked — new sessions reach their first slice in
//!   arrival order, which is also what pushes the in-flight high-water
//!   mark to the full queue depth;
//! * a **priority heap keyed by virtual progress** (instructions
//!   retired, ties broken by spawn id) for yielded tasks — the
//!   least-progressed session runs next, so a million-instruction
//!   session cannot starve a thousand-instruction one no matter how
//!   the wall-clock interleaves.
//!
//! With equal slice budgets this is deficit-round-robin-like: between
//! two consecutive slices of any runnable session, every other runnable
//! session is granted at most a bounded number of slices, so
//! `max_wait_slices` stays O(number of sessions) (the fairness pin in
//! `dise-bench/tests/scheduler.rs` enforces `≤ 2 × tasks`).
//!
//! Determinism: with one worker the grant order is a pure function of
//! the spawn order, budgets, and task behaviour — nothing reads clocks
//! or thread identity — and with any worker count each task still sees
//! the same slice sequence of *its own* execution, so results are
//! byte-identical across `workers × slice-budget` choices (the grid
//! determinism suite holds the whole bench harness to this).
//!
//! Fairness counters ([`slices_granted`], [`preemptions`],
//! [`max_wait_slices`]) are exposed both per-scheduler
//! ([`Scheduler::stats`]) and process-global, mirroring
//! [`crate::functional_passes`]-style instrumentation: wins are argued
//! with counters and determinism tests, not wall-clock.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use crate::task::{SessionTask, Step, TaskOutput};

/// Scheduler slices granted since process start. See [`slices_granted`].
static SLICES_GRANTED: AtomicU64 = AtomicU64::new(0);

/// Budget-boundary yields since process start. See [`preemptions`].
static PREEMPTIONS: AtomicU64 = AtomicU64::new(0);

/// Worst slice-wait observed since process start. See
/// [`max_wait_slices`].
static MAX_WAIT_SLICES: AtomicU64 = AtomicU64::new(0);

/// Total scheduler slices granted by this process — one per
/// [`SessionTask::poll`] a [`Scheduler`] worker performed. Like
/// [`crate::functional_passes`], compare deltas.
pub fn slices_granted() -> u64 {
    SLICES_GRANTED.load(Ordering::Relaxed)
}

/// Total preemptions by this process — slices that ended in
/// [`Step::Yielded`] because the budget ran out before the session
/// finished. Compare deltas.
pub fn preemptions() -> u64 {
    PREEMPTIONS.load(Ordering::Relaxed)
}

/// The worst wait any session has seen in this process: the maximum
/// number of slices granted to *other* sessions while one session sat
/// *runnable* in the queue (spawn→first grant, yield→next grant,
/// unblock→grant). Time checked out on a worker is not waiting — on a
/// single core the OS may sit on a worker thread arbitrarily long, and
/// that is not the scheduler's queue being unfair. The starvation
/// metric the fairness pin bounds.
pub fn max_wait_slices() -> u64 {
    MAX_WAIT_SLICES.load(Ordering::Relaxed)
}

/// Fairness and occupancy counters for one [`Scheduler`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Slices granted (total [`SessionTask::poll`] calls).
    pub slices_granted: u64,
    /// Slices that ended in a budget-boundary yield.
    pub preemptions: u64,
    /// Worst slices-granted-to-others wait of any session while it sat
    /// runnable in the queue (see [`max_wait_slices`]).
    pub max_wait_slices: u64,
    /// High-water mark of sessions started but not yet finished — the
    /// "concurrently in-flight" figure.
    pub max_in_flight: usize,
    /// Sessions run to completion.
    pub completed: usize,
}

struct Slot {
    /// The continuation; `None` while checked out by a worker or after
    /// completion.
    task: Option<SessionTask>,
    output: Option<TaskOutput>,
    /// Granted at least one slice (counts toward in-flight).
    started: bool,
    done: bool,
    /// Parked: runnable only after [`Scheduler::unblock`] (or its
    /// dependency completing).
    parked: bool,
    /// Value of `slice_no` when this task last became runnable (spawn,
    /// yield, unblock) — the wait-accounting anchor.
    enqueued_at: u64,
}

struct Inner {
    slots: Vec<Slot>,
    /// Per-task list of tasks gated on its completion
    /// ([`Scheduler::spawn_after`]).
    dependents: Vec<Vec<usize>>,
    /// Never-run or just-unblocked tasks, FIFO.
    admit: VecDeque<usize>,
    /// Yielded tasks, min-(progress, id) first.
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    /// Tasks currently checked out by workers.
    checked_out: usize,
    /// Spawned but not yet completed.
    outstanding: usize,
    /// Started but not yet completed.
    in_flight: usize,
    slice_no: u64,
    stats: SchedStats,
}

/// A cooperative scheduler over [`SessionTask`] continuations. See the
/// module docs for policy and guarantees.
pub struct Scheduler {
    slice: u64,
    inner: Mutex<Inner>,
    wake: Condvar,
}

impl Scheduler {
    /// A scheduler granting `slice` dynamic instructions per slice.
    ///
    /// # Panics
    ///
    /// Panics on a zero slice budget — a zero-instruction grant makes
    /// no progress and the drain could never terminate.
    pub fn new(slice: u64) -> Scheduler {
        assert!(slice > 0, "the slice budget must be at least one instruction");
        Scheduler {
            slice,
            inner: Mutex::new(Inner {
                slots: Vec::new(),
                dependents: Vec::new(),
                admit: VecDeque::new(),
                ready: BinaryHeap::new(),
                checked_out: 0,
                outstanding: 0,
                in_flight: 0,
                slice_no: 0,
                stats: SchedStats::default(),
            }),
            wake: Condvar::new(),
        }
    }

    /// The per-slice instruction budget.
    pub fn slice(&self) -> u64 {
        self.slice
    }

    /// Enqueue a task; returns its id (dense, in spawn order — the
    /// deterministic scatter-back key). A task spawned already gated
    /// ([`SessionTask::gated`]) parks until [`Scheduler::unblock`].
    pub fn spawn(&self, task: SessionTask) -> usize {
        let mut inner = self.lock();
        let id = inner.admit_slot(task);
        drop(inner);
        self.wake.notify_one();
        id
    }

    /// Enqueue a task that must not run until task `dep` has completed
    /// — the scheduler gates it and opens the gate when `dep` finishes
    /// (immediately, if it already has).
    ///
    /// # Panics
    ///
    /// Panics when `dep` is not a previously spawned id. Dependencies
    /// therefore always point backwards, which makes dependency cycles
    /// unrepresentable.
    pub fn spawn_after(&self, mut task: SessionTask, dep: usize) -> usize {
        let mut inner = self.lock();
        assert!(dep < inner.slots.len(), "spawn_after on unknown task id {dep}");
        if !inner.slots[dep].done {
            task.block(format!("waiting for session {dep}"));
        }
        let id = inner.admit_slot(task);
        if !inner.slots[id].parked {
            // dep already completed; runnable immediately
        } else {
            inner.dependents[dep].push(id);
        }
        drop(inner);
        self.wake.notify_one();
        id
    }

    /// Open the gate of a parked task and make it runnable.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn unblock(&self, id: usize) {
        let mut inner = self.lock();
        assert!(id < inner.slots.len(), "unblock on unknown task id {id}");
        if inner.slots[id].parked {
            if let Some(task) = inner.slots[id].task.as_mut() {
                task.unblock();
            }
            inner.slots[id].parked = false;
            let now = inner.slice_no;
            inner.slots[id].enqueued_at = now;
            inner.admit.push_back(id);
            drop(inner);
            self.wake.notify_all();
        }
    }

    /// Tasks spawned but not yet completed.
    pub fn outstanding(&self) -> usize {
        self.lock().outstanding
    }

    /// This scheduler's fairness and occupancy counters so far.
    pub fn stats(&self) -> SchedStats {
        self.lock().stats
    }

    /// Drain every outstanding task with `workers` threads (inline on
    /// the calling thread when `workers == 1` — the fully deterministic
    /// mode). Returns `(id, output)` pairs for every task completed
    /// since the last drain, in id (spawn) order.
    ///
    /// # Panics
    ///
    /// Panics when `workers == 0`, when a worker panics (propagated),
    /// or when the queue stalls — tasks remain but every one of them is
    /// parked with no runner left to unblock them (an unbreakable
    /// deadlock, e.g. a gate nothing ever opens).
    pub fn drain(&self, workers: usize) -> Vec<(usize, TaskOutput)> {
        self.drain_with(workers, |_, _| {})
    }

    /// [`Scheduler::drain`], streaming every completion through
    /// `on_complete(id, &output)` as it happens (called from worker
    /// threads, completion order — the deterministic record is the
    /// returned id-ordered vec).
    pub fn drain_with<F>(&self, workers: usize, on_complete: F) -> Vec<(usize, TaskOutput)>
    where
        F: Fn(usize, &TaskOutput) + Sync,
    {
        assert!(workers > 0, "drain needs at least one worker");
        if workers == 1 {
            self.worker(&on_complete);
        } else {
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| self.worker(&on_complete));
                }
            });
        }
        let mut inner = self.lock();
        let mut out = Vec::new();
        for (id, slot) in inner.slots.iter_mut().enumerate() {
            if let Some(output) = slot.output.take() {
                out.push((id, output));
            }
        }
        out
    }

    /// One worker: check a runnable task out, poll it for one slice
    /// outside the lock, apply the step, repeat until nothing is
    /// outstanding.
    fn worker<F>(&self, on_complete: &F)
    where
        F: Fn(usize, &TaskOutput) + Sync,
    {
        loop {
            let (id, mut task) = {
                let mut inner = self.lock();
                loop {
                    if inner.outstanding == 0 {
                        drop(inner);
                        self.wake.notify_all();
                        return;
                    }
                    if let Some(id) = inner.next_runnable() {
                        let task = inner.grant(id);
                        break (id, task);
                    }
                    if inner.checked_out == 0 {
                        let parked: Vec<usize> = inner
                            .slots
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| !s.done && s.parked)
                            .map(|(i, _)| i)
                            .collect();
                        panic!(
                            "scheduler stalled: {} session(s) outstanding but every one is \
                             parked with no runner to unblock it (ids {parked:?})",
                            inner.outstanding
                        );
                    }
                    inner = self.wake.wait(inner).expect("scheduler poisoned");
                }
            };
            let step = task.poll(self.slice);
            match step {
                Step::Yielded(progress) => {
                    let mut inner = self.lock();
                    inner.checked_out -= 1;
                    inner.stats.preemptions += 1;
                    PREEMPTIONS.fetch_add(1, Ordering::Relaxed);
                    inner.slots[id].task = Some(task);
                    inner.slots[id].enqueued_at = inner.slice_no;
                    inner.ready.push(Reverse((progress.instructions, id)));
                    drop(inner);
                    self.wake.notify_one();
                }
                Step::Blocked(_) => {
                    // The task was gated after being queued (or an
                    // external gate raced the grant); park it until
                    // someone unblocks it.
                    let mut inner = self.lock();
                    inner.checked_out -= 1;
                    inner.slots[id].task = Some(task);
                    inner.slots[id].parked = true;
                    drop(inner);
                    self.wake.notify_all();
                }
                Step::Done(output) => {
                    on_complete(id, &output);
                    let mut inner = self.lock();
                    inner.checked_out -= 1;
                    inner.complete(id, output);
                    drop(inner);
                    self.wake.notify_all();
                }
            }
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("scheduler poisoned")
    }
}

impl Inner {
    fn admit_slot(&mut self, task: SessionTask) -> usize {
        let id = self.slots.len();
        let parked = task.is_blocked();
        self.slots.push(Slot {
            task: Some(task),
            output: None,
            started: false,
            done: false,
            parked,
            enqueued_at: self.slice_no,
        });
        self.dependents.push(Vec::new());
        self.outstanding += 1;
        if !parked {
            self.admit.push_back(id);
        }
        id
    }

    /// Admission first (FIFO — new arrivals reach a first slice in
    /// order), then the least-progressed yielded task.
    fn next_runnable(&mut self) -> Option<usize> {
        if let Some(id) = self.admit.pop_front() {
            return Some(id);
        }
        self.ready.pop().map(|Reverse((_, id))| id)
    }

    /// Check `id` out to a worker and account the grant.
    fn grant(&mut self, id: usize) -> SessionTask {
        let waited = self.slice_no - self.slots[id].enqueued_at;
        self.stats.max_wait_slices = self.stats.max_wait_slices.max(waited);
        MAX_WAIT_SLICES.fetch_max(waited, Ordering::Relaxed);
        self.slice_no += 1;
        self.stats.slices_granted += 1;
        SLICES_GRANTED.fetch_add(1, Ordering::Relaxed);
        let slot = &mut self.slots[id];
        if !slot.started {
            slot.started = true;
            self.in_flight += 1;
            self.stats.max_in_flight = self.stats.max_in_flight.max(self.in_flight);
        }
        self.checked_out += 1;
        slot.task.take().expect("granted task is checked in")
    }

    fn complete(&mut self, id: usize, output: TaskOutput) {
        let slot = &mut self.slots[id];
        slot.done = true;
        slot.output = Some(output);
        self.outstanding -= 1;
        self.in_flight -= 1;
        self.stats.completed += 1;
        for dep in std::mem::take(&mut self.dependents[id]) {
            if self.slots[dep].parked {
                if let Some(task) = self.slots[dep].task.as_mut() {
                    task.unblock();
                }
                self.slots[dep].parked = false;
                self.slots[dep].enqueued_at = self.slice_no;
                self.admit.push_back(dep);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Application, BackendKind, WatchExpr, Watchpoint};
    use dise_asm::{parse_asm, Layout};
    use dise_cpu::CpuConfig;
    use dise_isa::Width;
    use std::sync::Mutex as StdMutex;

    fn app(iters: u32) -> Application {
        let src = format!(
            "start:  la r1, watched
                     lda r4, {iters}(zero)
             loop:   .stmt
                     stq r4, 0(r1)
                     subq r4, 1, r4
                     bgt r4, loop
                     halt
             .data
             watched: .quad 0
            "
        );
        Application::new(parse_asm(&src).unwrap(), Layout::default())
    }

    fn task(a: &Application) -> SessionTask {
        let addr = a.program().unwrap().symbol("watched").unwrap();
        let wp = Watchpoint::new(WatchExpr::Scalar { addr, width: Width::Q });
        SessionTask::session(a, vec![wp], BackendKind::VirtualMemory, CpuConfig::default())
    }

    /// Scheduled results equal direct runs, ids line up with spawn
    /// order, and every fairness counter moves.
    #[test]
    fn drains_to_the_same_reports_as_direct_runs() {
        let iters = [3u32, 17, 5, 29];
        let direct: Vec<_> = iters
            .iter()
            .map(|&i| task(&app(i)).run_to_completion().into_batch().unwrap())
            .collect();
        for workers in [1, 3] {
            let sched = Scheduler::new(8);
            for &i in &iters {
                sched.spawn(task(&app(i)));
            }
            let outs = sched.drain(workers);
            assert_eq!(outs.len(), iters.len());
            for ((id, out), want) in outs.into_iter().zip(&direct) {
                assert_eq!(&out.into_batch().unwrap(), want, "task {id}, {workers} worker(s)");
            }
            let stats = sched.stats();
            assert_eq!(stats.completed, iters.len());
            assert_eq!(stats.max_in_flight, iters.len(), "small slices keep all in flight");
            assert!(stats.slices_granted > iters.len() as u64, "sessions were actually sliced");
            assert!(stats.preemptions > 0);
            assert!(stats.max_wait_slices <= 2 * iters.len() as u64, "fairness bound: {stats:?}");
        }
    }

    /// Process-global counters mirror per-scheduler stats, deltas only.
    #[test]
    fn global_counters_advance_with_the_scheduler() {
        let (g0, p0, _) = (slices_granted(), preemptions(), max_wait_slices());
        let sched = Scheduler::new(32);
        sched.spawn(task(&app(11)));
        sched.spawn(task(&app(4)));
        sched.drain(1);
        let stats = sched.stats();
        assert!(slices_granted() - g0 >= stats.slices_granted);
        assert!(preemptions() - p0 >= stats.preemptions);
        assert!(max_wait_slices() >= stats.max_wait_slices);
    }

    /// spawn_after gates the dependent until its dependency completes.
    #[test]
    fn spawn_after_orders_completions() {
        let a = app(20);
        let sched = Scheduler::new(16);
        let first = sched.spawn(task(&a));
        let second = sched.spawn_after(task(&app(2)), first);
        let order = StdMutex::new(Vec::new());
        sched.drain_with(1, |id, _| order.lock().unwrap().push(id));
        assert_eq!(
            order.into_inner().unwrap(),
            vec![first, second],
            "the long dependency still completes before its short dependent starts"
        );
        // Spawning after an already-completed task runs immediately.
        let third = sched.spawn_after(task(&app(1)), second);
        let outs = sched.drain(1);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, third);
    }

    /// A gate nothing will ever open is a loud stall, not a hang.
    #[test]
    fn unopenable_gate_panics_loudly() {
        let sched = Scheduler::new(16);
        sched.spawn(task(&app(2)).gated("a gate nothing opens"));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sched.drain(1)))
            .expect_err("stall must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("scheduler stalled"), "{msg}");
    }

    /// Least-progress scheduling: a short session spawned behind a long
    /// one overtakes it and finishes first.
    #[test]
    fn short_sessions_are_not_starved_by_long_ones() {
        let sched = Scheduler::new(32);
        let long = sched.spawn(task(&app(300)));
        let short = sched.spawn(task(&app(2)));
        let order = StdMutex::new(Vec::new());
        sched.drain_with(1, |id, _| order.lock().unwrap().push(id));
        assert_eq!(order.into_inner().unwrap(), vec![short, long]);
    }
}
