//! Source-statement single-stepping (§2): the naive implementation that
//! transitions to the debugger at every statement.

use std::collections::HashSet;

use dise_asm::Program;
use dise_cpu::{Exec, Executor};

use crate::backend::{classify, BackendImpl};
use crate::session::DebugError;
use crate::{Application, Transition, TransitionStats, WatchState, Watchpoint};

#[derive(Clone, Debug, Default)]
pub(crate) struct SingleStep {
    stmt_pcs: HashSet<u64>,
}

impl BackendImpl for SingleStep {
    fn boxed_clone(&self) -> Box<dyn BackendImpl> {
        Box::new(self.clone())
    }

    fn build_program(
        &mut self,
        app: &Application,
        _wps: &[Watchpoint],
    ) -> Result<Program, DebugError> {
        let prog = app.program()?;
        self.stmt_pcs = prog.stmt_pcs.clone();
        if self.stmt_pcs.is_empty() {
            return Err(DebugError::Unsupported {
                backend: "single-step",
                reason: "application has no statement markers".to_string(),
            });
        }
        Ok(prog)
    }

    fn configure(&mut self, _exec: &mut Executor, _wps: &[Watchpoint]) -> Result<(), DebugError> {
        Ok(())
    }

    fn observe(
        &mut self,
        e: &Exec,
        exec: &mut Executor,
        watch: &mut WatchState,
        _stats: &mut TransitionStats,
    ) -> Option<Transition> {
        // The debugger regains control at each statement boundary and
        // re-evaluates every watched expression.
        if e.fetched && e.disepc == 0 && !e.in_dise_call && self.stmt_pcs.contains(&e.pc) {
            let (changed, pred_ok) = watch.reevaluate(exec.mem());
            // Single-stepping cannot tell whether watched data was
            // written; an unchanged value is a spurious address
            // transition in the paper's taxonomy.
            Some(classify(changed, pred_ok, changed))
        } else {
            None
        }
    }
}
