//! Virtual-memory watchpoints (§2, [Appel & Li]): remove write
//! permission from every page holding watched data; classify the
//! resulting faults.

use dise_asm::Program;
use dise_cpu::{Event, Exec, Executor};
use dise_mem::PAGE_SIZE;

use crate::backend::{classify, BackendImpl};
use crate::session::DebugError;
use crate::{Application, Transition, TransitionStats, WatchState, Watchpoint};

#[derive(Debug, Default)]
pub(crate) struct VirtualMemory;

/// The pages covering every statically addressable watched byte.
pub(crate) fn watched_pages(wps: &[Watchpoint]) -> Result<Vec<u64>, DebugError> {
    let mut pages = Vec::new();
    for w in wps {
        let intervals = match w.expr {
            crate::WatchExpr::Scalar { addr, width } => vec![(addr, width.bytes())],
            crate::WatchExpr::Range { base, len } => vec![(base, len)],
            crate::WatchExpr::Indirect { .. } => {
                // "The debugger cannot statically determine what pages to
                // write-protect for a watchpoint expression containing
                // pointer dereferences" — real debuggers fall back to
                // single-stepping; we report the gap like the paper's
                // missing bars.
                return Err(DebugError::Unsupported {
                    backend: "virtual-memory",
                    reason: "indirect watchpoints are not statically addressable".to_string(),
                });
            }
        };
        for (base, len) in intervals {
            let mut p = base & !(PAGE_SIZE - 1);
            while p < base + len.max(1) {
                if !pages.contains(&p) {
                    pages.push(p);
                }
                p += PAGE_SIZE;
            }
        }
    }
    Ok(pages)
}

impl BackendImpl for VirtualMemory {
    fn build_program(
        &mut self,
        app: &Application,
        _wps: &[Watchpoint],
    ) -> Result<Program, DebugError> {
        Ok(app.program()?)
    }

    fn configure(&mut self, exec: &mut Executor, wps: &[Watchpoint]) -> Result<(), DebugError> {
        for page in watched_pages(wps)? {
            exec.mem_mut().protect_page(page, true);
        }
        Ok(())
    }

    fn observe(
        &mut self,
        e: &Exec,
        exec: &mut Executor,
        watch: &mut WatchState,
        _stats: &mut TransitionStats,
    ) -> Option<Transition> {
        match e.event {
            Some(Event::ProtFault { .. }) => {
                let store = e.mem.expect("faulting instruction is a store");
                let wrote = watch.store_overlaps(exec.mem(), store.addr, store.width);
                let (changed, pred_ok) = watch.reevaluate(exec.mem());
                Some(classify(changed, pred_ok, wrote))
            }
            _ => None,
        }
    }
}
