//! Virtual-memory watchpoints (§2, [Appel & Li]): remove write
//! permission from every page holding watched data; classify the
//! resulting faults.

use dise_asm::Program;
use dise_cpu::{Event, Exec, Executor};
use dise_mem::{Memory, PAGE_SIZE};

use crate::backend::{classify, BackendImpl, ObserverImpl};
use crate::session::DebugError;
use crate::{Application, Transition, TransitionStats, WatchFilter, WatchState, Watchpoint};

#[derive(Clone, Debug, Default)]
pub(crate) struct VirtualMemory;

/// The pages covering every statically addressable watched byte.
pub(crate) fn watched_pages(wps: &[Watchpoint]) -> Result<Vec<u64>, DebugError> {
    let mut pages = Vec::new();
    for w in wps {
        let intervals = match w.expr {
            crate::WatchExpr::Scalar { addr, width } => vec![(addr, width.bytes())],
            crate::WatchExpr::Range { base, len } => vec![(base, len)],
            crate::WatchExpr::Indirect { .. } => {
                // "The debugger cannot statically determine what pages to
                // write-protect for a watchpoint expression containing
                // pointer dereferences" — real debuggers fall back to
                // single-stepping; we report the gap like the paper's
                // missing bars.
                return Err(DebugError::Unsupported {
                    backend: "virtual-memory",
                    reason: "indirect watchpoints are not statically addressable".to_string(),
                });
            }
        };
        for (base, len) in intervals {
            let mut p = base & !(PAGE_SIZE - 1);
            while p < base + len.max(1) {
                if !pages.contains(&p) {
                    pages.push(p);
                }
                p += PAGE_SIZE;
            }
        }
    }
    Ok(pages)
}

/// Would a `width`-byte store at `addr` fault if `pages` (page base
/// addresses) were write-protected? Mirrors `Memory::write_checked`
/// exactly: an access of at most 8 bytes touches at most two pages, and
/// the fault fires when either is protected. Shared by the
/// virtual-memory observer and the hardware-register observer's page
/// fallback so both agree with the live-machine fault path bit for bit.
pub(crate) fn store_would_fault(pages: &[u64], addr: u64, width: u64) -> bool {
    let first = addr & !(PAGE_SIZE - 1);
    let last = addr.wrapping_add(width.max(1) - 1) & !(PAGE_SIZE - 1);
    pages.contains(&first) || (last != first && pages.contains(&last))
}

/// The replayable detector for virtual-memory watchpoints: instead of
/// write-protecting pages in a private machine and waiting for
/// [`Event::ProtFault`], it computes from the shared (unperturbed)
/// stream which stores *would have* faulted. Classification is the same
/// debugger-side logic either way, so batched-observer reports are
/// bit-identical to the faulting replay.
pub(crate) struct VmObserver {
    /// Page base addresses covering every watched byte.
    pages: Vec<u64>,
}

impl VmObserver {
    pub fn new(wps: &[Watchpoint]) -> Result<VmObserver, DebugError> {
        Ok(VmObserver { pages: watched_pages(wps)? })
    }
}

impl ObserverImpl for VmObserver {
    fn observe(
        &mut self,
        e: &Exec,
        mem: &Memory,
        watch: &mut WatchState,
        _stats: &mut TransitionStats,
    ) -> Option<Transition> {
        let m = e.mem?;
        if !m.is_store || !store_would_fault(&self.pages, m.addr, m.width) {
            return None;
        }
        let wrote = watch.store_overlaps(mem, m.addr, m.width);
        let (changed, pred_ok) = watch.reevaluate(mem);
        Some(classify(changed, pred_ok, wrote))
    }

    /// Page protection traps on whole pages, so the filter is exactly
    /// the protected pages — static by construction (indirect
    /// watchpoints were rejected at [`VmObserver::new`]).
    fn filter(&self, _watch: &WatchState, _mem: &Memory) -> WatchFilter {
        WatchFilter::new(self.pages.iter().map(|&p| (p, PAGE_SIZE)).collect(), false)
    }
}

impl BackendImpl for VirtualMemory {
    fn boxed_clone(&self) -> Box<dyn BackendImpl> {
        Box::new(self.clone())
    }

    fn build_program(
        &mut self,
        app: &Application,
        _wps: &[Watchpoint],
    ) -> Result<Program, DebugError> {
        Ok(app.program()?)
    }

    fn configure(&mut self, exec: &mut Executor, wps: &[Watchpoint]) -> Result<(), DebugError> {
        for page in watched_pages(wps)? {
            exec.mem_mut().protect_page(page, true);
        }
        Ok(())
    }

    fn observe(
        &mut self,
        e: &Exec,
        exec: &mut Executor,
        watch: &mut WatchState,
        _stats: &mut TransitionStats,
    ) -> Option<Transition> {
        match e.event {
            Some(Event::ProtFault { .. }) => {
                let store = e.mem.expect("faulting instruction is a store");
                let wrote = watch.store_overlaps(exec.mem(), store.addr, store.width);
                let (changed, pred_ok) = watch.reevaluate(exec.mem());
                Some(classify(changed, pred_ok, wrote))
            }
            _ => None,
        }
    }
}
