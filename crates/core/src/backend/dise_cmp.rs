//! A pure-observation DISE organisation: hardware **range comparators**
//! at the memory stage, no production injection.
//!
//! Every organisation in the paper's Fig. 2 expands stores into
//! replacement sequences — the DISE engine *perturbs* the executed
//! stream, which is why [`crate::ObserverBatch`] refuses those
//! strategies. This organisation instead spends the engine's pattern
//! hardware on a small file of byte-granularity bound-register pairs:
//! each statically addressable watched interval `[lo, lo+len)` loads
//! one pair, a store whose footprint overlaps a loaded pair traps to
//! the debugger, and the application's fetch/execute stream is never
//! touched. [`crate::BackendKind::observation_only`] therefore returns
//! `true`, and `DiseComparators` rides observer batches for free.
//!
//! Compared with the other observing backends the comparators are
//! *byte-exact*: page protection over-triggers on page sharing
//! (spurious address transitions) and quad comparators over-trigger on
//! partial-quad neighbours, but a bound pair covers exactly the watched
//! bytes, so every trap wrote a watched byte — spurious **address**
//! transitions are structurally impossible. Silent stores and failed
//! predicates still cost a round trip (the hardware compares addresses,
//! not values), so unlike the production-injecting organisations this
//! one is not spurious-free: it trades DISE's in-application value
//! check for a zero-perturbation stream.
//!
//! Indirect watchpoints (`watch *p`) work, uniquely among the observing
//! backends: the debugger loads one pair over the pointer cell and one
//! over the current target; a store to the pointer cell traps, and the
//! debugger re-dereferences and reprograms the target pair before
//! resuming. All retargeting state lives on the debugger's side of the
//! trap, so the mechanism remains observation-only. Because the pairs
//! always mirror the watchpoints' *current* watched intervals, the trap
//! predicate is exactly [`WatchState::store_overlaps`] — the live
//! backend and the replayable observer share that one predicate and
//! cannot drift apart. One semantic caveat: on a repointing store the
//! comparators report the expression's value change (gdb's `watch *p`
//! semantics, and the conformance oracle's), whereas DISE's generated
//! function re-references silently — a pinned, documented divergence.

use dise_asm::Program;
use dise_cpu::{Exec, Executor};
use dise_mem::Memory;

use crate::backend::{classify, BackendImpl, ObserverImpl};
use crate::session::DebugError;
use crate::{
    Application, Transition, TransitionStats, WatchExpr, WatchFilter, WatchState, Watchpoint,
};

/// Bound-register pairs the organisation provides: the paper's engine
/// tables are tens of entries, and each pair needs two address
/// registers plus an overlap comparator, so a small file is the
/// realistic design point. Scalars and ranges consume one pair;
/// indirect watchpoints consume two (pointer cell + current target).
pub(crate) const COMPARATOR_PAIRS: usize = 16;

/// How many bound-register pairs `wps` needs, or `Unsupported` when the
/// set exceeds the file. Shared by the live backend and the observer so
/// their admission decisions agree.
fn pairs_needed(wps: &[Watchpoint]) -> Result<usize, DebugError> {
    let pairs: usize = wps
        .iter()
        .map(|w| match w.expr {
            WatchExpr::Scalar { .. } | WatchExpr::Range { .. } => 1,
            WatchExpr::Indirect { .. } => 2,
        })
        .sum();
    if pairs > COMPARATOR_PAIRS {
        return Err(DebugError::Unsupported {
            backend: "dise-comparators",
            reason: format!("{pairs} bound-register pairs needed, {COMPARATOR_PAIRS} available"),
        });
    }
    Ok(pairs)
}

/// The one trap-and-classify step both halves share: the comparator
/// pairs mirror the watchpoints' current intervals, so a store traps
/// iff it overlaps a watched byte, and every trap wrote a watched byte
/// (`wrote_watched` is true by construction — no spurious address
/// transitions).
fn observe_store(e: &Exec, mem: &Memory, watch: &mut WatchState) -> Option<Transition> {
    let m = e.mem?;
    if !m.is_store || !watch.store_overlaps(mem, m.addr, m.width) {
        return None;
    }
    let (changed, pred_ok) = watch.reevaluate(mem);
    Some(classify(changed, pred_ok, true))
}

/// The live session backend: loads the bound pairs and classifies
/// comparator traps. It never transforms the program, installs no
/// productions and protects no pages, so the machine runs the
/// unmodified application.
#[derive(Clone, Debug, Default)]
pub(crate) struct DiseCmp;

impl BackendImpl for DiseCmp {
    fn boxed_clone(&self) -> Box<dyn BackendImpl> {
        Box::new(self.clone())
    }

    fn build_program(
        &mut self,
        app: &Application,
        wps: &[Watchpoint],
    ) -> Result<Program, DebugError> {
        pairs_needed(wps)?;
        Ok(app.program()?)
    }

    fn configure(&mut self, _exec: &mut Executor, _wps: &[Watchpoint]) -> Result<(), DebugError> {
        // The pairs track `WatchState`'s current intervals; nothing in
        // the machine is touched.
        Ok(())
    }

    fn observe(
        &mut self,
        e: &Exec,
        exec: &mut Executor,
        watch: &mut WatchState,
        _stats: &mut TransitionStats,
    ) -> Option<Transition> {
        observe_store(e, exec.mem(), watch)
    }
}

/// The replayable detector: byte-for-byte the same predicate as
/// [`DiseCmp`], against the shared stream's read-only memory.
pub(crate) struct CmpObserver;

impl CmpObserver {
    pub fn new(wps: &[Watchpoint]) -> Result<CmpObserver, DebugError> {
        pairs_needed(wps)?;
        Ok(CmpObserver)
    }
}

impl ObserverImpl for CmpObserver {
    fn observe(
        &mut self,
        e: &Exec,
        mem: &Memory,
        watch: &mut WatchState,
        _stats: &mut TransitionStats,
    ) -> Option<Transition> {
        observe_store(e, mem, watch)
    }

    /// The bound pairs mirror the watchpoints' *current* intervals —
    /// for an indirect watch that is both the pointer cell and the
    /// present target, so a retargeting store always hits the filter
    /// and forces the scan that reprograms the pairs. Dynamic exactly
    /// when some expression follows run-time state.
    fn filter(&self, watch: &WatchState, mem: &Memory) -> WatchFilter {
        let dynamic = watch.watchpoints().any(|w| !w.expr.statically_addressable());
        WatchFilter::new(watch.watched_intervals(mem), dynamic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_isa::Width;

    fn scalar(addr: u64) -> Watchpoint {
        Watchpoint::new(WatchExpr::Scalar { addr, width: Width::Q })
    }

    #[test]
    fn pair_budget_counts_indirects_double() {
        let mut wps: Vec<Watchpoint> = (0..14).map(|i| scalar(0x1000 + 8 * i)).collect();
        wps.push(Watchpoint::new(WatchExpr::Indirect { ptr: 0x2000, width: Width::Q }));
        assert_eq!(pairs_needed(&wps).unwrap(), 16, "14 scalars + one indirect fill the file");
        wps.push(scalar(0x3000));
        assert!(matches!(pairs_needed(&wps), Err(DebugError::Unsupported { .. })));
    }

    #[test]
    fn ranges_cost_one_pair_regardless_of_length() {
        let wps = vec![Watchpoint::new(WatchExpr::Range { base: 0x1000, len: 4096 })];
        assert_eq!(pairs_needed(&wps).unwrap(), 1);
    }
}
