//! Static binary rewriting (§5.1 "Static transformation", Fig. 5): the
//! check of Fig. 2c inlined at every store, with no static optimization.
//!
//! The transformation happens at the pre-layout assembly level, which is
//! how recompilation-based systems (Wahbe et al.) operate: branch
//! retargeting comes for free from re-assembly, and register scavenging
//! is modeled by three reserved registers (`r25`, `r27`, `r28`) that the
//! calibrated workloads leave unused — a real implementation would
//! re-allocate registers instead.

use dise_asm::{Asm, Program, TextItem};
use dise_cpu::{Event, Exec, Executor};
use dise_isa::{AluOp, Cond, Instr, Operand, Reg, Width};

use crate::backend::{classify, BackendImpl};
use crate::session::DebugError;
use crate::{Application, Transition, TransitionStats, WatchExpr, WatchState, Watchpoint};

/// Registers scavenged from the application.
const S1: Reg = Reg::gpr(25);
const S2: Reg = Reg::gpr(27);
const S3: Reg = Reg::gpr(28);

#[derive(Clone, Debug, Default)]
pub(crate) struct Rewrite;

impl BackendImpl for Rewrite {
    fn boxed_clone(&self) -> Box<dyn BackendImpl> {
        Box::new(self.clone())
    }

    fn build_program(
        &mut self,
        app: &Application,
        wps: &[Watchpoint],
    ) -> Result<Program, DebugError> {
        let (addr, width) = match wps {
            [Watchpoint { expr: WatchExpr::Scalar { addr, width }, condition: None }] => {
                (*addr, *width)
            }
            _ => {
                return Err(DebugError::Unsupported {
                    backend: "binary-rewrite",
                    reason: "rewriting experiment covers a single unconditional scalar \
                             watchpoint (Fig. 5)"
                        .to_string(),
                })
            }
        };

        // The watched address is known from the *unmodified* layout; the
        // transformation only grows text and appends data, so data
        // addresses are unchanged.
        let mut out = app.asm().clone();
        let mut items = Vec::with_capacity(out.text_items().len() * 4);
        let mut n = 0usize;
        for item in out.text_items() {
            match item {
                TextItem::Inst(i @ Instr::Store { base, disp, .. }) => {
                    assert!(![S1, S2, S3].contains(base), "store base uses a scavenged register");
                    items.push(TextItem::Inst(*i));
                    let skip = format!("__bw_skip_{n}");
                    n += 1;
                    let mut frag = Asm::new();
                    // Reconstruct and align the store address.
                    frag.inst(Instr::Lda { rd: S2, base: *base, disp: *disp });
                    frag.inst(alu(AluOp::Bic, S2, S2, Operand::Imm(7)));
                    frag.load_const(S3, addr & !7);
                    frag.inst(alu(AluOp::CmpEq, S2, S2, Operand::Reg(S3)));
                    frag.cond_br(Cond::Eq, S2, &skip);
                    // Match: evaluate the expression.
                    frag.load_const(S3, addr);
                    frag.inst(Instr::Load { width, rd: S2, base: S3, disp: 0 });
                    frag.load_addr(S3, "__bw_prev", 0);
                    frag.inst(Instr::Load { width: Width::Q, rd: S1, base: S3, disp: 0 });
                    frag.inst(alu(AluOp::CmpEq, S1, S1, Operand::Reg(S2)));
                    frag.cond_br(Cond::Ne, S1, &skip); // silent store
                    frag.inst(Instr::Store { width: Width::Q, rs: S2, base: S3, disp: 0 });
                    frag.inst(Instr::Trap);
                    frag.label(&skip);
                    items.extend(frag.text_items().iter().cloned());
                }
                other => items.push(other.clone()),
            }
        }
        out.set_text_items(items);

        // The previous-value cell, initialised at configure time.
        out.align(8).data_label("__bw_prev").quad(0);

        let mut prog = out.assemble(app.layout())?;
        // Initialise the prev cell with the watched variable's initial
        // value from the image.
        let mut mem = dise_mem::Memory::new();
        prog.load(&mut mem);
        let init = mem.read_u(addr, width.bytes());
        let cell = prog.symbol("__bw_prev").expect("cell exists");
        let off = (cell - prog.data_base) as usize;
        prog.data[off..off + 8].copy_from_slice(&init.to_le_bytes());
        Ok(prog)
    }

    fn configure(&mut self, _exec: &mut Executor, _wps: &[Watchpoint]) -> Result<(), DebugError> {
        Ok(())
    }

    fn observe(
        &mut self,
        e: &Exec,
        exec: &mut Executor,
        watch: &mut WatchState,
        _stats: &mut TransitionStats,
    ) -> Option<Transition> {
        // The inlined check traps only when the expression's value
        // changed: every transition reaches the user.
        if matches!(e.event, Some(Event::Trap)) {
            let (changed, pred_ok) = watch.reevaluate(exec.mem());
            Some(classify(changed, pred_ok, true))
        } else {
            None
        }
    }
}

fn alu(op: AluOp, rd: Reg, ra: Reg, rb: Operand) -> Instr {
    Instr::Alu { op, rd, ra, rb }
}
