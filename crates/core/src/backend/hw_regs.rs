//! Hardware watchpoint registers (§2): a small number of
//! quad-granularity address comparators; "the virtual memory system is
//! harnessed" for watchpoints beyond the register count.

use dise_asm::Program;
use dise_cpu::{Event, Exec, Executor};

use crate::backend::{classify, virtual_mem::watched_pages, BackendImpl};
use crate::session::DebugError;
use crate::{Application, Transition, TransitionStats, WatchExpr, WatchState, Watchpoint};

#[derive(Debug)]
pub(crate) struct HwRegs {
    registers: usize,
    /// Quad-aligned addresses loaded into the comparators.
    quads: Vec<u64>,
    /// True when some watchpoints overflowed to page protection.
    vm_fallback: bool,
}

impl HwRegs {
    pub fn new(registers: usize) -> HwRegs {
        HwRegs { registers, quads: Vec::new(), vm_fallback: false }
    }
}

impl BackendImpl for HwRegs {
    fn build_program(
        &mut self,
        app: &Application,
        _wps: &[Watchpoint],
    ) -> Result<Program, DebugError> {
        Ok(app.program()?)
    }

    fn configure(&mut self, exec: &mut Executor, wps: &[Watchpoint]) -> Result<(), DebugError> {
        // Hardware registers watch scalars; indirect and non-scalar
        // expressions have no experiment in the paper ("real debuggers
        // resort to using virtual memory or single-stepping").
        let mut overflow = Vec::new();
        for w in wps {
            match w.expr {
                WatchExpr::Scalar { addr, width } => {
                    let mut q = addr & !7;
                    let mut quads = Vec::new();
                    while q < addr + width.bytes() {
                        quads.push(q);
                        q += 8;
                    }
                    if self.quads.len() + quads.len() <= self.registers {
                        self.quads.extend(quads);
                    } else {
                        overflow.push(*w);
                    }
                }
                WatchExpr::Indirect { .. } => {
                    return Err(DebugError::Unsupported {
                        backend: "hardware-registers",
                        reason: "indirect watchpoints are not statically addressable".to_string(),
                    })
                }
                WatchExpr::Range { .. } => {
                    return Err(DebugError::Unsupported {
                        backend: "hardware-registers",
                        reason: "non-scalar watchpoints exceed register granularity".to_string(),
                    })
                }
            }
        }
        if !overflow.is_empty() {
            self.vm_fallback = true;
            for page in watched_pages(&overflow)? {
                exec.mem_mut().protect_page(page, true);
            }
        }
        Ok(())
    }

    fn observe(
        &mut self,
        e: &Exec,
        exec: &mut Executor,
        watch: &mut WatchState,
        _stats: &mut TransitionStats,
    ) -> Option<Transition> {
        // The comparators trap any store whose quad-aligned footprint
        // covers a watched quad.
        if let Some(m) = e.mem {
            if m.is_store {
                let lo = m.addr & !7;
                let hi = (m.addr + m.width - 1) & !7;
                let hw_hit = self.quads.iter().any(|&q| q >= lo && q <= hi);
                let vm_hit = matches!(e.event, Some(Event::ProtFault { .. }));
                if hw_hit || vm_hit {
                    let wrote = watch.store_overlaps(exec.mem(), m.addr, m.width);
                    let (changed, pred_ok) = watch.reevaluate(exec.mem());
                    return Some(classify(changed, pred_ok, wrote));
                }
            }
        }
        None
    }
}
