//! Hardware watchpoint registers (§2): a small number of
//! quad-granularity address comparators; "the virtual memory system is
//! harnessed" for watchpoints beyond the register count.

use dise_asm::Program;
use dise_cpu::{Event, Exec, Executor, MemOp};
use dise_mem::Memory;

use crate::backend::{
    classify,
    virtual_mem::{store_would_fault, watched_pages},
    BackendImpl, ObserverImpl,
};
use crate::session::DebugError;
use crate::{
    Application, Transition, TransitionStats, WatchExpr, WatchFilter, WatchState, Watchpoint,
};

/// How a register budget covers a watchpoint set: the quad-aligned
/// addresses loaded into the comparators, and the pages protected for
/// the watchpoints that overflowed the registers (the Fig. 6 hybrid).
///
/// Both the live session backend ([`HwRegs`]) and the replayable
/// observer ([`HwObserver`]) are built from this one plan, so their trap
/// sets cannot drift apart.
fn plan(registers: usize, wps: &[Watchpoint]) -> Result<(Vec<u64>, Vec<u64>), DebugError> {
    // Hardware registers watch scalars; indirect and non-scalar
    // expressions have no experiment in the paper ("real debuggers
    // resort to using virtual memory or single-stepping").
    let mut quads = Vec::new();
    let mut overflow = Vec::new();
    for w in wps {
        match w.expr {
            WatchExpr::Scalar { addr, width } => {
                let mut q = addr & !7;
                let mut span = Vec::new();
                while q < addr + width.bytes() {
                    span.push(q);
                    q += 8;
                }
                if quads.len() + span.len() <= registers {
                    quads.extend(span);
                } else {
                    overflow.push(*w);
                }
            }
            WatchExpr::Indirect { .. } => {
                return Err(DebugError::Unsupported {
                    backend: "hardware-registers",
                    reason: "indirect watchpoints are not statically addressable".to_string(),
                })
            }
            WatchExpr::Range { .. } => {
                return Err(DebugError::Unsupported {
                    backend: "hardware-registers",
                    reason: "non-scalar watchpoints exceed register granularity".to_string(),
                })
            }
        }
    }
    Ok((quads, watched_pages(&overflow)?))
}

/// Does a store's quad-aligned footprint cover a loaded comparator?
fn comparator_hit(quads: &[u64], m: &MemOp) -> bool {
    let lo = m.addr & !7;
    let hi = (m.addr + m.width - 1) & !7;
    quads.iter().any(|&q| q >= lo && q <= hi)
}

#[derive(Clone, Debug)]
pub(crate) struct HwRegs {
    registers: usize,
    /// Quad-aligned addresses loaded into the comparators.
    quads: Vec<u64>,
}

impl HwRegs {
    pub fn new(registers: usize) -> HwRegs {
        HwRegs { registers, quads: Vec::new() }
    }
}

impl BackendImpl for HwRegs {
    fn boxed_clone(&self) -> Box<dyn BackendImpl> {
        Box::new(self.clone())
    }

    fn build_program(
        &mut self,
        app: &Application,
        _wps: &[Watchpoint],
    ) -> Result<Program, DebugError> {
        Ok(app.program()?)
    }

    fn configure(&mut self, exec: &mut Executor, wps: &[Watchpoint]) -> Result<(), DebugError> {
        let (quads, fallback_pages) = plan(self.registers, wps)?;
        self.quads = quads;
        for page in fallback_pages {
            exec.mem_mut().protect_page(page, true);
        }
        Ok(())
    }

    fn observe(
        &mut self,
        e: &Exec,
        exec: &mut Executor,
        watch: &mut WatchState,
        _stats: &mut TransitionStats,
    ) -> Option<Transition> {
        // The comparators trap any store whose quad-aligned footprint
        // covers a watched quad.
        if let Some(m) = e.mem {
            if m.is_store {
                let hw_hit = comparator_hit(&self.quads, &m);
                let vm_hit = matches!(e.event, Some(Event::ProtFault { .. }));
                if hw_hit || vm_hit {
                    let wrote = watch.store_overlaps(exec.mem(), m.addr, m.width);
                    let (changed, pred_ok) = watch.reevaluate(exec.mem());
                    return Some(classify(changed, pred_ok, wrote));
                }
            }
        }
        None
    }
}

/// The replayable detector for hardware watchpoint registers: the same
/// comparator plan as the live backend, with the virtual-memory
/// fallback's faults computed from the page set instead of raised by a
/// protected machine.
pub(crate) struct HwObserver {
    quads: Vec<u64>,
    fallback_pages: Vec<u64>,
}

impl HwObserver {
    pub fn new(registers: usize, wps: &[Watchpoint]) -> Result<HwObserver, DebugError> {
        let (quads, fallback_pages) = plan(registers, wps)?;
        Ok(HwObserver { quads, fallback_pages })
    }
}

impl ObserverImpl for HwObserver {
    fn observe(
        &mut self,
        e: &Exec,
        mem: &Memory,
        watch: &mut WatchState,
        _stats: &mut TransitionStats,
    ) -> Option<Transition> {
        let m = e.mem?;
        if !m.is_store {
            return None;
        }
        let hw_hit = comparator_hit(&self.quads, &m);
        let vm_hit = store_would_fault(&self.fallback_pages, m.addr, m.width);
        if hw_hit || vm_hit {
            let wrote = watch.store_overlaps(mem, m.addr, m.width);
            let (changed, pred_ok) = watch.reevaluate(mem);
            return Some(classify(changed, pred_ok, wrote));
        }
        None
    }

    /// Comparators match quad-aligned quads and the overflow fallback
    /// traps whole pages; the filter is the union of both — static by
    /// construction (only scalar watchpoints survive [`plan`]).
    fn filter(&self, _watch: &WatchState, _mem: &Memory) -> WatchFilter {
        let mut intervals: Vec<(u64, u64)> = self.quads.iter().map(|&q| (q, 8)).collect();
        intervals.extend(self.fallback_pages.iter().map(|&p| (p, dise_mem::PAGE_SIZE)));
        WatchFilter::new(intervals, false)
    }
}
