//! The five watchpoint implementations.

mod dise;
mod hw_regs;
mod rewrite;
mod single_step;
mod virtual_mem;

use dise_asm::Program;
use dise_cpu::{CpuConfig, Exec, Executor};

use crate::session::DebugError;
use crate::{Application, DiseStrategy, Transition, TransitionStats, WatchState, Watchpoint};

/// Selects and configures a watchpoint implementation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackendKind {
    /// Source-statement single-stepping: a debugger transition at every
    /// statement boundary (`.stmt` markers).
    SingleStep,
    /// `mprotect`-based trapping on the watched pages.
    VirtualMemory,
    /// Hardware watchpoint registers, quad granularity; watchpoints
    /// beyond `registers` fall back to virtual memory (the Fig. 6
    /// hybrid).
    HardwareRegisters {
        /// Number of registers (4 on IA-32/IA-64 per §2).
        registers: usize,
    },
    /// Static binary rewriting: the check of Fig. 2c inlined at every
    /// store, no static optimization (Fig. 5).
    BinaryRewrite,
    /// DISE dynamic instrumentation with the given strategy.
    Dise(DiseStrategy),
}

impl BackendKind {
    /// The paper's default DISE organisation (Fig. 2d).
    pub fn dise_default() -> BackendKind {
        BackendKind::Dise(DiseStrategy::default())
    }

    /// Four hardware registers, as on IA-32/IA-64.
    pub fn hw4() -> BackendKind {
        BackendKind::HardwareRegisters { registers: 4 }
    }

    /// Split this backend into its *functional* core and the timing
    /// knobs folded into `cpu`, for single-pass multi-config replay
    /// ([`crate::run_session_batch`]): two cells whose split backends
    /// are equal produce identical functional instruction streams and
    /// may share one functional pass.
    ///
    /// The only timing-only backend knob today is the DISE strategy's
    /// `multithreaded_calls` flag (Fig. 8), which the timing model
    /// already consumes via
    /// [`CpuConfig::multithreaded_dise_calls`]; everything else a
    /// backend does (productions, handlers, page protection, rewriting)
    /// changes the executed stream.
    pub fn split_timing(self, mut cpu: CpuConfig) -> (BackendKind, CpuConfig) {
        match self {
            BackendKind::Dise(mut strategy) => {
                cpu.multithreaded_dise_calls |= strategy.multithreaded_calls;
                strategy.multithreaded_calls = false;
                (BackendKind::Dise(strategy), cpu)
            }
            other => (other, cpu),
        }
    }

    pub(crate) fn instantiate(self) -> Box<dyn BackendImpl> {
        match self {
            BackendKind::SingleStep => Box::new(single_step::SingleStep::default()),
            BackendKind::VirtualMemory => Box::new(virtual_mem::VirtualMemory),
            BackendKind::HardwareRegisters { registers } => {
                Box::new(hw_regs::HwRegs::new(registers))
            }
            BackendKind::BinaryRewrite => Box::new(rewrite::Rewrite),
            BackendKind::Dise(strategy) => Box::new(dise::DiseBackend::new(strategy)),
        }
    }
}

/// Classify a transition after the debugger inspects memory: `changed` /
/// `pred_ok` come from [`WatchState::reevaluate`], `wrote_watched` from
/// overlap analysis.
pub(crate) fn classify(changed: bool, pred_ok: bool, wrote_watched: bool) -> Transition {
    if changed {
        if pred_ok {
            Transition::User
        } else {
            Transition::SpuriousPredicate
        }
    } else if wrote_watched {
        Transition::SpuriousValue
    } else {
        Transition::SpuriousAddress
    }
}

/// Internal interface every backend implements.
pub(crate) trait BackendImpl {
    /// Produce the program image the session will run: assemble the
    /// application and apply any static transformation or appendices.
    fn build_program(
        &mut self,
        app: &Application,
        wps: &[Watchpoint],
    ) -> Result<Program, DebugError>;

    /// Configure the loaded machine: install productions, load DISE/
    /// hardware registers, protect pages.
    fn configure(&mut self, exec: &mut Executor, wps: &[Watchpoint]) -> Result<(), DebugError>;

    /// Inspect one executed instruction; return the debugger transition
    /// it caused, if any. `watch` is the debugger's value bookkeeping;
    /// `stats` may be updated for non-transition counters (handler
    /// calls).
    fn observe(
        &mut self,
        e: &Exec,
        exec: &mut Executor,
        watch: &mut WatchState,
        stats: &mut TransitionStats,
    ) -> Option<Transition>;

    /// Adjust the CPU configuration (e.g. multithreaded DISE calls).
    fn cpu_config(&self, base: CpuConfig) -> CpuConfig {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_matrix() {
        assert_eq!(classify(true, true, true), Transition::User);
        assert_eq!(classify(true, false, true), Transition::SpuriousPredicate);
        assert_eq!(classify(false, false, true), Transition::SpuriousValue);
        assert_eq!(classify(false, false, false), Transition::SpuriousAddress);
    }
}
