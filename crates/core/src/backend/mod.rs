//! The watchpoint implementations: the paper's five, plus the
//! pure-observation DISE comparator organisation.

mod dise;
mod dise_cmp;
mod hw_regs;
mod rewrite;
mod single_step;
mod virtual_mem;

use dise_asm::Program;
use dise_cpu::{CpuConfig, Exec, Executor};
use dise_mem::Memory;

use crate::session::DebugError;
use crate::{
    Application, DiseStrategy, Transition, TransitionStats, WatchFilter, WatchState, Watchpoint,
};

/// Selects and configures a watchpoint implementation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackendKind {
    /// Source-statement single-stepping: a debugger transition at every
    /// statement boundary (`.stmt` markers).
    SingleStep,
    /// `mprotect`-based trapping on the watched pages.
    VirtualMemory,
    /// Hardware watchpoint registers, quad granularity; watchpoints
    /// beyond `registers` fall back to virtual memory (the Fig. 6
    /// hybrid).
    HardwareRegisters {
        /// Number of registers (4 on IA-32/IA-64 per §2).
        registers: usize,
    },
    /// Static binary rewriting: the check of Fig. 2c inlined at every
    /// store, no static optimization (Fig. 5).
    BinaryRewrite,
    /// DISE dynamic instrumentation with the given strategy.
    Dise(DiseStrategy),
    /// A pure-observation DISE organisation: byte-granularity hardware
    /// range comparators (bound-register pairs) trap stores that touch
    /// watched bytes, with no production injection — the only DISE
    /// organisation that observes instead of perturbing, so it can join
    /// observer batches. See `backend::dise_cmp`.
    DiseComparators,
}

impl BackendKind {
    /// The paper's default DISE organisation (Fig. 2d).
    pub fn dise_default() -> BackendKind {
        BackendKind::Dise(DiseStrategy::default())
    }

    /// Four hardware registers, as on IA-32/IA-64.
    pub fn hw4() -> BackendKind {
        BackendKind::HardwareRegisters { registers: 4 }
    }

    /// Split this backend into its *functional* core and the timing
    /// knobs folded into `cpu`, for single-pass multi-config replay
    /// ([`crate::run_session_batch`]): two cells whose split backends
    /// are equal produce identical functional instruction streams and
    /// may share one functional pass.
    ///
    /// The only timing-only backend knob today is the DISE strategy's
    /// `multithreaded_calls` flag (Fig. 8), which the timing model
    /// already consumes via
    /// [`CpuConfig::multithreaded_dise_calls`]; everything else a
    /// backend does (productions, handlers, page protection, rewriting)
    /// changes the executed stream.
    pub fn split_timing(self, mut cpu: CpuConfig) -> (BackendKind, CpuConfig) {
        match self {
            BackendKind::Dise(mut strategy) => {
                cpu.multithreaded_dise_calls |= strategy.multithreaded_calls;
                strategy.multithreaded_calls = false;
                (BackendKind::Dise(strategy), cpu)
            }
            other => (other, cpu),
        }
    }

    /// The observing/perturbing taxonomy behind
    /// [`crate::ObserverBatch`]: an *observing* backend's watch logic
    /// reads architectural state but never changes what the application
    /// fetches or executes — page protection and hardware address
    /// comparators trap to the debugger without altering the
    /// instruction stream, so any number of observing backends can
    /// share one functional pass of the unmodified application.
    ///
    /// *Perturbing* backends keep a private replay: statement
    /// single-stepping (the debugger seizes control at every
    /// statement), static binary rewriting (a different program runs),
    /// and every Fig. 2 DISE strategy (productions inject replacement
    /// instructions into the executed stream).
    /// [`BackendKind::DiseComparators`] is the DISE organisation that
    /// *does* only observe — pure range-comparator address matching
    /// with no injected sequence — so it classifies as observing and
    /// shares passes alongside virtual memory and hardware registers.
    pub fn observation_only(self) -> bool {
        match self {
            BackendKind::VirtualMemory
            | BackendKind::HardwareRegisters { .. }
            | BackendKind::DiseComparators => true,
            BackendKind::SingleStep | BackendKind::BinaryRewrite | BackendKind::Dise(_) => false,
        }
    }

    /// Build the replayable transition detector for an observing
    /// backend — the piece of the backend that can run against a shared
    /// functional stream instead of a private machine.
    ///
    /// # Panics
    ///
    /// Panics when `self` is a perturbing backend (see
    /// [`BackendKind::observation_only`]).
    pub(crate) fn instantiate_observer(
        self,
        wps: &[Watchpoint],
    ) -> Result<Box<dyn ObserverImpl>, DebugError> {
        match self {
            BackendKind::VirtualMemory => Ok(Box::new(virtual_mem::VmObserver::new(wps)?)),
            BackendKind::HardwareRegisters { registers } => {
                Ok(Box::new(hw_regs::HwObserver::new(registers, wps)?))
            }
            BackendKind::DiseComparators => Ok(Box::new(dise_cmp::CmpObserver::new(wps)?)),
            other => panic!("{other:?} perturbs execution and cannot join an observer batch"),
        }
    }

    pub(crate) fn instantiate(self) -> Box<dyn BackendImpl> {
        match self {
            BackendKind::SingleStep => Box::new(single_step::SingleStep::default()),
            BackendKind::VirtualMemory => Box::new(virtual_mem::VirtualMemory),
            BackendKind::HardwareRegisters { registers } => {
                Box::new(hw_regs::HwRegs::new(registers))
            }
            BackendKind::BinaryRewrite => Box::new(rewrite::Rewrite),
            BackendKind::Dise(strategy) => Box::new(dise::DiseBackend::new(strategy)),
            BackendKind::DiseComparators => Box::new(dise_cmp::DiseCmp),
        }
    }
}

/// Classify a transition after the debugger inspects memory: `changed` /
/// `pred_ok` come from [`WatchState::reevaluate`], `wrote_watched` from
/// overlap analysis.
pub(crate) fn classify(changed: bool, pred_ok: bool, wrote_watched: bool) -> Transition {
    if changed {
        if pred_ok {
            Transition::User
        } else {
            Transition::SpuriousPredicate
        }
    } else if wrote_watched {
        Transition::SpuriousValue
    } else {
        Transition::SpuriousAddress
    }
}

/// Internal interface every backend implements. `Send` because a
/// [`crate::SessionTask`] (which owns one mid-run) migrates between
/// scheduler worker threads across slices.
pub(crate) trait BackendImpl: Send {
    /// Produce the program image the session will run: assemble the
    /// application and apply any static transformation or appendices.
    fn build_program(
        &mut self,
        app: &Application,
        wps: &[Watchpoint],
    ) -> Result<Program, DebugError>;

    /// Configure the loaded machine: install productions, load DISE/
    /// hardware registers, protect pages.
    fn configure(&mut self, exec: &mut Executor, wps: &[Watchpoint]) -> Result<(), DebugError>;

    /// Inspect one executed instruction; return the debugger transition
    /// it caused, if any. `watch` is the debugger's value bookkeeping;
    /// `stats` may be updated for non-transition counters (handler
    /// calls).
    fn observe(
        &mut self,
        e: &Exec,
        exec: &mut Executor,
        watch: &mut WatchState,
        stats: &mut TransitionStats,
    ) -> Option<Transition>;

    /// Adjust the CPU configuration (e.g. multithreaded DISE calls).
    fn cpu_config(&self, base: CpuConfig) -> CpuConfig {
        base
    }

    /// Clone the backend behind the trait object, state and all — how
    /// checkpoint/fork captures a backend mid-session (a backend
    /// carries state from `build_program` into `configure` and
    /// `observe`, so a fresh instantiation would not do).
    fn boxed_clone(&self) -> Box<dyn BackendImpl>;
}

/// The replayable half of an *observing* backend: a transition detector
/// fed the shared functional stream. Unlike [`BackendImpl::observe`] it
/// sees memory read-only and no `Executor`, so it cannot perturb the
/// pass it shares with other observers — the compiler enforces what
/// [`BackendKind::observation_only`] promises.
///
/// Implementations must report transitions bit-identically to their
/// backend's private replay (the cross-backend conformance suite and
/// the grid determinism tests hold them to it).
pub(crate) trait ObserverImpl: Send {
    /// Inspect one executed instruction of the shared stream; return
    /// the debugger transition it caused, if any.
    fn observe(
        &mut self,
        e: &Exec,
        mem: &Memory,
        watch: &mut WatchState,
        stats: &mut TransitionStats,
    ) -> Option<Transition>;

    /// The store-footprint prefilter the chunked fan-out tests each
    /// [`dise_cpu::ChunkSummary`] against before scanning this
    /// observer: every byte whose mutation could change what
    /// [`ObserverImpl::observe`] reports must be covered. `watch` and
    /// `mem` carry the *current* watch state — a dynamic filter
    /// (indirect watches) is rebuilt from them after every forced scan.
    fn filter(&self, watch: &WatchState, mem: &Memory) -> WatchFilter;

    /// Inspect a slice of consecutive records with one virtual
    /// dispatch, pushing `(record index, transition)` pairs in stream
    /// order. The default is the per-record fallback over
    /// [`ObserverImpl::observe`].
    ///
    /// `mem` is the state *after* the last record of the slice. The
    /// caller must guarantee that is indistinguishable from per-record
    /// memory for this observer — the fan-out does, by scanning only
    /// single-record slices or slices whose stores all miss the
    /// member's filter.
    fn observe_slice(
        &mut self,
        records: &[Exec],
        mem: &Memory,
        watch: &mut WatchState,
        stats: &mut TransitionStats,
        out: &mut Vec<(u32, Transition)>,
    ) {
        for (i, e) in records.iter().enumerate() {
            if let Some(t) = self.observe(e, mem, watch, stats) {
                out.push((i as u32, t));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_matrix() {
        assert_eq!(classify(true, true, true), Transition::User);
        assert_eq!(classify(true, false, true), Transition::SpuriousPredicate);
        assert_eq!(classify(false, false, true), Transition::SpuriousValue);
        assert_eq!(classify(false, false, false), Transition::SpuriousAddress);
    }

    fn every_kind() -> Vec<BackendKind> {
        vec![
            BackendKind::SingleStep,
            BackendKind::VirtualMemory,
            BackendKind::hw4(),
            BackendKind::HardwareRegisters { registers: 0 },
            BackendKind::BinaryRewrite,
            BackendKind::dise_default(),
            BackendKind::Dise(DiseStrategy {
                multithreaded_calls: true,
                ..DiseStrategy::default()
            }),
            BackendKind::Dise(DiseStrategy::bloom(true)),
            BackendKind::DiseComparators,
        ]
    }

    /// The taxonomy is exactly the paper's: page protection and address
    /// comparators (including the pure-observation DISE comparator
    /// file) observe; statement stepping, rewriting and DISE production
    /// injection perturb.
    #[test]
    fn observation_taxonomy() {
        assert!(BackendKind::VirtualMemory.observation_only());
        assert!(BackendKind::hw4().observation_only());
        assert!(BackendKind::DiseComparators.observation_only());
        assert!(!BackendKind::SingleStep.observation_only());
        assert!(!BackendKind::BinaryRewrite.observation_only());
        for s in [
            DiseStrategy::default(),
            DiseStrategy::bloom(true),
            DiseStrategy::evaluate_inline(false),
            DiseStrategy { multithreaded_calls: true, ..DiseStrategy::default() },
        ] {
            assert!(!BackendKind::Dise(s).observation_only(), "{s:?} injects instructions");
        }
    }

    /// `split_timing` round trip, structurally: the split backend is a
    /// fixed point (splitting again changes nothing), the folded flag
    /// lands in the configuration exactly when the strategy carried it,
    /// and nothing else about the configuration moves.
    #[test]
    fn split_timing_is_idempotent_and_moves_only_the_mt_flag() {
        let cpu = CpuConfig::default();
        for kind in every_kind() {
            let (split, folded) = kind.split_timing(cpu);
            assert_eq!(split.split_timing(folded), (split, folded), "{kind:?} not a fixed point");
            let mt = matches!(kind, BackendKind::Dise(s) if s.multithreaded_calls);
            assert_eq!(folded.multithreaded_dise_calls, mt, "{kind:?}");
            if let BackendKind::Dise(s) = split {
                assert!(!s.multithreaded_calls, "{kind:?} kept the timing knob");
            }
            // Everything but the folded flag is untouched.
            let mut check = folded;
            check.multithreaded_dise_calls = cpu.multithreaded_dise_calls;
            assert_eq!(check, cpu, "{kind:?} perturbed unrelated configuration");
            // Splitting never changes the functional taxonomy.
            assert_eq!(split.observation_only(), kind.observation_only(), "{kind:?}");
        }
    }

    /// `split_timing` round trip, semantically: for every backend kind,
    /// running the *split* backend under the *folded* configuration
    /// reproduces the original (backend, config) session bit for bit —
    /// the folding loses nothing.
    #[test]
    fn split_timing_preserves_session_semantics() {
        use dise_asm::{parse_asm, Layout};
        use dise_isa::Width;

        let src = "start:  la r1, watched
                           lda r4, 6(zero)
                   loop:   .stmt
                           stq r4, 0(r1)
                           subq r4, 1, r4
                           bgt r4, loop
                           halt
                   .data
                   watched: .quad 0
                  ";
        let a = Application::new(parse_asm(src).unwrap(), Layout::default());
        let addr = a.program().unwrap().symbol("watched").unwrap();
        let wp = crate::Watchpoint::new(crate::WatchExpr::Scalar { addr, width: Width::Q });
        let cpu = CpuConfig::default();
        for kind in every_kind() {
            let (split, folded) = kind.split_timing(cpu);
            let original = crate::run_session(&a, vec![wp], kind, cpu).unwrap();
            let refolded = crate::run_session(&a, vec![wp], split, folded).unwrap();
            assert_eq!(original.run, refolded.run, "{kind:?}");
            assert_eq!(original.transitions, refolded.transitions, "{kind:?}");
            assert_eq!(original.text_bytes, refolded.text_bytes, "{kind:?}");
        }
    }
}
