//! The DISE watchpoint implementation (§4 of the paper).
//!
//! `build_program` appends the debugger's data region and its
//! dynamically generated expression-evaluation function (Fig. 2e) to the
//! application image; `configure` loads the DISE registers and installs
//! the productions (Fig. 2a–f, plus the serial and Bloom multi-address
//! sequences of §4 "Watching multiple addresses").
//!
//! DISE register conventions used by the generated code:
//!
//! | register | role |
//! |----------|------|
//! | `dr1` | reconstructed (raw) store address — read by the handler via `d_mfr` |
//! | `dr2` | quad-aligned store address |
//! | `dr3` | match accumulator |
//! | `dr4` | per-term temporary |
//! | `dr5`–`dr7`, `dar`, `dr12`, `dr13` | constant pool: watched addresses / range bounds / Bloom base+mask / inline condition constant |
//! | `dpv` | previous expression value (inline organisations) |
//! | `dhdlr` | handler address |
//! | `dseg` | protected-block tag (Fig. 2f) |
//! | `dr14` | debugger data region base |
//! | `dr15` | handler's register stash |

use dise_asm::{Asm, Layout, Program};
use dise_cpu::{Event, Exec, Executor, FlushKind, MemOp};
use dise_engine::{Pattern, Production, TDisp, TOperand, TReg, TemplateInst};
use dise_isa::{AluOp, Cond, Instr, OpClass, Operand, Reg, Width};

use crate::backend::BackendImpl;
use crate::region::{RegionBuilder, SAVE_BYTES};
use crate::session::DebugError;
use crate::{
    Application, CheckKind, DebugRegion, DiseStrategy, MultiMatch, Transition, TransitionStats,
    WatchExpr, WatchState, Watchpoint,
};

const T_RAW: Reg = Reg::dise(1);
const T_ALN: Reg = Reg::dise(2);
const T_ACC: Reg = Reg::dise(3);
const T_TMP: Reg = Reg::dise(4);
const K0: Reg = Reg::dise(5);
const K1: Reg = Reg::dise(6);
const K2: Reg = Reg::dise(7);
const STASH: Reg = Reg::DERR;
const DBASE: Reg = Reg::DBASE;

/// Where a watched constant lives during matching.
#[derive(Clone, Copy, Debug)]
enum Slot {
    /// In a DISE register.
    Reg(Reg),
    /// In the debugger data region at this offset (loaded with one
    /// extra `ldq`).
    Mem(u64),
}

/// Per-watchpoint cells in the debugger data region.
#[derive(Clone, Copy, Debug, Default)]
struct Cells {
    prev: u64,
    cond: Option<u64>,
    target: Option<u64>,
    shadow_abs: Option<u64>,
    /// Byte masks clipping a boundary-quad comparison to the watched
    /// bytes of an unaligned range (region offsets; too wide for
    /// `load_const`).
    mask_lo: Option<u64>,
    mask_hi: Option<u64>,
}

#[derive(Clone, Debug)]
pub(crate) struct DiseBackend {
    strategy: DiseStrategy,
    wps: Vec<Watchpoint>,
    productions: Vec<Production>,
    reg_values: Vec<(Reg, u64)>,
    region: Option<DebugRegion>,
    protection_pos: Option<u16>,
    last_store: Option<MemOp>,
}

impl DiseBackend {
    pub fn new(strategy: DiseStrategy) -> DiseBackend {
        DiseBackend {
            strategy,
            wps: Vec::new(),
            productions: Vec::new(),
            reg_values: Vec::new(),
            region: None,
            protection_pos: None,
            last_store: None,
        }
    }
}

fn unsupported(reason: impl Into<String>) -> DebugError {
    DebugError::Unsupported { backend: "dise", reason: reason.into() }
}

fn t_alu(op: AluOp, rd: Reg, ra: Reg, rb: TOperand) -> TemplateInst {
    TemplateInst::Alu { op, rd: TReg::Lit(rd), ra: TReg::Lit(ra), rb }
}

fn t_alu_reg(op: AluOp, rd: Reg, ra: Reg, rb: Reg) -> TemplateInst {
    t_alu(op, rd, ra, TOperand::Reg(TReg::Lit(rb)))
}

fn t_alu_imm(op: AluOp, rd: Reg, ra: Reg, imm: u8) -> TemplateInst {
    t_alu(op, rd, ra, TOperand::Imm(imm))
}

/// `lda dr1, T.IMM(T.RS1)` — reconstruct the store's effective address.
fn t_recon(rd: Reg) -> TemplateInst {
    TemplateInst::Lda { rd: TReg::Lit(rd), base: TReg::Rs1, disp: TDisp::Imm }
}

/// Terminal: conditionally invoke the handler on `flag != 0`.
fn call_tail(conditional_ops: bool, flag: Reg) -> Vec<TemplateInst> {
    if conditional_ops {
        vec![TemplateInst::Fixed(Instr::DCCall { cond: Cond::Ne, rs: flag, target: Reg::DHDLR })]
    } else {
        vec![
            TemplateInst::Fixed(Instr::DBr { cond: Cond::Eq, rs: flag, disp: 1 }),
            TemplateInst::Fixed(Instr::DCall { target: Reg::DHDLR }),
        ]
    }
}

/// Terminal: conditionally trap on `flag` satisfying `cond`.
fn trap_tail(conditional_ops: bool, cond: Cond, flag: Reg) -> Vec<TemplateInst> {
    if conditional_ops {
        vec![TemplateInst::Fixed(Instr::CTrap { cond, rs: flag })]
    } else {
        vec![
            TemplateInst::Fixed(Instr::DBr { cond: cond.negate(), rs: flag, disp: 1 }),
            TemplateInst::Fixed(Instr::Trap),
        ]
    }
}

impl BackendImpl for DiseBackend {
    fn boxed_clone(&self) -> Box<dyn BackendImpl> {
        Box::new(self.clone())
    }

    #[allow(clippy::too_many_lines)]
    fn build_program(
        &mut self,
        app: &Application,
        wps: &[Watchpoint],
    ) -> Result<Program, DebugError> {
        let mut prog = app.program()?;
        self.wps = wps.to_vec();
        let s = self.strategy;

        // The image as initially loaded, for initial values.
        let mut image = dise_mem::Memory::new();
        prog.load(&mut image);

        // ---- Inline organisations: single scalar only -----------------
        if matches!(s.check, CheckKind::EvaluateInline | CheckKind::MatchAddressValue) {
            let (addr, width, cond) = match wps {
                [Watchpoint { expr: WatchExpr::Scalar { addr, width }, condition }] => {
                    (*addr, *width, *condition)
                }
                _ => {
                    return Err(unsupported(
                        "inline organisations support exactly one scalar watchpoint",
                    ))
                }
            };
            let prev = image.read_u(addr, width.bytes());
            self.reg_values = vec![(Reg::DAR, addr), (Reg::DPV, prev)];
            if let Some(c) = cond {
                self.reg_values.push((K0, c.equals));
            }

            let mut seq: Vec<TemplateInst> = Vec::new();
            let mut protection = Vec::new();
            if s.protect_debugger {
                // Protection needs a region to protect; inline strategies
                // embed no data, so protect a minimal region anyway for
                // symmetry.
                let builder = RegionBuilder::new();
                let align = builder.required_align();
                let base = prog.data_end().div_ceil(align) * align;
                let (bytes, region) = builder.finish(base);
                let got = prog.append_data("__dbg_area", &bytes, align);
                debug_assert_eq!(got, base);
                self.reg_values.push((Reg::DSEG, region.seg_tag()));
                protection = protection_prefix(region.prot_shift);
                self.protection_pos = Some(protection.len() as u16);
                self.region = Some(region);
            }

            seq.extend(protection);
            seq.push(TemplateInst::Trigger);
            match s.check {
                CheckKind::EvaluateInline => {
                    // Fig. 2a/b, plus an in-sequence previous-value
                    // refresh (the paper's figure leaves the update to
                    // the trap path; refreshing inline keeps the
                    // sequence self-contained).
                    seq.push(TemplateInst::Load {
                        width,
                        rd: TReg::Lit(T_RAW),
                        base: TReg::Lit(Reg::DAR),
                        disp: TDisp::Lit(0),
                    });
                    seq.push(t_alu_reg(AluOp::CmpEq, T_ALN, T_RAW, Reg::DPV));
                    seq.push(t_alu_reg(AluOp::Or, Reg::DPV, T_RAW, T_RAW));
                    match cond {
                        None => seq.extend(trap_tail(s.conditional_ops, Cond::Eq, T_ALN)),
                        Some(_) => {
                            seq.push(t_alu_reg(AluOp::CmpEq, T_ACC, T_RAW, K0));
                            seq.push(t_alu_reg(AluOp::Bic, T_ACC, T_ACC, T_ALN));
                            seq.extend(trap_tail(s.conditional_ops, Cond::Ne, T_ACC));
                        }
                    }
                }
                CheckKind::MatchAddressValue => {
                    seq.push(t_recon(T_RAW));
                    seq.push(t_alu_reg(AluOp::CmpEq, T_ALN, T_RAW, Reg::DAR));
                    seq.push(TemplateInst::Alu {
                        op: AluOp::CmpEq,
                        rd: TReg::Lit(T_ACC),
                        ra: TReg::Rd,
                        rb: TOperand::Reg(TReg::Lit(Reg::DPV)),
                    });
                    seq.push(t_alu_reg(AluOp::Bic, T_TMP, T_ALN, T_ACC));
                    if cond.is_some() {
                        seq.push(TemplateInst::Alu {
                            op: AluOp::CmpEq,
                            rd: TReg::Lit(T_ACC),
                            ra: TReg::Rd,
                            rb: TOperand::Reg(TReg::Lit(K0)),
                        });
                        seq.push(t_alu_reg(AluOp::And, T_TMP, T_TMP, T_ACC));
                    }
                    seq.extend(trap_tail(s.conditional_ops, Cond::Ne, T_TMP));
                }
                CheckKind::MatchAddressCall => unreachable!(),
            }
            self.productions =
                vec![Production::new("watch-inline", Pattern::opclass(OpClass::Store), seq)];
            self.add_specialization();
            return Ok(prog);
        }

        // ---- Match-address + handler organisation ---------------------
        // 1. Region layout.
        let mut rb = RegionBuilder::new();
        let mut cells = vec![Cells::default(); wps.len()];
        for (i, w) in wps.iter().enumerate() {
            match w.expr {
                WatchExpr::Scalar { addr, width } => {
                    cells[i].prev = rb.quad(image.read_u(addr, width.bytes()));
                }
                WatchExpr::Indirect { ptr, width } => {
                    let target = image.read_u(ptr, 8);
                    cells[i].prev = rb.quad(image.read_u(target, width.bytes()));
                    cells[i].target = Some(rb.quad(target));
                }
                WatchExpr::Range { base, len } => {
                    cells[i].prev = rb.quad(0); // unused; shadow carries state
                    let end = base + len;
                    let lo_pad = base % 8;
                    let hi_pad = ((end - 1) & !7) + 8 - end;
                    if lo_pad > 0 {
                        cells[i].mask_lo = Some(rb.quad(u64::MAX << (8 * lo_pad)));
                    }
                    if hi_pad > 0 {
                        cells[i].mask_hi = Some(rb.quad(u64::MAX >> (8 * hi_pad)));
                    }
                }
            }
            if let Some(c) = w.condition {
                cells[i].cond = Some(rb.quad(c.equals));
            }
        }

        // 2. Constant-slot allocation for the matching sequence.
        let use_bloom = !matches!(s.multi_match, MultiMatch::Serial);
        let slots: Vec<Reg> = if use_bloom {
            vec![] // Bloom owns K0/K1; no per-address constants
        } else {
            vec![Reg::DAR, Reg::DAR2, Reg::DAR3, K0, K1, K2]
        };
        let mut next_slot = 0usize;
        fn alloc(
            slots: &[Reg],
            next_slot: &mut usize,
            rb: &mut RegionBuilder,
            value: u64,
            reg_values: &mut Vec<(Reg, u64)>,
        ) -> Slot {
            if *next_slot < slots.len() {
                let r = slots[*next_slot];
                *next_slot += 1;
                reg_values.push((r, value));
                Slot::Reg(r)
            } else {
                Slot::Mem(rb.quad(value))
            }
        }

        // Matching terms, one (or two) per watchpoint.
        enum Term {
            Aligned(Slot),
            Range { lo: Slot, len: Slot },
        }
        let mut terms: Vec<Term> = Vec::new();
        let mut reg_values: Vec<(Reg, u64)> = Vec::new();
        if !use_bloom {
            for (i, w) in wps.iter().enumerate() {
                match w.expr {
                    WatchExpr::Scalar { addr, .. } => {
                        terms.push(Term::Aligned(alloc(
                            &slots,
                            &mut next_slot,
                            &mut rb,
                            addr & !7,
                            &mut reg_values,
                        )));
                    }
                    WatchExpr::Indirect { ptr, .. } => {
                        // The handler rewrites `dar` when the pointer
                        // moves, so the target must own `dar` itself.
                        if i != 0 || next_slot != 0 {
                            return Err(unsupported(
                                "an indirect watchpoint must be the first (it owns `dar`)",
                            ));
                        }
                        let target = image.read_u(ptr, 8);
                        terms.push(Term::Aligned(alloc(
                            &slots,
                            &mut next_slot,
                            &mut rb,
                            target & !7,
                            &mut reg_values,
                        )));
                        terms.push(Term::Aligned(alloc(
                            &slots,
                            &mut next_slot,
                            &mut rb,
                            ptr & !7,
                            &mut reg_values,
                        )));
                    }
                    WatchExpr::Range { base, len } => {
                        let lo = alloc(&slots, &mut next_slot, &mut rb, base, &mut reg_values);
                        let l = alloc(&slots, &mut next_slot, &mut rb, len, &mut reg_values);
                        terms.push(Term::Range { lo, len: l });
                    }
                }
            }
        }

        // 3. Bloom filter block.
        if use_bloom {
            let bitwise = matches!(s.multi_match, MultiMatch::BloomBit);
            let mut filter = vec![0u8; 2048];
            for w in wps {
                let quads: Vec<u64> = match w.expr {
                    WatchExpr::Scalar { addr, width } => quad_span(addr, width.bytes()).collect(),
                    WatchExpr::Range { base, len } => quad_span(base, len).collect(),
                    WatchExpr::Indirect { .. } => {
                        return Err(unsupported(
                            "Bloom matching does not track moving indirect targets; \
                             use serial matching",
                        ))
                    }
                };
                for q in quads {
                    bloom_set(&mut filter, q, bitwise);
                }
            }
            let off = rb.block(&filter, 8);
            // K0 holds the filter's absolute base — patched after the
            // region base is known (marker for now).
            reg_values.push((K0, off)); // placeholder, fixed below
            reg_values.push((K1, if bitwise { 16383 } else { 2047 }));
        }

        // 4. Range shadows.
        for (i, w) in wps.iter().enumerate() {
            if let WatchExpr::Range { base, len } = w.expr {
                let lo = base & !7;
                let hi = (base + len + 7) & !7;
                let snapshot = image.read_bytes(lo, (hi - lo) as usize);
                cells[i].shadow_abs = Some(rb.block(&snapshot, 8));
            }
        }

        // 5. Append the region.
        let align = rb.required_align();
        let base = prog.data_end().div_ceil(align) * align;
        let (bytes, region) = rb.finish(base);
        let got = prog.append_data("__dbg_area", &bytes, align);
        debug_assert_eq!(got, base, "append alignment matches planned base");
        self.region = Some(region);

        // Resolve region-relative placeholders to absolute addresses.
        if use_bloom {
            for (r, v) in &mut reg_values {
                if *r == K0 {
                    *v += base;
                }
            }
        }
        for c in &mut cells {
            if let Some(sh) = &mut c.shadow_abs {
                *sh += base;
            }
        }
        reg_values.push((DBASE, base));

        // 6. The debugger-generated function (Fig. 2e, generalised).
        let handler = generate_handler(wps, &cells, base);
        let handler_prog = handler
            .assemble_with(
                Layout {
                    text_base: prog.text_end(),
                    data_base: prog.data_end(),
                    stack_top: prog.stack_top,
                },
                &prog.symbols,
            )
            .map_err(DebugError::Asm)?;
        let hbase = prog.append_text_words("__dbg_handler", &handler_prog.text);
        reg_values.push((Reg::DHDLR, hbase));

        // 7. The store production.
        let mut seq: Vec<TemplateInst> = Vec::new();
        if s.protect_debugger {
            let prefix = protection_prefix(region.prot_shift);
            self.protection_pos = Some(prefix.len() as u16);
            reg_values.push((Reg::DSEG, region.seg_tag()));
            seq.extend(prefix);
        }
        seq.push(TemplateInst::Trigger);
        seq.push(t_recon(T_RAW));
        if use_bloom {
            let bitwise = matches!(s.multi_match, MultiMatch::BloomBit);
            seq.push(t_alu_imm(AluOp::Srl, T_ALN, T_RAW, 3));
            seq.push(t_alu_reg(AluOp::And, T_ALN, T_ALN, K1));
            if bitwise {
                seq.push(t_alu_imm(AluOp::Srl, T_ACC, T_ALN, 3));
                seq.push(t_alu_reg(AluOp::Add, T_ACC, T_ACC, K0));
                seq.push(TemplateInst::Load {
                    width: Width::B,
                    rd: TReg::Lit(T_TMP),
                    base: TReg::Lit(T_ACC),
                    disp: TDisp::Lit(0),
                });
                seq.push(t_alu_imm(AluOp::And, T_ALN, T_ALN, 7));
                seq.push(t_alu_reg(AluOp::Srl, T_TMP, T_TMP, T_ALN));
                seq.push(t_alu_imm(AluOp::And, T_TMP, T_TMP, 1));
                seq.extend(call_tail(s.conditional_ops, T_TMP));
            } else {
                seq.push(t_alu_reg(AluOp::Add, T_ALN, T_ALN, K0));
                seq.push(TemplateInst::Load {
                    width: Width::B,
                    rd: TReg::Lit(T_ACC),
                    base: TReg::Lit(T_ALN),
                    disp: TDisp::Lit(0),
                });
                seq.extend(call_tail(s.conditional_ops, T_ACC));
            }
        } else {
            let needs_aligned = terms.iter().any(|t| matches!(t, Term::Aligned(_)));
            if needs_aligned {
                seq.push(t_alu_imm(AluOp::Bic, T_ALN, T_RAW, 7));
            }
            let mut first = true;
            for term in &terms {
                match term {
                    Term::Aligned(slot) => {
                        let cmp_with = match slot {
                            Slot::Reg(r) => *r,
                            Slot::Mem(off) => {
                                seq.push(load_cell(T_TMP, *off)?);
                                T_TMP
                            }
                        };
                        let dst = if first { T_ACC } else { T_TMP };
                        seq.push(t_alu_reg(AluOp::CmpEq, dst, T_ALN, cmp_with));
                        if !first {
                            seq.push(t_alu_reg(AluOp::Or, T_ACC, T_ACC, T_TMP));
                        }
                    }
                    Term::Range { lo, len } => {
                        let lo_reg = match lo {
                            Slot::Reg(r) => *r,
                            Slot::Mem(off) => {
                                seq.push(load_cell(T_TMP, *off)?);
                                T_TMP
                            }
                        };
                        seq.push(t_alu_reg(AluOp::Sub, T_TMP, T_RAW, lo_reg));
                        let len_reg = match len {
                            Slot::Reg(r) => *r,
                            Slot::Mem(off) => {
                                // `T_TMP` holds addr-lo; load the length
                                // into the accumulator position first.
                                let dst = if first { T_ACC } else { T_RAW };
                                return Err(unsupported(format!(
                                    "range watchpoint bounds spilled to memory \
                                     (offset {off}, dst {dst}); reduce watchpoint count",
                                )));
                            }
                        };
                        let dst = if first { T_ACC } else { T_TMP };
                        seq.push(t_alu_reg(AluOp::CmpUlt, dst, T_TMP, len_reg));
                        if !first {
                            seq.push(t_alu_reg(AluOp::Or, T_ACC, T_ACC, T_TMP));
                        }
                    }
                }
                first = false;
            }
            seq.extend(call_tail(s.conditional_ops, T_ACC));
        }
        self.productions =
            vec![Production::new("watch-match", Pattern::opclass(OpClass::Store), seq)];
        self.add_specialization();
        self.reg_values = reg_values;
        Ok(prog)
    }

    fn configure(&mut self, exec: &mut Executor, _wps: &[Watchpoint]) -> Result<(), DebugError> {
        for (r, v) in &self.reg_values {
            exec.set_reg(*r, *v);
        }
        for p in self.productions.drain(..) {
            exec.engine_mut().install(p).map_err(DebugError::Engine)?;
        }
        Ok(())
    }

    fn observe(
        &mut self,
        e: &Exec,
        exec: &mut Executor,
        watch: &mut WatchState,
        stats: &mut TransitionStats,
    ) -> Option<Transition> {
        // Remember the most recent application store (the expansion
        // trigger) for false-positive attribution.
        if let Some(m) = e.mem {
            if m.is_store && !e.in_dise_call {
                self.last_store = Some(m);
            }
        }
        if e.flush == Some(FlushKind::DiseCall) {
            stats.handler_calls += 1;
            if let Some(m) = self.last_store {
                if !watch.store_overlaps(exec.mem(), m.addr, m.width) {
                    stats.false_positive_calls += 1;
                }
            }
        }
        match e.event {
            Some(Event::Trap) => {
                if !e.in_dise_call && self.protection_pos == Some(e.disepc) {
                    return Some(Transition::ProtectionViolation);
                }
                // A value trap: the in-application logic already
                // established that the expression changed (and any
                // condition passed) — every transition reaches the user.
                watch.reevaluate(exec.mem());
                if self.strategy.check == CheckKind::MatchAddressValue {
                    // The debugger refreshes the previous-value register.
                    if let Some(Watchpoint { expr: WatchExpr::Scalar { addr, width }, .. }) =
                        self.wps.first()
                    {
                        let v = exec.mem().read_u(*addr, width.bytes());
                        exec.set_reg(Reg::DPV, v);
                    }
                }
                Some(Transition::User)
            }
            _ => None,
        }
    }

    fn cpu_config(&self, mut base: dise_cpu::CpuConfig) -> dise_cpu::CpuConfig {
        // OR rather than overwrite: `split_timing` may already have
        // folded the strategy's flag into the base configuration.
        base.multithreaded_dise_calls |= self.strategy.multithreaded_calls;
        base
    }
}

impl DiseBackend {
    /// §4 "Pattern matching optimizations": a more specific pass-through
    /// production for stack-pointer stores.
    fn add_specialization(&mut self) {
        if self.strategy.specialize_stack_stores {
            self.productions.push(Production::new(
                "stack-passthrough",
                Pattern::opclass(OpClass::Store).with_base_reg(Reg::SP),
                vec![TemplateInst::Trigger],
            ));
        }
    }
}

/// The Fig. 2f protection prefix: trap to the debugger when a store
/// aims at the debugger's protected block. (The figure branches to an
/// error handler; trapping reports through the same debugger path
/// without a taken-branch flush in the common case.)
fn protection_prefix(shift: u32) -> Vec<TemplateInst> {
    vec![
        t_recon(T_ALN),
        t_alu_imm(AluOp::Srl, T_ACC, T_ALN, shift as u8),
        t_alu_reg(AluOp::CmpEq, T_ACC, T_ACC, Reg::DSEG),
        TemplateInst::Fixed(Instr::CTrap { cond: Cond::Ne, rs: T_ACC }),
    ]
}

/// `ldq rd, off(dbase)` for spilled constants.
fn load_cell(rd: Reg, off: u64) -> Result<TemplateInst, DebugError> {
    if off > dise_isa::MEM_DISP_MAX as u64 {
        return Err(unsupported(format!("spill cell offset {off} exceeds displacement range")));
    }
    Ok(TemplateInst::Load {
        width: Width::Q,
        rd: TReg::Lit(rd),
        base: TReg::Lit(DBASE),
        disp: TDisp::Lit(off as i16),
    })
}

fn quad_span(addr: u64, len: u64) -> impl Iterator<Item = u64> {
    let lo = addr & !7;
    let hi = (addr + len.max(1) + 7) & !7;
    (lo..hi).step_by(8)
}

fn bloom_set(filter: &mut [u8], quad_addr: u64, bitwise: bool) {
    let h = quad_addr >> 3;
    if bitwise {
        let idx = (h & 16383) as usize;
        filter[idx >> 3] |= 1 << (idx & 7);
    } else {
        filter[(h & 2047) as usize] = 1;
    }
}

/// Probe a Bloom filter the way the replacement sequence does.
#[cfg(test)]
fn bloom_probe(filter: &[u8], addr: u64, bitwise: bool) -> bool {
    let h = addr >> 3;
    if bitwise {
        let idx = (h & 16383) as usize;
        filter[idx >> 3] & (1 << (idx & 7)) != 0
    } else {
        filter[(h & 2047) as usize] != 0
    }
}

/// Generate the debugger's expression-evaluation function (Fig. 2e,
/// generalised to multiple watchpoints, indirection, ranges and
/// conditions). Straight-line per-entry code: the debugger knows the
/// watchpoint set when it generates the function.
#[allow(clippy::too_many_lines)]
fn generate_handler(wps: &[Watchpoint], cells: &[Cells], base: u64) -> Asm {
    let r1 = Reg::gpr(1);
    let r2 = Reg::gpr(2);
    let r3 = Reg::gpr(3);
    let r4 = Reg::gpr(4);
    let r5 = Reg::gpr(5);
    let r6 = Reg::gpr(6);
    let alu = |op, rd, ra, rb: Operand| Instr::Alu { op, rd, ra, rb };

    let mut a = Asm::new();
    a.label("__handler");
    // Prolog: the calling convention is bespoke (§4.2 "the function
    // cannot use the normal calling convention; instead it treats all
    // registers as callee-saved"). r6 is stashed in a DISE register so
    // it can address the save area.
    a.inst(Instr::DMtr { dr: STASH, rs: r6 });
    a.load_const(r6, base);
    for (i, r) in [r1, r2, r3, r4, r5].iter().enumerate() {
        a.inst(Instr::Store { width: Width::Q, rs: *r, base: r6, disp: (i * 8) as i16 });
    }
    const { assert!(SAVE_BYTES >= 48) };
    // The raw store address computed by the replacement sequence.
    a.inst(Instr::DMfr { rd: r1, dr: T_RAW });

    for (i, (w, c)) in wps.iter().zip(cells).enumerate() {
        let next = format!("__next_{i}");
        let prev_off = c.prev as i16;
        match w.expr {
            WatchExpr::Scalar { addr, width } => {
                a.inst(alu(AluOp::Bic, r2, r1, Operand::Imm(7)));
                a.load_const(r3, addr & !7);
                a.inst(alu(AluOp::CmpEq, r2, r2, Operand::Reg(r3)));
                a.cond_br(Cond::Eq, r2, &next);
                a.load_const(r3, addr);
                a.inst(Instr::Load { width, rd: r4, base: r3, disp: 0 });
                a.inst(Instr::Load { width: Width::Q, rd: r5, base: r6, disp: prev_off });
                a.inst(alu(AluOp::CmpEq, r5, r5, Operand::Reg(r4)));
                a.cond_br(Cond::Ne, r5, "__done"); // silent store: pruned in-app
                a.inst(Instr::Store { width: Width::Q, rs: r4, base: r6, disp: prev_off });
                emit_condition(&mut a, c, r4, r5, r6);
                a.inst(Instr::Trap);
                a.br("__done");
                a.label(&next);
            }
            WatchExpr::Indirect { ptr, width } => {
                let tgt_off = c.target.expect("indirect has a target cell") as i16;
                let chk = format!("__tgt_{i}");
                a.inst(alu(AluOp::Bic, r2, r1, Operand::Imm(7)));
                a.load_const(r3, ptr & !7);
                a.inst(alu(AluOp::CmpEq, r3, r2, Operand::Reg(r3)));
                a.cond_br(Cond::Eq, r3, &chk);
                // The pointer cell itself was written: re-dereference and
                // retarget the match register.
                a.load_const(r3, ptr);
                a.inst(Instr::Load { width: Width::Q, rd: r3, base: r3, disp: 0 });
                a.inst(Instr::Store { width: Width::Q, rs: r3, base: r6, disp: tgt_off });
                a.inst(alu(AluOp::Bic, r4, r3, Operand::Imm(7)));
                a.inst(Instr::DMtr { dr: Reg::DAR, rs: r4 });
                // Its current value becomes the reference.
                a.inst(Instr::Load { width, rd: r4, base: r3, disp: 0 });
                a.inst(Instr::Store { width: Width::Q, rs: r4, base: r6, disp: prev_off });
                a.br("__done");
                a.label(&chk);
                a.inst(Instr::Load { width: Width::Q, rd: r3, base: r6, disp: tgt_off });
                a.inst(alu(AluOp::Bic, r4, r3, Operand::Imm(7)));
                a.inst(alu(AluOp::CmpEq, r4, r2, Operand::Reg(r4)));
                a.cond_br(Cond::Eq, r4, &next);
                a.inst(Instr::Load { width, rd: r4, base: r3, disp: 0 });
                a.inst(Instr::Load { width: Width::Q, rd: r5, base: r6, disp: prev_off });
                a.inst(alu(AluOp::CmpEq, r5, r5, Operand::Reg(r4)));
                a.cond_br(Cond::Ne, r5, "__done");
                a.inst(Instr::Store { width: Width::Q, rs: r4, base: r6, disp: prev_off });
                emit_condition(&mut a, c, r4, r5, r6);
                a.inst(Instr::Trap);
                a.br("__done");
                a.label(&next);
            }
            WatchExpr::Range { base: lo, len } => {
                let shadow = c.shadow_abs.expect("range has a shadow");
                a.load_const(r2, lo);
                a.inst(alu(AluOp::CmpUlt, r2, r1, Operand::Reg(r2)));
                a.cond_br(Cond::Ne, r2, &next); // below the range
                a.load_const(r2, lo + len);
                a.inst(alu(AluOp::CmpUlt, r2, r1, Operand::Reg(r2)));
                a.cond_br(Cond::Eq, r2, &next); // at/above the range
                                                // An in-range store of up to 8 bytes can touch the quad
                                                // holding its first byte *and* the next one, and the
                                                // first/last quads of an unaligned range also hold bytes
                                                // outside [lo, lo+len). Check every watched quad the
                                                // store can reach, clip each difference down to the
                                                // watched bytes (boundary masks live in the debugger
                                                // data region), update the shadows, and take a single
                                                // conditional trap if any watched byte changed — so a
                                                // store straddling the range end (or an interior quad
                                                // boundary) neither raises a false transition nor
                                                // escapes a real one. (A store *starting* below `lo`
                                                // that overlaps in is not matched by the replacement
                                                // sequence at all; the paper's sequences match the
                                                // store's base address.)
                let first_quad = lo & !7;
                let end = lo + len;
                let last_quad = (end - 1) & !7;
                a.inst(alu(AluOp::Bic, r2, r1, Operand::Imm(7)));
                a.inst(Instr::DMtr { dr: T_ACC, rs: Reg::ZERO }); // no pending trap
                let check_quad = |a: &mut Asm, pass: usize| {
                    a.inst(Instr::Load { width: Width::Q, rd: r3, base: r2, disp: 0 });
                    // Shadow slot for this quad.
                    a.load_const(r4, first_quad);
                    a.inst(alu(AluOp::Sub, r4, r2, Operand::Reg(r4)));
                    a.load_const(r5, shadow);
                    a.inst(alu(AluOp::Add, r4, r4, Operand::Reg(r5)));
                    a.inst(Instr::Load { width: Width::Q, rd: r5, base: r4, disp: 0 });
                    a.inst(alu(AluOp::Xor, r5, r5, Operand::Reg(r3)));
                    let masked = c.mask_lo.is_some() || c.mask_hi.is_some();
                    if masked {
                        // Free r3 for mask work; the handler may use
                        // DISE scratch registers through d_mtr/d_mfr,
                        // and the replacement sequence is past reading
                        // T_TMP.
                        a.inst(Instr::DMtr { dr: T_TMP, rs: r3 });
                        let clip = |a: &mut Asm, which: &str, quad: u64, mask_off: u64| {
                            let skip = format!("__mask_{which}_{pass}_{i}");
                            a.load_const(r3, quad);
                            a.inst(alu(AluOp::CmpEq, r3, r2, Operand::Reg(r3)));
                            a.cond_br(Cond::Eq, r3, &skip);
                            a.inst(Instr::Load {
                                width: Width::Q,
                                rd: r3,
                                base: r6,
                                disp: mask_off as i16,
                            });
                            a.inst(alu(AluOp::And, r5, r5, Operand::Reg(r3)));
                            a.label(&skip);
                        };
                        if let Some(off) = c.mask_lo {
                            clip(a, "lo", first_quad, off);
                        }
                        if let Some(off) = c.mask_hi {
                            clip(a, "hi", last_quad, off);
                        }
                    }
                    let clean = format!("__quad_clean_{pass}_{i}");
                    a.cond_br(Cond::Eq, r5, &clean); // no watched byte changed
                    if masked {
                        a.inst(Instr::DMfr { rd: r3, dr: T_TMP });
                    }
                    a.inst(Instr::Store { width: Width::Q, rs: r3, base: r4, disp: 0 });
                    a.inst(Instr::DMtr { dr: T_ACC, rs: r5 }); // nonzero: trap below
                    a.label(&clean);
                };
                check_quad(&mut a, 0);
                if first_quad < last_quad {
                    // The store may spill into the next quad; skip when
                    // that quad is past the watched span.
                    let skip = format!("__quad_skip_{i}");
                    a.inst(alu(AluOp::Add, r2, r2, Operand::Imm(8)));
                    a.load_const(r3, last_quad);
                    a.inst(alu(AluOp::CmpUlt, r3, r3, Operand::Reg(r2)));
                    a.cond_br(Cond::Ne, r3, &skip);
                    check_quad(&mut a, 1);
                    a.label(&skip);
                }
                a.inst(Instr::DMfr { rd: r3, dr: T_ACC });
                a.inst(Instr::CTrap { cond: Cond::Ne, rs: r3 });
                a.br("__done");
                a.label(&next);
            }
        }
    }

    // Epilog: restore and return into the replacement sequence.
    a.label("__done");
    for (i, r) in [r1, r2, r3, r4, r5].iter().enumerate() {
        a.inst(Instr::Load { width: Width::Q, rd: *r, base: r6, disp: (i * 8) as i16 });
    }
    a.inst(Instr::DMfr { rd: r6, dr: STASH });
    a.inst(Instr::DRet);
    a
}

/// Conditional watchpoints: the predicate guards the trap inside the
/// generated function (§4.3).
fn emit_condition(a: &mut Asm, c: &Cells, value: Reg, tmp: Reg, base: Reg) {
    if let Some(off) = c.cond {
        a.inst(Instr::Load { width: Width::Q, rd: tmp, base, disp: off as i16 });
        a.inst(Instr::Alu { op: AluOp::CmpEq, rd: tmp, ra: value, rb: Operand::Reg(tmp) });
        a.cond_br(Cond::Eq, tmp, "__done");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bloom_no_false_negatives() {
        for bitwise in [false, true] {
            let mut f = vec![0u8; 2048];
            let watched = [0x0100_0000u64, 0x0100_0040, 0x0123_4568];
            for &w in &watched {
                for q in quad_span(w, 8) {
                    bloom_set(&mut f, q, bitwise);
                }
            }
            for &w in &watched {
                assert!(bloom_probe(&f, w, bitwise), "watched address must probe set");
                assert!(bloom_probe(&f, w + 7, bitwise), "same quad");
            }
        }
    }

    #[test]
    fn bitwise_bloom_has_fewer_aliases() {
        let mut byte = vec![0u8; 2048];
        let mut bit = vec![0u8; 2048];
        for q in (0..64u64).map(|i| 0x0100_0000 + i * 8) {
            bloom_set(&mut byte, q, false);
            bloom_set(&mut bit, q, true);
        }
        let probes: Vec<u64> = (0..20_000).map(|i| 0x0200_0000 + i * 8).collect();
        let fp_byte = probes.iter().filter(|&&a| bloom_probe(&byte, a, false)).count();
        let fp_bit = probes.iter().filter(|&&a| bloom_probe(&bit, a, true)).count();
        assert!(
            fp_bit <= fp_byte,
            "bitwise ({fp_bit}) should alias no more than bytewise ({fp_byte})"
        );
    }

    #[test]
    fn quad_span_covers_partial_quads() {
        assert_eq!(quad_span(0x100, 8).collect::<Vec<_>>(), vec![0x100]);
        assert_eq!(quad_span(0x104, 8).collect::<Vec<_>>(), vec![0x100, 0x108]);
        assert_eq!(quad_span(0x101, 1).collect::<Vec<_>>(), vec![0x100]);
    }

    #[test]
    fn protection_prefix_shape() {
        let p = protection_prefix(11);
        assert_eq!(p.len(), 4);
        assert!(matches!(p[3], TemplateInst::Fixed(Instr::CTrap { .. })));
    }
}
