//! Debugging sessions: drive the machine under a backend, classify and
//! charge debugger transitions.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

use dise_asm::AsmError;
use dise_cpu::{CpuConfig, Event, ExecError, Executor, Machine, RunStats, Timing};
use dise_engine::EngineError;

use crate::backend::BackendImpl;
use crate::{Application, BackendKind, TransitionStats, WatchState, Watchpoint};

/// Errors establishing or running a debugging session.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DebugError {
    /// Assembly of the (possibly transformed) application failed.
    Asm(AsmError),
    /// DISE production installation failed.
    Engine(EngineError),
    /// The chosen backend cannot implement the requested watchpoints —
    /// the paper's "no experiment" bars (e.g. INDIRECT under virtual
    /// memory).
    Unsupported {
        /// Which backend.
        backend: &'static str,
        /// Why.
        reason: String,
    },
}

impl fmt::Display for DebugError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DebugError::Asm(e) => write!(f, "assembly failed: {e}"),
            DebugError::Engine(e) => write!(f, "production installation failed: {e}"),
            DebugError::Unsupported { backend, reason } => {
                write!(f, "{backend} cannot implement the watchpoints: {reason}")
            }
        }
    }
}

impl std::error::Error for DebugError {}

impl From<AsmError> for DebugError {
    fn from(e: AsmError) -> DebugError {
        DebugError::Asm(e)
    }
}

/// Results of a debugging session.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// Machine-level statistics (cycles include debugger stalls).
    pub run: RunStats,
    /// Transition taxonomy counts.
    pub transitions: TransitionStats,
    /// Terminal execution error, if the application misbehaved.
    pub error: Option<ExecError>,
    /// Static code size of the image that ran (bytes) — grows under
    /// binary rewriting.
    pub text_bytes: u64,
}

impl SessionReport {
    /// Execution time normalised to an undebugged baseline — the y-axis
    /// of Figs. 3–9.
    pub fn overhead_vs(&self, baseline: &RunStats) -> f64 {
        self.run.cycles as f64 / baseline.cycles.max(1) as f64
    }
}

/// Run the application undebugged: the baseline denominator for every
/// experiment.
///
/// # Errors
///
/// Propagates assembly failures.
pub fn run_baseline(app: &Application, cpu: CpuConfig) -> Result<RunStats, DebugError> {
    let prog = app.program()?;
    let mut m = Machine::with_config(&prog, cpu);
    Ok(m.run())
}

/// Run one complete debugging session and return its report — the
/// `Send`-able entry point job-grid runners hand to worker threads
/// (every argument and the result are plain data).
///
/// # Errors
///
/// As [`Session::with_config`].
pub fn run_session(
    app: &Application,
    watchpoints: Vec<Watchpoint>,
    backend: BackendKind,
    cpu: CpuConfig,
) -> Result<SessionReport, DebugError> {
    Ok(Session::with_config(app, watchpoints, backend, cpu)?.run())
}

/// A shared, lock-guarded cache of undebugged baseline runs, so
/// concurrent experiment jobs can all normalise against the same
/// denominator without re-running it or serialising on `&mut self`.
///
/// Keys are caller-chosen (kernel names); a baseline is computed at most
/// once per key, outside the lock, so a slow baseline never blocks
/// lookups of other kernels.
#[derive(Debug, Default)]
pub struct BaselineCache {
    runs: Mutex<HashMap<String, RunStats>>,
}

impl BaselineCache {
    /// An empty cache.
    pub fn new() -> BaselineCache {
        BaselineCache::default()
    }

    /// The baseline statistics for `key`, computing them from `app`
    /// under `cpu` on first use.
    ///
    /// Two threads racing on the same missing key may both compute the
    /// run; the first insertion wins, and both runs are identical (the
    /// simulator is deterministic).
    ///
    /// # Errors
    ///
    /// Propagates assembly failures from the baseline run.
    pub fn get_or_run(
        &self,
        key: &str,
        app: &Application,
        cpu: CpuConfig,
    ) -> Result<RunStats, DebugError> {
        if let Some(stats) = self.runs.lock().expect("baseline cache poisoned").get(key) {
            return Ok(*stats);
        }
        let stats = run_baseline(app, cpu)?;
        Ok(*self
            .runs
            .lock()
            .expect("baseline cache poisoned")
            .entry(key.to_string())
            .or_insert(stats))
    }

    /// Number of distinct baselines cached.
    pub fn len(&self) -> usize {
        self.runs.lock().expect("baseline cache poisoned").len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An interactive debugging session: an application, a set of
/// watchpoints, and a backend implementing them.
pub struct Session {
    exec: Executor,
    timing: Timing,
    backend: Box<dyn BackendImpl>,
    watch: WatchState,
    stats: TransitionStats,
    transition_cost: u64,
    text_bytes: u64,
}

impl Session {
    /// Create a session with the paper's default machine configuration.
    ///
    /// # Errors
    ///
    /// Fails when the backend cannot implement the watchpoints, when
    /// static transformation fails, or when productions exceed the DISE
    /// engine's capacity.
    pub fn new(
        app: &Application,
        watchpoints: Vec<Watchpoint>,
        backend: BackendKind,
    ) -> Result<Session, DebugError> {
        Session::with_config(app, watchpoints, backend, CpuConfig::default())
    }

    /// Create a session with an explicit machine configuration.
    ///
    /// # Errors
    ///
    /// As [`Session::new`].
    pub fn with_config(
        app: &Application,
        watchpoints: Vec<Watchpoint>,
        backend: BackendKind,
        cpu: CpuConfig,
    ) -> Result<Session, DebugError> {
        let mut backend = backend.instantiate();
        let prog = backend.build_program(app, &watchpoints)?;
        let cfg = backend.cpu_config(cpu);
        let mut exec = Executor::from_program(&prog, cfg);
        backend.configure(&mut exec, &watchpoints)?;
        let watch = WatchState::new(&watchpoints, exec.mem());
        Ok(Session {
            exec,
            timing: Timing::new(cfg),
            backend,
            watch,
            stats: TransitionStats::default(),
            transition_cost: cfg.debugger_transition_cost,
            text_bytes: prog.text_bytes(),
        })
    }

    /// Direct access to the machine (for examples that poke at state).
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Run to completion.
    pub fn run(self) -> SessionReport {
        self.run_limit(u64::MAX)
    }

    /// Run to completion and also hand back the final machine, so
    /// callers can inspect architectural state (used to verify that
    /// debugging does not perturb the application).
    pub fn run_with_state(mut self) -> (SessionReport, Executor) {
        let report = self.drive(u64::MAX);
        (report, self.exec)
    }

    /// Run at most `max_instructions` dynamic instructions.
    pub fn run_limit(mut self, max_instructions: u64) -> SessionReport {
        self.drive(max_instructions)
    }

    fn drive(&mut self, max_instructions: u64) -> SessionReport {
        let mut error = None;
        let mut n = 0u64;
        while !self.exec.is_halted() && n < max_instructions {
            let e = self.exec.step();
            n += 1;
            self.timing.consume(&e);
            if let Some(t) =
                self.backend.observe(&e, &mut self.exec, &mut self.watch, &mut self.stats)
            {
                self.stats.count(t);
                if t.is_spurious() {
                    // A spurious transition is a full application→
                    // debugger→application round trip perceived as
                    // latency; user transitions are masked (zero cost).
                    self.timing.debugger_stall(self.transition_cost);
                }
            }
            if let Some(Event::Error(err)) = e.event {
                error = Some(err);
            }
        }
        SessionReport {
            run: self.timing.finish(),
            transitions: self.stats,
            error,
            text_bytes: self.text_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BackendKind, Condition, DiseStrategy, WatchExpr, Watchpoint};
    use dise_asm::{parse_asm, Layout};
    use dise_isa::Width;

    /// A loop that stores a changing value to `watched`, a constant
    /// (silent after the first) to `silent`, and a changing value to
    /// `neighbor` (same page as `watched`, never watched).
    fn app(iters: u32) -> Application {
        let src = format!(
            "start:  la r1, watched
                     la r2, silent
                     la r3, neighbor
                     lda r4, {iters}(zero)
             loop:   .stmt
                     stq r4, 0(r3)      # unwatched neighbor (same page)
                     stq r31, 0(r2)     # silent store to watched quad
                     stq r4, 0(r1)      # changes watched value
                     subq r4, 1, r4
                     bgt r4, loop
                     halt
             .data
             watched:  .quad 0
             silent:   .quad 0
             neighbor: .quad 0
            "
        );
        Application::new(parse_asm(&src).unwrap(), Layout::default())
    }

    fn scalar_wp(app: &Application, sym: &str) -> Watchpoint {
        let addr = app.program().unwrap().symbol(sym).unwrap();
        Watchpoint::new(WatchExpr::Scalar { addr, width: Width::Q })
    }

    /// The grid runners in `dise-bench` ship sessions to worker
    /// threads: everything [`run_session`] consumes or produces, plus
    /// the shared baseline cache, must stay `Send + Sync`.
    #[test]
    fn session_grid_surface_is_send_and_sync() {
        fn send_sync<T: Send + Sync>() {}
        send_sync::<Application>();
        send_sync::<Watchpoint>();
        send_sync::<BackendKind>();
        send_sync::<CpuConfig>();
        send_sync::<SessionReport>();
        send_sync::<DebugError>();
        send_sync::<BaselineCache>();
    }

    #[test]
    fn baseline_cache_computes_each_key_once_across_threads() {
        let a = app(5);
        let cache = BaselineCache::new();
        let runs: Vec<RunStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| cache.get_or_run("app", &a, CpuConfig::default()).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(cache.len(), 1);
        assert!(runs.windows(2).all(|w| w[0] == w[1]), "deterministic baseline");
    }

    #[test]
    fn baseline_runs_clean() {
        let a = app(10);
        let b = run_baseline(&a, CpuConfig::default()).unwrap();
        assert!(b.cycles > 0);
        assert!(b.instructions > 50);
    }

    #[test]
    fn dise_reports_every_change_with_no_spurious_transitions() {
        let a = app(10);
        let wp = scalar_wp(&a, "watched");
        let r = Session::new(&a, vec![wp], BackendKind::dise_default()).unwrap().run();
        assert_eq!(r.error, None);
        assert_eq!(r.transitions.user, 10, "one change per iteration");
        assert_eq!(r.transitions.spurious_total(), 0);
        assert_eq!(r.run.debugger_stalls, 0);
    }

    #[test]
    fn dise_prunes_silent_stores_in_application() {
        let a = app(10);
        let wp = scalar_wp(&a, "silent");
        let r = Session::new(&a, vec![wp], BackendKind::dise_default()).unwrap().run();
        // The handler is called for each store to the watched quad, but
        // the value never changes after initialisation: no transitions.
        assert_eq!(r.transitions.user, 0);
        assert_eq!(r.transitions.spurious_total(), 0);
        assert!(r.transitions.handler_calls >= 10);
    }

    #[test]
    fn virtual_memory_pays_for_page_sharing() {
        let a = app(10);
        let wp = scalar_wp(&a, "watched");
        let r = Session::new(&a, vec![wp], BackendKind::VirtualMemory).unwrap().run();
        assert_eq!(r.transitions.user, 10);
        // The neighbor and silent-target stores share the page but do
        // not touch the watched variable: spurious address transitions.
        assert_eq!(r.transitions.spurious_address, 20, "same-page stores");
        assert_eq!(r.run.debugger_stalls, 20);
        assert!(r.run.cycles > 20 * 100_000);
    }

    #[test]
    fn hardware_registers_pay_only_for_silent_stores() {
        let a = app(10);
        let wp = scalar_wp(&a, "silent");
        let r = Session::new(&a, vec![wp], BackendKind::hw4()).unwrap().run();
        // Quad comparators: neighbor stores don't match; stores to the
        // watched quad never change the value → all spurious value.
        assert_eq!(r.transitions.user, 0);
        assert_eq!(r.transitions.spurious_address, 0);
        assert_eq!(r.transitions.spurious_value, 10);
    }

    #[test]
    fn single_stepping_transitions_every_statement() {
        let a = app(10);
        let wp = scalar_wp(&a, "watched");
        let r = Session::new(&a, vec![wp], BackendKind::SingleStep).unwrap().run();
        // One statement marker per iteration. The debugger sees each
        // iteration's change at the *next* statement boundary, so the
        // first boundary (nothing changed yet) is spurious and the last
        // change is never observed: 9 user + 1 spurious address.
        assert_eq!(r.transitions.total(), 10);
        assert_eq!(r.transitions.user, 9);
        assert_eq!(r.transitions.spurious_address, 1);
    }

    #[test]
    fn single_stepping_spurious_when_nothing_changes() {
        let a = app(10);
        let wp = scalar_wp(&a, "neighbor");
        // Watch the neighbor but make it the *silent* target: watch a
        // variable the loop never changes.
        let quiet = {
            let addr = a.program().unwrap().symbol("silent").unwrap();
            Watchpoint::new(WatchExpr::Scalar { addr, width: Width::Q })
        };
        let _ = wp;
        let r = Session::new(&a, vec![quiet], BackendKind::SingleStep).unwrap().run();
        assert_eq!(r.transitions.user, 0);
        assert_eq!(r.transitions.spurious_address, 10);
        assert!(r.run.cycles > 10 * 100_000);
    }

    #[test]
    fn conditional_watchpoints_spurious_predicates() {
        let a = app(10);
        let addr = a.program().unwrap().symbol("watched").unwrap();
        let wp = Watchpoint::conditional(
            WatchExpr::Scalar { addr, width: Width::Q },
            Condition::equals(u64::MAX), // never true
        );
        // Hardware registers: every change transitions, predicate always
        // false → spurious predicate transitions.
        let r = Session::new(&a, vec![wp], BackendKind::hw4()).unwrap().run();
        assert_eq!(r.transitions.user, 0);
        assert_eq!(r.transitions.spurious_predicate, 10);

        // DISE evaluates the predicate in the generated function: no
        // transitions at all.
        let r = Session::new(&a, vec![wp], BackendKind::dise_default()).unwrap().run();
        assert_eq!(r.transitions.total(), 0);
        assert_eq!(r.run.debugger_stalls, 0);
    }

    #[test]
    fn binary_rewrite_matches_dise_semantics_with_bigger_text() {
        let a = app(10);
        let wp = scalar_wp(&a, "watched");
        let dise = Session::new(&a, vec![wp], BackendKind::dise_default()).unwrap().run();
        let bw = Session::new(&a, vec![wp], BackendKind::BinaryRewrite).unwrap().run();
        assert_eq!(bw.error, None);
        assert_eq!(bw.transitions.user, dise.transitions.user);
        assert_eq!(bw.transitions.spurious_total(), 0);
        assert!(
            bw.text_bytes > dise.text_bytes,
            "rewriting bloats the static image: {} vs {}",
            bw.text_bytes,
            dise.text_bytes
        );
    }

    #[test]
    fn all_dise_strategies_agree_on_user_events() {
        let a = app(10);
        let wp = scalar_wp(&a, "watched");
        for strategy in [
            DiseStrategy::default(),
            DiseStrategy::match_address_call(false),
            DiseStrategy::evaluate_inline(true),
            DiseStrategy::evaluate_inline(false),
            DiseStrategy::match_address_value(true),
            DiseStrategy::match_address_value(false),
            DiseStrategy::bloom(false),
            DiseStrategy::bloom(true),
            DiseStrategy { multithreaded_calls: true, ..DiseStrategy::default() },
            DiseStrategy { protect_debugger: true, ..DiseStrategy::default() },
        ] {
            let r = Session::new(&a, vec![wp], BackendKind::Dise(strategy)).unwrap().run();
            assert_eq!(r.error, None, "{strategy:?}");
            assert_eq!(r.transitions.user, 10, "{strategy:?}");
            assert_eq!(r.transitions.spurious_total(), 0, "{strategy:?}");
        }
    }

    #[test]
    fn indirect_watchpoint_works_under_dise_only() {
        let src = "start:  la r1, p
                           ldq r2, 0(r1)      # r2 = &target
                           lda r3, 5(zero)
                           stq r3, 0(r2)      # writes *p
                           la r4, other
                           ldq r5, 0(r4)
                           stq r5, 0(r1)      # repoint p to other
                           lda r3, 9(zero)
                           ldq r2, 0(r1)
                           stq r3, 0(r2)      # writes new *p
                           halt
                   .data
                   target: .quad 1
                   other_t:.quad 2
                   p:      .quad 0x01000000   # &target
                   other:  .quad 0x01000008   # &other_t
                  ";
        let a = Application::new(parse_asm(src).unwrap(), Layout::default());
        let p = a.program().unwrap().symbol("p").unwrap();
        let wp = Watchpoint::new(WatchExpr::Indirect { ptr: p, width: Width::Q });

        let r = Session::new(&a, vec![wp], BackendKind::dise_default()).unwrap().run();
        assert_eq!(r.error, None);
        // *p changes twice: 1→5 at target, then (after repointing,
        // which re-references) 2→9 at other_t.
        assert_eq!(r.transitions.user, 2);
        assert_eq!(r.transitions.spurious_total(), 0);

        // Virtual memory and hardware registers must decline.
        assert!(matches!(
            Session::new(&a, vec![wp], BackendKind::VirtualMemory),
            Err(DebugError::Unsupported { .. })
        ));
        assert!(matches!(
            Session::new(&a, vec![wp], BackendKind::hw4()),
            Err(DebugError::Unsupported { .. })
        ));
    }

    #[test]
    fn range_watchpoint_under_dise() {
        let src = "start:  la r1, arr
                           lda r2, 3(zero)
                           stq r2, 8(r1)     # arr[1] = 3
                           stq r2, 8(r1)     # silent
                           stq r2, 64(r1)    # outside the range
                           halt
                   .data
                   arr:    .space 32
                   beyond: .space 64
                  ";
        let a = Application::new(parse_asm(src).unwrap(), Layout::default());
        let base = a.program().unwrap().symbol("arr").unwrap();
        let wp = Watchpoint::new(WatchExpr::Range { base, len: 32 });
        let r = Session::new(&a, vec![wp], BackendKind::dise_default()).unwrap().run();
        assert_eq!(r.error, None);
        assert_eq!(r.transitions.user, 1, "one real change inside the range");
        assert_eq!(r.transitions.spurious_total(), 0);
    }

    #[test]
    fn multiple_watchpoints_serial_and_bloom() {
        let a = app(6);
        let p = a.program().unwrap();
        let wps: Vec<Watchpoint> = ["watched", "silent", "neighbor"]
            .iter()
            .map(|s| {
                Watchpoint::new(WatchExpr::Scalar { addr: p.symbol(s).unwrap(), width: Width::Q })
            })
            .collect();
        for kind in [
            BackendKind::dise_default(),
            BackendKind::Dise(DiseStrategy::bloom(false)),
            BackendKind::Dise(DiseStrategy::bloom(true)),
        ] {
            let r = Session::new(&a, wps.clone(), kind).unwrap().run();
            assert_eq!(r.error, None, "{kind:?}");
            // watched and neighbor each change 6 times; a store may
            // change both expressions' values but transitions are
            // per-store: 12 changing stores.
            assert_eq!(r.transitions.user, 12, "{kind:?}");
            assert_eq!(r.transitions.spurious_total(), 0, "{kind:?}");
        }
    }

    #[test]
    fn protection_catches_wild_store() {
        // The application computes an address inside the debugger's
        // region and stores to it.
        let src = "start:  la r1, watched
                           lda r2, 1(zero)
                           stq r2, 0(r1)     # legitimate watched store
                           ldq r3, 0(r4)     # r4=0: read a zero
                           halt
                   .data
                   watched: .quad 0
                  ";
        let a = Application::new(parse_asm(src).unwrap(), Layout::default());
        let addr = a.program().unwrap().symbol("watched").unwrap();
        let wp = Watchpoint::new(WatchExpr::Scalar { addr, width: Width::Q });
        let strategy = DiseStrategy { protect_debugger: true, ..DiseStrategy::default() };
        let r = Session::new(&a, vec![wp], BackendKind::Dise(strategy)).unwrap().run();
        assert_eq!(r.error, None);
        assert_eq!(r.transitions.user, 1);
        assert_eq!(r.transitions.protection_violations, 0, "no wild stores here");
    }

    #[test]
    fn unsupported_combinations_are_reported() {
        let a = app(5);
        let p = a.program().unwrap();
        let range =
            Watchpoint::new(WatchExpr::Range { base: p.symbol("watched").unwrap(), len: 16 });
        assert!(matches!(
            Session::new(&a, vec![range], BackendKind::hw4()),
            Err(DebugError::Unsupported { .. })
        ));
        let two = vec![scalar_wp(&a, "watched"), scalar_wp(&a, "silent")];
        assert!(matches!(
            Session::new(&a, two, BackendKind::Dise(DiseStrategy::evaluate_inline(true))),
            Err(DebugError::Unsupported { .. })
        ));
    }
}
